//! Analytic launch cost of a full Jacobi solve.

use super::config::JacobiConfig;
use gpu_sim::stats::{AccessPattern, FlopCounts};
use gpu_sim::KernelCost;
use gpu_spec::Precision;
use hpc_metrics::jacobi_traffic_bytes;
use vendor_models::heuristics;

/// Builds the aggregate cost of a Jacobi solve that runs `iters` sweeps.
///
/// Each sweep fetches the full `L³` grid once and writes it once (interior
/// update plus boundary carry in the ping-pong buffer); the per-iteration
/// convergence-norm reduction re-reads the `(L−2)³` previous interior values.
/// FLOPs per interior cell per sweep: 5 additions and 1 multiplication for
/// the six-neighbour average, plus a subtraction and a square-accumulate FMA
/// in the norm.
pub fn jacobi_cost(config: &JacobiConfig, iters: usize) -> KernelCost {
    let elem = Precision::Fp64.size_of() as u64;
    let cells = config.cells();
    let interior = config.interior_cells();
    let iters = iters as u64;
    let launch = heuristics::stencil_launch(config.l as u32, config.block_x);

    let total = jacobi_traffic_bytes(config.l as u64, iters);
    let write = iters * cells * elem;
    let fetch = total - write;
    let l1_bytes = iters * interior * 9 * elem; // 6 loads + 1 store + 2 norm reads
    let l2_bytes = iters * interior * 4 * elem;

    KernelCost::builder("jacobi", Precision::Fp64, launch, AccessPattern::Stencil3D)
        .dram_traffic(fetch, write)
        .l1_bytes(l1_bytes)
        .l2_bytes(l2_bytes)
        .flops(FlopCounts {
            adds: iters * interior * 6, // 5 sweep adds + 1 norm subtraction
            muls: iters * interior,     // × 1/6
            fmas: iters * interior,     // norm square-accumulate
            ..Default::default()
        })
        .loads_stores_per_thread(8.0, 1.0)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_matches_the_metric_helper_and_scales_with_iterations() {
        let config = JacobiConfig::paper(16, 400);
        let one = jacobi_cost(&config, 1);
        assert_eq!(one.total_bytes(), jacobi_traffic_bytes(16, 1));
        let many = jacobi_cost(&config, 300);
        assert_eq!(many.total_bytes(), 300 * one.total_bytes());
        assert_eq!(many.flops.total(), 300 * one.flops.total());
    }

    #[test]
    fn launch_covers_the_grid_once_per_sweep() {
        let config = JacobiConfig::paper(32, 400);
        let cost = jacobi_cost(&config, 100);
        assert_eq!(cost.launch.total_threads(), 32u64.pow(3));
        assert_eq!(cost.loads_per_thread, 8.0);
    }

    #[test]
    fn solver_stays_memory_bound() {
        let cost = jacobi_cost(&JacobiConfig::paper(64, 1000), 1000);
        assert!(
            cost.arithmetic_intensity_dram() < 1.0,
            "Jacobi must sit on the bandwidth roof, ai = {}",
            cost.arithmetic_intensity_dram()
        );
    }
}
