//! The explicit SIMD fast lane and its measured crossover tables.
//!
//! Every hot kernel in this crate has two implementations:
//!
//! * the **deterministic lane** — scalar loops and the fixed-chunk pairwise
//!   tree reduction of the rayon shim. Bitwise-stable across thread counts;
//!   the association every golden fixture was recorded with.
//! * the **SIMD lane** — hand-unrolled multi-accumulator kernels (4–8
//!   independent `f64`/`f32` accumulators) that break the floating-point
//!   dependency chain so the out-of-order core can keep its FMA ports busy.
//!   Strict IEEE, no fast-math: the only liberty taken is *reassociation*,
//!   and only where it is either exactly neutral (element-wise streams,
//!   max-reductions, the stencil) or bounded by a documented per-kernel
//!   tolerance (reassociated `f64`/`f32` sums).
//!
//! Which lane runs is decided per kernel per size by [`resolve`], driven by a
//! [`LanePolicy`]: `deterministic` (the default — golden output stays
//! byte-identical), `simd` (force the fast lane), or `auto` (consult the
//! bench-measured [`CrossoverTable`]). The crossover table is produced by
//! `cargo bench -p bench --bench crossover`, written to
//! `target/bench/crossover.json`, and a cross-machine default is committed at
//! `crates/kernels/src/simd/crossover_default.json`; the `MOJO_HPC_CROSSOVER`
//! environment variable points the resolver at a locally measured table.
//!
//! Per-kernel lane-parity tolerances (relative, proven by
//! `tests/lane_parity.rs` and the unit tests below):
//!
//! | kernel | tolerance | why |
//! |---|---|---|
//! | `babelstream_copy`/`mul`/`add`/`triad`/`nstream` | exact (bitwise) | element-wise, no reassociation |
//! | `stencil7` | exact (bitwise) | per-element expression unchanged, only the inner loop is unrolled |
//! | `babelstream_dot` | 1e-12 | reassociated `f64` sum (4 accumulators per [`rayon::REDUCE_CHUNK`] chunk) |
//! | `fock_eri` | 1e-12 | reassociated `f64` sum of quartet ERIs |
//! | `minibude_pose` | 2e-3 | reassociated `f32` sum over protein atoms (the driver's own tolerance) |
//! | `jacobi` | 1e-12 | bitwise-identical sweeps; the per-iteration convergence norm is a reassociated `f64` sum |
//! | `framestream` | exact (bitwise) | element-wise EMA fold, no reassociation possible |
//!
//! All scratch comes from `gpu_sim::pool`, so steady-state launches with the
//! SIMD lane active stay at zero global allocations
//! (`tests/alloc_steady_state.rs`).

use crate::babelstream::{INIT_A, INIT_B, INIT_C};
use crate::cache;
use crate::hartree_fock::{pair_decode, quartet_eri, HartreeFockConfig, HeliumSystem};
use crate::minibude::{pair_energy, transform_point, Deck, MiniBudeConfig, HALF};
use crate::real::Real;
use crate::stencil7::StencilConfig;
use gpu_sim::PooledVec;
use gpu_spec::Precision;
use rayon::prelude::*;
use serde::value::Value;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Explicit `core::simd` variants, gated behind the opt-in `nightly-simd`
/// cargo feature (requires a nightly toolchain with `portable_simd`). The
/// stable builds ship the hand-unrolled scalar kernels of this module, which
/// the auto-vectorizer lowers to the same vector instructions; this gated
/// module exists so a nightly toolchain can compare against first-class
/// `f64x4` codegen without changing any call site.
#[cfg(feature = "nightly-simd")]
pub mod portable_simd {
    use core::simd::f64x4;
    use core::simd::num::SimdFloat;

    /// `f64x4` dot product: one vector accumulator, horizontal reduction at
    /// the end, scalar tail. Same reassociation class as [`super::dot`].
    pub fn dot_f64x4(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let mut acc = f64x4::splat(0.0);
        let mut i = 0;
        while i + 4 <= n {
            let va = f64x4::from_slice(&a[i..i + 4]);
            let vb = f64x4::from_slice(&b[i..i + 4]);
            acc += va * vb;
            i += 4;
        }
        let mut total = acc.reduce_sum();
        while i < n {
            total += a[i] * b[i];
            i += 1;
        }
        total
    }
}

// ---------------------------------------------------------------------------
// Lanes and policies
// ---------------------------------------------------------------------------

/// Which implementation of a kernel actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// The golden scalar / fixed-tree lane the byte-identical fixtures pin.
    Deterministic,
    /// The hand-unrolled multi-accumulator fast lane.
    Simd,
}

impl Lane {
    /// Stable label used in the crossover table JSON and diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            Lane::Deterministic => "deterministic",
            Lane::Simd => "simd",
        }
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Lane {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "deterministic" => Ok(Lane::Deterministic),
            "simd" => Ok(Lane::Simd),
            other => Err(format!(
                "unknown lane '{other}' (expected deterministic or simd)"
            )),
        }
    }
}

/// How the drivers pick a [`Lane`]: pinned to either lane, or data-driven
/// through the crossover table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LanePolicy {
    /// Always the deterministic lane (the default: golden output stays
    /// byte-identical).
    #[default]
    Deterministic,
    /// Always the SIMD fast lane.
    Simd,
    /// Per kernel per size, whichever lane the measured crossover table says
    /// is fastest (unknown kernels fall back to deterministic).
    Auto,
}

impl LanePolicy {
    /// Stable label (the `--lane` CLI keyword).
    pub fn label(&self) -> &'static str {
        match self {
            LanePolicy::Deterministic => "deterministic",
            LanePolicy::Simd => "simd",
            LanePolicy::Auto => "auto",
        }
    }
}

impl fmt::Display for LanePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for LanePolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "deterministic" => Ok(LanePolicy::Deterministic),
            "simd" => Ok(LanePolicy::Simd),
            "auto" => Ok(LanePolicy::Auto),
            other => Err(format!(
                "unknown lane policy '{other}' (expected auto, deterministic or simd)"
            )),
        }
    }
}

/// The process-wide lane policy, set **once** at CLI startup (before any
/// kernel runs) so the paper-experiment builders — which call the family
/// drivers directly — honour `--lane` without threading a parameter through
/// every figure. Library callers that need a per-call policy use
/// [`crate::workload::Workload::run_lane`] instead and never touch this.
static PROCESS_POLICY: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default lane policy consulted by [`process_policy`].
pub fn set_process_policy(policy: LanePolicy) {
    let encoded = match policy {
        LanePolicy::Deterministic => 0,
        LanePolicy::Simd => 1,
        LanePolicy::Auto => 2,
    };
    PROCESS_POLICY.store(encoded, Ordering::Relaxed);
}

/// The process-wide default lane policy ([`LanePolicy::Deterministic`] unless
/// [`set_process_policy`] was called).
pub fn process_policy() -> LanePolicy {
    match PROCESS_POLICY.load(Ordering::Relaxed) {
        1 => LanePolicy::Simd,
        2 => LanePolicy::Auto,
        _ => LanePolicy::Deterministic,
    }
}

/// Resolves a policy to a concrete [`Lane`] for one kernel at one size.
/// `Auto` consults the [active crossover table](CrossoverTable::active);
/// kernels the table does not know fall back to the deterministic lane.
pub fn resolve(policy: LanePolicy, kernel: &str, size: u64) -> Lane {
    match policy {
        LanePolicy::Deterministic => Lane::Deterministic,
        LanePolicy::Simd => Lane::Simd,
        LanePolicy::Auto => CrossoverTable::active()
            .fastest_lane(kernel, size)
            .unwrap_or(Lane::Deterministic),
    }
}

// ---------------------------------------------------------------------------
// Kernel identifiers (crossover-table keys)
// ---------------------------------------------------------------------------

/// Crossover-table key of the BabelStream Copy kernel.
pub const KERNEL_COPY: &str = "babelstream_copy";
/// Crossover-table key of the BabelStream Mul kernel.
pub const KERNEL_MUL: &str = "babelstream_mul";
/// Crossover-table key of the BabelStream Add kernel.
pub const KERNEL_ADD: &str = "babelstream_add";
/// Crossover-table key of the BabelStream Triad kernel.
pub const KERNEL_TRIAD: &str = "babelstream_triad";
/// Crossover-table key of the BabelStream Nstream kernel
/// (`a[i] += b[i] + scalar * c[i]`, the classic sixth stream op).
pub const KERNEL_NSTREAM: &str = "babelstream_nstream";
/// Crossover-table key of the BabelStream Dot reduction.
pub const KERNEL_DOT: &str = "babelstream_dot";
/// Crossover-table key of the seven-point stencil inner loop.
pub const KERNEL_STENCIL7: &str = "stencil7";
/// Crossover-table key of the miniBUDE pose-energy inner loop.
pub const KERNEL_MINIBUDE_POSE: &str = "minibude_pose";
/// Crossover-table key of the Fock-matrix / ERI partial sums.
pub const KERNEL_FOCK_ERI: &str = "fock_eri";
/// Crossover-table key of the Jacobi sweep + convergence-norm iteration.
pub const KERNEL_JACOBI: &str = "jacobi";
/// Crossover-table key of the frame-stream EMA accumulation.
pub const KERNEL_FRAMESTREAM: &str = "framestream";

// ---------------------------------------------------------------------------
// Crossover table
// ---------------------------------------------------------------------------

/// Schema version of the crossover-table JSON.
pub const CROSSOVER_SCHEMA: u64 = 1;

/// Environment variable naming a locally measured crossover table that
/// overrides the committed default for `--lane auto`.
pub const CROSSOVER_ENV: &str = "MOJO_HPC_CROSSOVER";

/// The committed cross-machine default table (regenerated by
/// `cargo bench -p bench --bench crossover`).
const DEFAULT_CROSSOVER_JSON: &str = include_str!("simd/crossover_default.json");

/// One measured (kernel, size) point: both lane timings and the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverEntry {
    /// Kernel key (one of the `KERNEL_*` constants).
    pub kernel: String,
    /// Problem size (elements, grid side, poses or atoms — the kernel's own
    /// size axis).
    pub size: u64,
    /// Best deterministic-lane time, nanoseconds.
    pub deterministic_ns: f64,
    /// Best SIMD-lane time, nanoseconds.
    pub simd_ns: f64,
    /// `deterministic_ns / simd_ns` (`> 1` means the SIMD lane is faster).
    pub speedup: f64,
    /// The faster lane at this point.
    pub fastest: Lane,
}

/// A bench-measured per-kernel crossover table: for every kernel and size,
/// which lane was fastest and by how much.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CrossoverTable {
    /// The measured points, sorted by kernel then size.
    pub entries: Vec<CrossoverEntry>,
}

impl CrossoverTable {
    /// Builds a table, sorting the entries into (kernel, size) order.
    pub fn new(mut entries: Vec<CrossoverEntry>) -> Self {
        entries.sort_by(|a, b| a.kernel.cmp(&b.kernel).then(a.size.cmp(&b.size)));
        CrossoverTable { entries }
    }

    /// The fastest lane for `kernel` at `size`: the entry with the largest
    /// measured size `<= size` (sizes between measurements inherit the verdict
    /// below them), or the smallest measured size when `size` undershoots
    /// every measurement. `None` for kernels the table does not know.
    pub fn fastest_lane(&self, kernel: &str, size: u64) -> Option<Lane> {
        let mut below: Option<&CrossoverEntry> = None;
        let mut smallest: Option<&CrossoverEntry> = None;
        for entry in self.entries.iter().filter(|e| e.kernel == kernel) {
            if entry.size <= size && below.is_none_or(|b| entry.size > b.size) {
                below = Some(entry);
            }
            if smallest.is_none_or(|s| entry.size < s.size) {
                smallest = Some(entry);
            }
        }
        below.or(smallest).map(|e| e.fastest)
    }

    /// Renders the table as pretty-printed JSON (the
    /// `target/bench/crossover.json` format).
    pub fn to_json_pretty(&self) -> String {
        let kernels = self
            .entries
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("kernel".to_string(), Value::Str(e.kernel.clone())),
                    ("size".to_string(), Value::U64(e.size)),
                    (
                        "deterministic_ns".to_string(),
                        Value::F64(e.deterministic_ns),
                    ),
                    ("simd_ns".to_string(), Value::F64(e.simd_ns)),
                    ("speedup".to_string(), Value::F64(e.speedup)),
                    (
                        "fastest".to_string(),
                        Value::Str(e.fastest.label().to_string()),
                    ),
                ])
            })
            .collect();
        let root = Value::Object(vec![
            ("schema".to_string(), Value::U64(CROSSOVER_SCHEMA)),
            (
                "accumulators".to_string(),
                Value::U64(rayon::SUM_LANES as u64),
            ),
            ("kernels".to_string(), Value::Array(kernels)),
        ]);
        let mut json = serde_json::to_string_pretty(&root).expect("crossover table serialises");
        json.push('\n');
        json
    }

    /// Parses and schema-checks a crossover table (the inverse of
    /// [`Self::to_json_pretty`]).
    pub fn parse(text: &str) -> Result<Self, String> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
        let schema = json_u64(json_field(&value, "schema")?)?;
        if schema != CROSSOVER_SCHEMA {
            return Err(format!(
                "unsupported crossover schema {schema} (this binary speaks {CROSSOVER_SCHEMA})"
            ));
        }
        let Value::Array(kernels) = json_field(&value, "kernels")? else {
            return Err("'kernels' must be an array".to_string());
        };
        let mut entries = Vec::with_capacity(kernels.len());
        for record in kernels {
            let kernel = json_str(json_field(record, "kernel")?)?.to_string();
            let size = json_u64(json_field(record, "size")?)?;
            let deterministic_ns = json_f64(json_field(record, "deterministic_ns")?)?;
            let simd_ns = json_f64(json_field(record, "simd_ns")?)?;
            let speedup = json_f64(json_field(record, "speedup")?)?;
            if !(deterministic_ns > 0.0 && simd_ns > 0.0 && speedup > 0.0) {
                return Err(format!(
                    "crossover entry {kernel}@{size} has non-positive timings"
                ));
            }
            let fastest: Lane = json_str(json_field(record, "fastest")?)?.parse()?;
            entries.push(CrossoverEntry {
                kernel,
                size,
                deterministic_ns,
                simd_ns,
                speedup,
                fastest,
            });
        }
        Ok(CrossoverTable::new(entries))
    }

    /// The committed cross-machine default table.
    pub fn builtin() -> &'static CrossoverTable {
        static BUILTIN: OnceLock<CrossoverTable> = OnceLock::new();
        BUILTIN.get_or_init(|| {
            CrossoverTable::parse(DEFAULT_CROSSOVER_JSON).expect("committed crossover table parses")
        })
    }

    /// The table `--lane auto` consults: the file named by
    /// [`CROSSOVER_ENV`] when set and readable (a warning is printed and the
    /// default used otherwise), else the committed default. Loaded once per
    /// process.
    pub fn active() -> &'static CrossoverTable {
        static ACTIVE: OnceLock<CrossoverTable> = OnceLock::new();
        ACTIVE.get_or_init(|| {
            if let Ok(path) = std::env::var(CROSSOVER_ENV) {
                match std::fs::read_to_string(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| CrossoverTable::parse(&text))
                {
                    Ok(table) => return table,
                    Err(e) => eprintln!("warning: ignoring {CROSSOVER_ENV}={path}: {e}"),
                }
            }
            CrossoverTable::builtin().clone()
        })
    }
}

fn json_field<'a>(value: &'a Value, name: &str) -> Result<&'a Value, String> {
    let Value::Object(fields) = value else {
        return Err(format!("expected an object with field '{name}'"));
    };
    fields
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{name}'"))
}

fn json_str(value: &Value) -> Result<&str, String> {
    match value {
        Value::Str(s) => Ok(s),
        other => Err(format!("expected a string, got {other:?}")),
    }
}

fn json_u64(value: &Value) -> Result<u64, String> {
    match value {
        Value::U64(v) => Ok(*v),
        other => Err(format!("expected an unsigned integer, got {other:?}")),
    }
}

fn json_f64(value: &Value) -> Result<f64, String> {
    match value {
        Value::F64(v) => Ok(*v),
        Value::U64(v) => Ok(*v as f64),
        Value::I64(v) => Ok(*v as f64),
        other => Err(format!("expected a number, got {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Multi-accumulator stream kernels (element-wise: bitwise-exact)
// ---------------------------------------------------------------------------

/// BabelStream Copy, unrolled by 4. Element-wise: bitwise-identical to the
/// scalar loop.
pub fn stream_copy<T: Real>(dst: &mut [T], src: &[T]) {
    let n = dst.len().min(src.len());
    let (d, s) = (&mut dst[..n], &src[..n]);
    let mut i = 0;
    while i + 4 <= n {
        d[i] = s[i];
        d[i + 1] = s[i + 1];
        d[i + 2] = s[i + 2];
        d[i + 3] = s[i + 3];
        i += 4;
    }
    while i < n {
        d[i] = s[i];
        i += 1;
    }
}

/// BabelStream Mul (`dst[i] = scalar * src[i]`), unrolled by 4. Bitwise-exact.
pub fn stream_mul<T: Real>(dst: &mut [T], src: &[T], scalar: T) {
    let n = dst.len().min(src.len());
    let (d, s) = (&mut dst[..n], &src[..n]);
    let mut i = 0;
    while i + 4 <= n {
        d[i] = scalar * s[i];
        d[i + 1] = scalar * s[i + 1];
        d[i + 2] = scalar * s[i + 2];
        d[i + 3] = scalar * s[i + 3];
        i += 4;
    }
    while i < n {
        d[i] = scalar * s[i];
        i += 1;
    }
}

/// BabelStream Add (`dst[i] = a[i] + b[i]`), unrolled by 4. Bitwise-exact.
pub fn stream_add<T: Real>(dst: &mut [T], a: &[T], b: &[T]) {
    let n = dst.len().min(a.len()).min(b.len());
    let (d, a, b) = (&mut dst[..n], &a[..n], &b[..n]);
    let mut i = 0;
    while i + 4 <= n {
        d[i] = a[i] + b[i];
        d[i + 1] = a[i + 1] + b[i + 1];
        d[i + 2] = a[i + 2] + b[i + 2];
        d[i + 3] = a[i + 3] + b[i + 3];
        i += 4;
    }
    while i < n {
        d[i] = a[i] + b[i];
        i += 1;
    }
}

/// BabelStream Triad (`dst[i] = b[i] + scalar * c[i]`), unrolled by 4.
/// Bitwise-exact.
pub fn stream_triad<T: Real>(dst: &mut [T], b: &[T], c: &[T], scalar: T) {
    let n = dst.len().min(b.len()).min(c.len());
    let (d, b, c) = (&mut dst[..n], &b[..n], &c[..n]);
    let mut i = 0;
    while i + 4 <= n {
        d[i] = b[i] + scalar * c[i];
        d[i + 1] = b[i + 1] + scalar * c[i + 1];
        d[i + 2] = b[i + 2] + scalar * c[i + 2];
        d[i + 3] = b[i + 3] + scalar * c[i + 3];
        i += 4;
    }
    while i < n {
        d[i] = b[i] + scalar * c[i];
        i += 1;
    }
}

/// BabelStream Nstream (`a[i] += b[i] + scalar * c[i]`), unrolled by 4.
/// Bitwise-exact.
pub fn stream_nstream<T: Real>(a: &mut [T], b: &[T], c: &[T], scalar: T) {
    let n = a.len().min(b.len()).min(c.len());
    let (a, b, c) = (&mut a[..n], &b[..n], &c[..n]);
    let mut i = 0;
    while i + 4 <= n {
        a[i] += b[i] + scalar * c[i];
        a[i + 1] += b[i + 1] + scalar * c[i + 1];
        a[i + 2] += b[i + 2] + scalar * c[i + 2];
        a[i + 3] += b[i + 3] + scalar * c[i + 3];
        i += 4;
    }
    while i < n {
        a[i] += b[i] + scalar * c[i];
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Multi-accumulator reductions (reassociated: documented tolerances)
// ---------------------------------------------------------------------------

/// Serial dot product with 8 independent accumulators: element `i` lands in
/// accumulator `i % 8`, lanes combine pairwise at the end. Reassociated
/// relative to a left-to-right fold (≤ ~1e-12 relative for well-conditioned
/// `f64` inputs); accumulation happens in `T` to mirror the device kernel.
pub fn dot<T: Real>(a: &[T], b: &[T]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [T::from_f64(0.0); 8];
    let mut i = 0;
    while i + 8 <= n {
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
        acc[4] += a[i + 4] * b[i + 4];
        acc[5] += a[i + 5] * b[i + 5];
        acc[6] += a[i + 6] * b[i + 6];
        acc[7] += a[i + 7] * b[i + 7];
        i += 8;
    }
    while i < n {
        acc[0] += a[i] * b[i];
        i += 1;
    }
    let q0 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let q1 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
    (q0 + q1).to_f64()
}

/// Largest `ngauss * ngauss` the fast-lane ERI keeps its hoisted pair table
/// on the stack; wider contractions (ngauss > 8 — nothing in the paper's
/// decks) fall back to the reference loop.
const ERI_PAIR_TABLE: usize = 64;

/// Fast-lane quartet ERI: same arithmetic as
/// [`quartet_eri`], restructured for
/// throughput. The `(kb, lb)` Gaussian pair terms (`akl` and the `exp`-bearing
/// `dkl`) are invariant across the outer `(ib, jb)` loops, so they are
/// hoisted into a stack table — cutting the `exp` count from `ngauss^4` to
/// `2 ngauss^2` — and the surviving inner loop (div, sqrt, multiply—add over
/// a flat slice) runs 4 independent accumulators so the auto-vectorizer can
/// lower it to packed operations. Reassociated products and sums: within
/// ~1e-12 relative of the reference nest.
pub fn quartet_eri_unrolled(system: &HeliumSystem, ij: u64, kl: u64) -> f64 {
    let ngauss = system.ngauss;
    let npairs = ngauss * ngauss;
    if npairs > ERI_PAIR_TABLE {
        return quartet_eri(system, ij, kl);
    }
    let (i, j) = pair_decode(ij);
    let (k, l) = pair_decode(kl);
    let r2_ij = system.distance2(i as usize, j as usize);
    let r2_kl = system.distance2(k as usize, l as usize);
    let rpq2 = system.pair_distance2(ij, kl);

    let mut akl_t = [0.0f64; ERI_PAIR_TABLE];
    let mut dkl_t = [0.0f64; ERI_PAIR_TABLE];
    for kb in 0..ngauss {
        for lb in 0..ngauss {
            let akl = system.xpnt[kb] + system.xpnt[lb];
            akl_t[kb * ngauss + lb] = akl;
            dkl_t[kb * ngauss + lb] = system.coef[kb]
                * system.coef[lb]
                * (-system.xpnt[kb] * system.xpnt[lb] / akl * r2_kl).exp();
        }
    }

    let term = |aij: f64, p: usize| {
        let akl = akl_t[p];
        let aijkl = aij * akl / (aij + akl);
        let t = aijkl * rpq2;
        dkl_t[p] * aijkl.sqrt() / (1.0 + t).sqrt()
    };
    let mut eri = 0.0f64;
    for ib in 0..ngauss {
        for jb in 0..ngauss {
            let aij = system.xpnt[ib] + system.xpnt[jb];
            let dij = system.coef[ib]
                * system.coef[jb]
                * (-system.xpnt[ib] * system.xpnt[jb] / aij * r2_ij).exp();
            let mut acc = [0.0f64; 4];
            let mut p = 0;
            while p + 4 <= npairs {
                acc[0] += term(aij, p);
                acc[1] += term(aij, p + 1);
                acc[2] += term(aij, p + 2);
                acc[3] += term(aij, p + 3);
                p += 4;
            }
            while p < npairs {
                acc[0] += term(aij, p);
                p += 1;
            }
            eri += dij * ((acc[0] + acc[1]) + (acc[2] + acc[3]));
        }
    }
    eri
}

/// Sum of quartet ERIs with 4 independent accumulators striding the quartet
/// list (the Fock-matrix partial-sum shape), each evaluated through the
/// fast-lane [`quartet_eri_unrolled`]. Reassociated `f64` sum: ≤ ~1e-12
/// relative of the serial fold.
pub fn eri_batch_sum(system: &HeliumSystem, quartets: &[(u64, u64)]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut chunks = quartets.chunks_exact(4);
    for quad in chunks.by_ref() {
        acc[0] += quartet_eri_unrolled(system, quad[0].0, quad[0].1);
        acc[1] += quartet_eri_unrolled(system, quad[1].0, quad[1].1);
        acc[2] += quartet_eri_unrolled(system, quad[2].0, quad[2].1);
        acc[3] += quartet_eri_unrolled(system, quad[3].0, quad[3].1);
    }
    for &(ij, kl) in chunks.remainder() {
        acc[0] += quartet_eri_unrolled(system, ij, kl);
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Element-wise `acc[i] += partial[i]`, unrolled by 4. The per-element
/// association is unchanged — each index accumulates in exactly the order the
/// scalar loop would — so this is bitwise-identical and safe inside the
/// golden Fock-matrix partial combine.
pub fn add_assign_unrolled(acc: &mut [f64], partial: &[f64]) {
    let n = acc.len().min(partial.len());
    let (a, p) = (&mut acc[..n], &partial[..n]);
    let mut i = 0;
    while i + 4 <= n {
        a[i] += p[i];
        a[i + 1] += p[i + 1];
        a[i + 2] += p[i + 2];
        a[i + 3] += p[i + 3];
        i += 4;
    }
    while i < n {
        a[i] += p[i];
        i += 1;
    }
}

/// miniBUDE pose energy with 4 independent `f32` accumulators over the
/// protein (inner) loop. Same per-pair arithmetic as
/// [`crate::minibude::pose_energy`], reassociated sum: within the
/// driver's own 2e-3 relative tolerance.
pub fn pose_energy_unrolled(deck: &Deck, pose_index: usize) -> f32 {
    let pose = [
        deck.transforms[0][pose_index],
        deck.transforms[1][pose_index],
        deck.transforms[2][pose_index],
        deck.transforms[3][pose_index],
        deck.transforms[4][pose_index],
        deck.transforms[5][pose_index],
    ];
    let (mut e0, mut e1, mut e2, mut e3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for lig in &deck.ligand {
        let l_ff = deck.forcefield[lig.type_index as usize];
        let l_ff = (l_ff.radius, l_ff.hphb, l_ff.charge);
        let (lx, ly, lz) = transform_point(pose, lig.x, lig.y, lig.z);
        let pair = |pro: &crate::minibude::Atom| {
            let p_ff = deck.forcefield[pro.type_index as usize];
            pair_energy(
                lx,
                ly,
                lz,
                l_ff,
                pro.x,
                pro.y,
                pro.z,
                (p_ff.radius, p_ff.hphb, p_ff.charge),
            )
        };
        let mut chunks = deck.protein.chunks_exact(4);
        for quad in chunks.by_ref() {
            e0 += pair(&quad[0]);
            e1 += pair(&quad[1]);
            e2 += pair(&quad[2]);
            e3 += pair(&quad[3]);
        }
        for pro in chunks.remainder() {
            e0 += pair(pro);
        }
    }
    ((e0 + e1) + (e2 + e3)) * HALF
}

// ---------------------------------------------------------------------------
// Stencil (element-wise expression unchanged: bitwise-exact)
// ---------------------------------------------------------------------------

/// One interior cell of the seven-point Laplacian — the exact expression (and
/// operation order) of the CPU reference and the device kernels.
#[inline]
fn stencil_point<T: Real>(u: &[T], idx: usize, l: usize, c: (T, T, T, T)) -> T {
    let (cx, cy, cz, cc) = c;
    u[idx] * cc
        + (u[idx - l * l] + u[idx + l * l]) * cx
        + (u[idx - l] + u[idx + l]) * cy
        + (u[idx - 1] + u[idx + 1]) * cz
}

/// Applies the seven-point Laplacian to every interior cell, the innermost
/// (`k`) loop unrolled by 4. Per-element expressions are unchanged, so the
/// output is bitwise-identical to [`stencil7_apply_scalar`].
pub fn stencil7_apply<T: Real>(out: &mut [T], u: &[T], l: usize, coeffs: (f64, f64, f64, f64)) {
    let c = (
        T::from_f64(coeffs.0),
        T::from_f64(coeffs.1),
        T::from_f64(coeffs.2),
        T::from_f64(coeffs.3),
    );
    for i in 1..l - 1 {
        for j in 1..l - 1 {
            let row = (i * l + j) * l;
            let mut k = 1;
            while k + 4 < l {
                out[row + k] = stencil_point(u, row + k, l, c);
                out[row + k + 1] = stencil_point(u, row + k + 1, l, c);
                out[row + k + 2] = stencil_point(u, row + k + 2, l, c);
                out[row + k + 3] = stencil_point(u, row + k + 3, l, c);
                k += 4;
            }
            while k < l - 1 {
                out[row + k] = stencil_point(u, row + k, l, c);
                k += 1;
            }
        }
    }
}

/// The scalar deterministic counterpart of [`stencil7_apply`] (the lane the
/// crossover bench times against).
pub fn stencil7_apply_scalar<T: Real>(
    out: &mut [T],
    u: &[T],
    l: usize,
    coeffs: (f64, f64, f64, f64),
) {
    let c = (
        T::from_f64(coeffs.0),
        T::from_f64(coeffs.1),
        T::from_f64(coeffs.2),
        T::from_f64(coeffs.3),
    );
    for i in 1..l - 1 {
        for j in 1..l - 1 {
            let row = (i * l + j) * l;
            for k in 1..l - 1 {
                out[row + k] = stencil_point(u, row + k, l, c);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Jacobi sweep (element-wise expression unchanged: bitwise-exact)
// ---------------------------------------------------------------------------

/// One interior cell of the six-neighbour Jacobi average — the exact
/// expression (and operation order) of the CPU reference and the device
/// kernels: pairwise neighbour sums, then `× 1/6`.
#[inline]
fn jacobi_point(u: &[f64], idx: usize, l: usize) -> f64 {
    (((u[idx - l * l] + u[idx + l * l]) + (u[idx - l] + u[idx + l])) + (u[idx - 1] + u[idx + 1]))
        * crate::jacobi::SIXTH
}

/// Applies one Jacobi sweep to every interior cell, the innermost (`k`) loop
/// unrolled by 4. Per-element expressions are unchanged, so the output is
/// bitwise-identical to [`jacobi_sweep_scalar`].
pub fn jacobi_sweep(out: &mut [f64], u: &[f64], l: usize) {
    for i in 1..l - 1 {
        for j in 1..l - 1 {
            let row = (i * l + j) * l;
            let mut k = 1;
            while k + 4 < l {
                out[row + k] = jacobi_point(u, row + k, l);
                out[row + k + 1] = jacobi_point(u, row + k + 1, l);
                out[row + k + 2] = jacobi_point(u, row + k + 2, l);
                out[row + k + 3] = jacobi_point(u, row + k + 3, l);
                k += 4;
            }
            while k < l - 1 {
                out[row + k] = jacobi_point(u, row + k, l);
                k += 1;
            }
        }
    }
}

/// The scalar deterministic counterpart of [`jacobi_sweep`] (the lane the
/// crossover bench times against).
pub fn jacobi_sweep_scalar(out: &mut [f64], u: &[f64], l: usize) {
    for i in 1..l - 1 {
        for j in 1..l - 1 {
            let row = (i * l + j) * l;
            for k in 1..l - 1 {
                out[row + k] = jacobi_point(u, row + k, l);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Frame-stream EMA fold (element-wise: bitwise-exact)
// ---------------------------------------------------------------------------

/// Folds one constant-valued frame into an accumulator chunk,
/// `acc ← acc·beta + alpha·value`, unrolled by 4. Element chains are
/// independent, so the unroll cannot reassociate anything: the output is
/// bitwise-identical to the scalar loop.
pub fn frame_accumulate(acc: &mut [f64], value: f64, alpha: f64, beta: f64) {
    let n = acc.len();
    let av = alpha * value;
    let step = |x: f64| x * beta + av;
    let mut i = 0;
    while i + 4 <= n {
        acc[i] = step(acc[i]);
        acc[i + 1] = step(acc[i + 1]);
        acc[i + 2] = step(acc[i + 2]);
        acc[i + 3] = step(acc[i + 3]);
        i += 4;
    }
    while i < n {
        acc[i] = step(acc[i]);
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Unrolled verification scans (max-reductions: bitwise-exact results)
// ---------------------------------------------------------------------------

/// Maximum relative error of `get(i)` against a constant over `start..end`,
/// scanned with 4 independent max-accumulators. `max` is order-independent
/// over a fixed element set, so the result equals the scalar scan exactly.
pub fn max_rel_err_chunk(
    get: impl Fn(usize) -> f64,
    start: usize,
    end: usize,
    expected: f64,
) -> f64 {
    let scale = expected.abs().max(1.0);
    let err = |i: usize| (get(i) - expected).abs() / scale;
    let mut m = [0.0f64; 4];
    let mut i = start;
    while i + 4 <= end {
        m[0] = m[0].max(err(i));
        m[1] = m[1].max(err(i + 1));
        m[2] = m[2].max(err(i + 2));
        m[3] = m[3].max(err(i + 3));
        i += 4;
    }
    while i < end {
        m[0] = m[0].max(err(i));
        i += 1;
    }
    m[0].max(m[1]).max(m[2]).max(m[3])
}

/// Unrolled variant of [`crate::common::compare_with_reference`]: 4
/// independent max-accumulators, tolerance checked in index order. Returns
/// exactly the same `Ok`/`Err` as the scalar scan (max is order-independent
/// and the first offending index is still reported first).
pub fn compare_with_reference_unrolled<T: Real>(
    actual: &[T],
    expected: &[f64],
    tolerance: f64,
) -> Result<f64, String> {
    if actual.len() != expected.len() {
        return Err(format!(
            "length mismatch: {} vs {}",
            actual.len(),
            expected.len()
        ));
    }
    let n = actual.len();
    let fail = |i: usize, a: f64, e: f64, rel: f64| {
        format!("element {i} differs: got {a}, expected {e} (relative error {rel:.3e})")
    };
    let probe = |i: usize| {
        let a = actual[i].to_f64();
        let e = expected[i];
        let err = (a - e).abs();
        (a, e, err, err / e.abs().max(1.0))
    };
    let mut m = [0.0f64; 4];
    let mut i = 0;
    while i + 4 <= n {
        for (lane, slot) in m.iter_mut().enumerate() {
            let (a, e, err, rel) = probe(i + lane);
            if rel > tolerance {
                return Err(fail(i + lane, a, e, rel));
            }
            *slot = slot.max(err);
        }
        i += 4;
    }
    while i < n {
        let (a, e, err, rel) = probe(i);
        if rel > tolerance {
            return Err(fail(i, a, e, rel));
        }
        m[0] = m[0].max(err);
        i += 1;
    }
    Ok(m[0].max(m[1]).max(m[2]).max(m[3]))
}

/// Unrolled variant of [`crate::common::compare_slices`] (same contract as
/// [`compare_with_reference_unrolled`]).
pub fn compare_slices_unrolled(
    actual: &[f64],
    expected: &[f64],
    tolerance: f64,
) -> Result<f64, String> {
    compare_with_reference_unrolled(actual, expected, tolerance)
}

/// Unrolled variant of [`crate::common::compare_slices_f32`]: widens
/// element-by-element exactly like the scalar scan.
pub fn compare_slices_f32_unrolled(
    actual: &[f32],
    expected: &[f32],
    tolerance: f32,
) -> Result<f64, String> {
    if actual.len() != expected.len() {
        return Err(format!(
            "length mismatch: {} vs {}",
            actual.len(),
            expected.len()
        ));
    }
    let n = actual.len();
    let tolerance = f64::from(tolerance);
    let probe = |i: usize| {
        let a = f64::from(actual[i]);
        let e = f64::from(expected[i]);
        let err = (a - e).abs();
        (a, e, err, err / e.abs().max(1.0))
    };
    let fail = |i: usize, a: f64, e: f64, rel: f64| {
        format!("element {i} differs: got {a}, expected {e} (relative error {rel:.3e})")
    };
    let mut m = [0.0f64; 4];
    let mut i = 0;
    while i + 4 <= n {
        for (lane, slot) in m.iter_mut().enumerate() {
            let (a, e, err, rel) = probe(i + lane);
            if rel > tolerance {
                return Err(fail(i + lane, a, e, rel));
            }
            *slot = slot.max(err);
        }
        i += 4;
    }
    while i < n {
        let (a, e, err, rel) = probe(i);
        if rel > tolerance {
            return Err(fail(i, a, e, rel));
        }
        m[0] = m[0].max(err);
        i += 1;
    }
    Ok(m[0].max(m[1]).max(m[2]).max(m[3]))
}

// ---------------------------------------------------------------------------
// Lane-kernel registry (the crossover bench and the parity suite)
// ---------------------------------------------------------------------------

/// One kernel with both lanes runnable standalone: what the crossover bench
/// times and the parity suite compares.
pub struct LaneKernel {
    /// Crossover-table key.
    pub name: &'static str,
    /// The size ladder the crossover bench measures (the workload's
    /// `bench_sizes` plus smaller points so the table can place a crossover).
    pub sizes: &'static [u64],
    /// Documented lane-parity tolerance (relative; `0.0` = bitwise-exact).
    pub tolerance: f64,
    /// Runs one lane at one size, returning a checksum both lanes compute
    /// identically (for the deterministic lane: through the golden
    /// association).
    pub run: fn(Lane, u64) -> f64,
}

/// Every lane kernel, in crossover-table presentation order.
pub fn lane_kernels() -> &'static [LaneKernel] {
    const STREAM_SIZES: &[u64] = &[1 << 12, 1 << 16, 1 << 20];
    const KERNELS: [LaneKernel; 11] = [
        LaneKernel {
            name: KERNEL_COPY,
            sizes: STREAM_SIZES,
            tolerance: 0.0,
            run: run_copy,
        },
        LaneKernel {
            name: KERNEL_MUL,
            sizes: STREAM_SIZES,
            tolerance: 0.0,
            run: run_mul,
        },
        LaneKernel {
            name: KERNEL_ADD,
            sizes: STREAM_SIZES,
            tolerance: 0.0,
            run: run_add,
        },
        LaneKernel {
            name: KERNEL_TRIAD,
            sizes: STREAM_SIZES,
            tolerance: 0.0,
            run: run_triad,
        },
        LaneKernel {
            name: KERNEL_NSTREAM,
            sizes: STREAM_SIZES,
            tolerance: 0.0,
            run: run_nstream,
        },
        LaneKernel {
            name: KERNEL_DOT,
            sizes: STREAM_SIZES,
            tolerance: 1e-12,
            run: run_dot,
        },
        LaneKernel {
            name: KERNEL_STENCIL7,
            sizes: &[32, 64, 96, 128],
            tolerance: 0.0,
            run: run_stencil,
        },
        LaneKernel {
            name: KERNEL_MINIBUDE_POSE,
            sizes: &[16, 64, 256],
            tolerance: 2e-3,
            run: run_pose,
        },
        LaneKernel {
            name: KERNEL_FOCK_ERI,
            sizes: &[8, 16, 24],
            tolerance: 1e-12,
            run: run_fock,
        },
        LaneKernel {
            name: KERNEL_JACOBI,
            sizes: &[8, 12, 16],
            tolerance: 1e-12,
            run: run_jacobi,
        },
        LaneKernel {
            name: KERNEL_FRAMESTREAM,
            sizes: &[1 << 12, 1 << 14, 1 << 16],
            tolerance: 0.0,
            run: run_framestream,
        },
    ];
    &KERNELS
}

/// Pool-backed stream buffers filled with the BabelStream init constants.
fn stream_buffers(n: usize) -> (PooledVec<f64>, PooledVec<f64>, PooledVec<f64>) {
    let mut a = PooledVec::with_capacity(n);
    a.resize(n, INIT_A);
    let mut b = PooledVec::with_capacity(n);
    b.resize(n, INIT_B);
    let mut c = PooledVec::with_capacity(n);
    c.resize(n, INIT_C);
    (a, b, c)
}

/// Lane-independent checksum: a serial left-to-right fold.
fn checksum(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, &v| acc + v)
}

fn run_copy(lane: Lane, size: u64) -> f64 {
    let n = size as usize;
    let (a, _b, mut c) = stream_buffers(n);
    match lane {
        Lane::Deterministic => {
            for (dst, src) in c.iter_mut().zip(a.iter()) {
                *dst = *src;
            }
        }
        Lane::Simd => stream_copy(c.as_mut_slice(), &a),
    }
    checksum(&c)
}

fn run_mul(lane: Lane, size: u64) -> f64 {
    let n = size as usize;
    let (_a, mut b, c) = stream_buffers(n);
    let scalar = crate::babelstream::SCALAR;
    match lane {
        Lane::Deterministic => {
            for (dst, src) in b.iter_mut().zip(c.iter()) {
                *dst = scalar * *src;
            }
        }
        Lane::Simd => stream_mul(b.as_mut_slice(), &c, scalar),
    }
    checksum(&b)
}

fn run_add(lane: Lane, size: u64) -> f64 {
    let n = size as usize;
    let (a, b, mut c) = stream_buffers(n);
    match lane {
        Lane::Deterministic => {
            for i in 0..n {
                c[i] = a[i] + b[i];
            }
        }
        Lane::Simd => stream_add(c.as_mut_slice(), &a, &b),
    }
    checksum(&c)
}

fn run_triad(lane: Lane, size: u64) -> f64 {
    let n = size as usize;
    let (mut a, b, c) = stream_buffers(n);
    let scalar = crate::babelstream::SCALAR;
    match lane {
        Lane::Deterministic => {
            for i in 0..n {
                a[i] = b[i] + scalar * c[i];
            }
        }
        Lane::Simd => stream_triad(a.as_mut_slice(), &b, &c, scalar),
    }
    checksum(&a)
}

fn run_nstream(lane: Lane, size: u64) -> f64 {
    let n = size as usize;
    let (mut a, b, c) = stream_buffers(n);
    let scalar = crate::babelstream::SCALAR;
    match lane {
        Lane::Deterministic => {
            for i in 0..n {
                a[i] += b[i] + scalar * c[i];
            }
        }
        Lane::Simd => stream_nstream(a.as_mut_slice(), &b, &c, scalar),
    }
    checksum(&a)
}

/// Pre-filled dot inputs, cached per size: dot never writes its inputs, and
/// the crossover bench times [`run_dot`] whole, so refilling buffers on
/// every call would dilute the reduction actually being measured.
fn dot_inputs(n: usize) -> std::sync::Arc<(Vec<f64>, Vec<f64>)> {
    type DotCache = std::sync::Mutex<std::collections::HashMap<usize, DotInputs>>;
    type DotInputs = std::sync::Arc<(Vec<f64>, Vec<f64>)>;
    static CACHE: OnceLock<DotCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| std::sync::Mutex::new(std::collections::HashMap::new()));
    let mut map = cache.lock().unwrap();
    map.entry(n)
        .or_insert_with(|| std::sync::Arc::new((vec![INIT_A; n], vec![INIT_B; n])))
        .clone()
}

fn run_dot(lane: Lane, size: u64) -> f64 {
    let n = size as usize;
    let inputs = dot_inputs(n);
    let (av, bv) = (inputs.0.as_slice(), inputs.1.as_slice());
    match lane {
        Lane::Deterministic => (0..n).into_par_iter().map(|i| av[i] * bv[i]).sum::<f64>(),
        // The fast lane is the hand-unrolled slice kernel itself: 8
        // independent accumulators over direct slice indexing, the shape the
        // auto-vectorizer lowers to packed multiply-adds. Reassociated
        // relative to the deterministic tree within the registered 1e-12.
        Lane::Simd => dot(av, bv),
    }
}

fn run_stencil(lane: Lane, size: u64) -> f64 {
    let l = size as usize;
    let config = StencilConfig::validation(l, Precision::Fp64);
    let u = cache::stencil_grid(&config);
    let mut out: PooledVec<f64> = PooledVec::with_capacity(l * l * l);
    out.resize(l * l * l, 0.0);
    let coeffs = config.coefficients();
    match lane {
        Lane::Deterministic => stencil7_apply_scalar(out.as_mut_slice(), &u, l, coeffs),
        Lane::Simd => stencil7_apply(out.as_mut_slice(), &u, l, coeffs),
    }
    checksum(&out)
}

fn run_pose(lane: Lane, size: u64) -> f64 {
    let config = MiniBudeConfig::paper(1, 8);
    let deck = cache::minibude_deck(&config);
    let poses = (size as usize).min(config.nposes);
    let mut total = 0.0f64;
    for pose in 0..poses {
        total += f64::from(match lane {
            Lane::Deterministic => crate::minibude::pose_energy(&deck, pose),
            Lane::Simd => pose_energy_unrolled(&deck, pose),
        });
    }
    total
}

fn run_fock(lane: Lane, size: u64) -> f64 {
    let config = HartreeFockConfig::validation(size as u32);
    let system = cache::helium_system(&config);
    let nquartets = config.nquartets();
    let sys = &*system;
    match lane {
        Lane::Deterministic => (0..nquartets)
            .into_par_iter()
            .map(|q| {
                let (ij, kl) = pair_decode(q);
                quartet_eri(sys, ij, kl)
            })
            .sum::<f64>(),
        Lane::Simd => (0..nquartets)
            .into_par_iter()
            .map(|q| {
                let (ij, kl) = pair_decode(q);
                quartet_eri_unrolled(sys, ij, kl)
            })
            .sum_unrolled::<f64>(),
    }
}

fn run_jacobi(lane: Lane, size: u64) -> f64 {
    let config = crate::jacobi::JacobiConfig::validation(size as usize, 400);
    let solution = crate::jacobi::solve_host(&config, lane);
    // Checksum couples the control flow (how many sweeps the convergence
    // norm demanded) with the final residual: a lane divergence that changed
    // either is caught far outside the 1e-12 tolerance.
    solution.iters_run as f64 + solution.residuals[solution.iters_run - 1]
}

fn run_framestream(lane: Lane, size: u64) -> f64 {
    let n = size as usize;
    let mut acc: PooledVec<f64> = PooledVec::with_capacity(n);
    acc.resize(n, crate::framestream::ACC_INIT);
    crate::framestream::accumulate_frames(acc.as_mut_slice(), 0..32, lane);
    checksum(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{compare_slices, compare_slices_f32, compare_with_reference};

    #[test]
    fn lane_and_policy_labels_round_trip() {
        for lane in [Lane::Deterministic, Lane::Simd] {
            assert_eq!(lane.label().parse::<Lane>().unwrap(), lane);
        }
        for policy in [
            LanePolicy::Deterministic,
            LanePolicy::Simd,
            LanePolicy::Auto,
        ] {
            assert_eq!(policy.label().parse::<LanePolicy>().unwrap(), policy);
        }
        assert!("frobnicate".parse::<Lane>().is_err());
        assert!("frobnicate".parse::<LanePolicy>().is_err());
        assert_eq!(LanePolicy::default(), LanePolicy::Deterministic);
    }

    #[test]
    fn explicit_policies_resolve_without_the_table() {
        assert_eq!(
            resolve(LanePolicy::Deterministic, KERNEL_DOT, 1 << 20),
            Lane::Deterministic
        );
        assert_eq!(resolve(LanePolicy::Simd, "unknown", 1), Lane::Simd);
    }

    #[test]
    fn crossover_table_round_trips_and_looks_up_by_size() {
        let table = CrossoverTable::new(vec![
            CrossoverEntry {
                kernel: KERNEL_DOT.to_string(),
                size: 4096,
                deterministic_ns: 100.0,
                simd_ns: 120.0,
                speedup: 100.0 / 120.0,
                fastest: Lane::Deterministic,
            },
            CrossoverEntry {
                kernel: KERNEL_DOT.to_string(),
                size: 1 << 20,
                deterministic_ns: 300.0,
                simd_ns: 100.0,
                speedup: 3.0,
                fastest: Lane::Simd,
            },
        ]);
        let parsed = CrossoverTable::parse(&table.to_json_pretty()).unwrap();
        assert_eq!(parsed, table);
        // Below the first measurement: inherit the smallest entry.
        assert_eq!(
            table.fastest_lane(KERNEL_DOT, 16),
            Some(Lane::Deterministic)
        );
        // Between measurements: the verdict below applies.
        assert_eq!(
            table.fastest_lane(KERNEL_DOT, 100_000),
            Some(Lane::Deterministic)
        );
        // At and beyond the crossover.
        assert_eq!(table.fastest_lane(KERNEL_DOT, 1 << 20), Some(Lane::Simd));
        assert_eq!(table.fastest_lane(KERNEL_DOT, 1 << 25), Some(Lane::Simd));
        assert_eq!(table.fastest_lane("unknown", 1), None);
    }

    #[test]
    fn malformed_crossover_tables_are_rejected() {
        assert!(CrossoverTable::parse("{not json").is_err());
        assert!(CrossoverTable::parse("{\"schema\": 99, \"kernels\": []}").is_err());
        assert!(CrossoverTable::parse("{\"schema\": 1}").is_err());
        let negative = "{\"schema\": 1, \"kernels\": [{\"kernel\": \"x\", \"size\": 1, \
             \"deterministic_ns\": -1.0, \"simd_ns\": 1.0, \"speedup\": 1.0, \
             \"fastest\": \"simd\"}]}";
        assert!(CrossoverTable::parse(negative).is_err());
    }

    #[test]
    fn builtin_table_parses_and_covers_every_lane_kernel() {
        let table = CrossoverTable::builtin();
        assert!(!table.entries.is_empty());
        for kernel in lane_kernels() {
            assert!(
                table.fastest_lane(kernel.name, kernel.sizes[0]).is_some(),
                "committed crossover table is missing kernel {}",
                kernel.name
            );
        }
    }

    #[test]
    fn stream_kernels_are_bitwise_identical_to_scalar_loops() {
        let n = 1027; // off the unroll boundary on purpose
        let (a, b, c) = stream_buffers(n);
        let mut scalar = vec![0.0f64; n];
        let mut fast = vec![0.0f64; n];
        for i in 0..n {
            scalar[i] = b[i] + crate::babelstream::SCALAR * c[i];
        }
        stream_triad(&mut fast, &b, &c, crate::babelstream::SCALAR);
        assert_eq!(scalar, fast);
        for i in 0..n {
            scalar[i] = a[i] + b[i];
        }
        stream_add(&mut fast, &a, &b);
        assert_eq!(scalar, fast);
        for i in 0..n {
            scalar[i] = crate::babelstream::SCALAR * c[i];
        }
        stream_mul(&mut fast, &c, crate::babelstream::SCALAR);
        assert_eq!(scalar, fast);
        stream_copy(&mut fast, &a);
        assert_eq!(fast, a.as_slice());
        let mut na = vec![1.0f64; n];
        let mut nb = vec![1.0f64; n];
        for i in 0..n {
            na[i] += b[i] + crate::babelstream::SCALAR * c[i];
        }
        stream_nstream(&mut nb, &b, &c, crate::babelstream::SCALAR);
        assert_eq!(na, nb);
    }

    #[test]
    fn dot_stays_within_the_documented_tolerance_of_the_serial_fold() {
        let n = 10_007;
        let a: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let serial: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        let fast = dot(&a, &b);
        assert!((serial - fast).abs() / serial.abs() < 1e-12);
    }

    #[test]
    fn add_assign_unrolled_is_bitwise_identical() {
        let p: Vec<f64> = (0..517).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let mut scalar: Vec<f64> = (0..517).map(|i| (i as f64).cos()).collect();
        let mut fast = scalar.clone();
        for (a, &v) in scalar.iter_mut().zip(&p) {
            *a += v;
        }
        add_assign_unrolled(&mut fast, &p);
        assert_eq!(scalar, fast);
    }

    #[test]
    fn unrolled_compare_matches_the_scalar_scans_exactly() {
        let expected: Vec<f64> = (0..333).map(|i| 1.0 + i as f64).collect();
        let actual: Vec<f64> = expected.iter().map(|&v| v + 1e-12).collect();
        assert_eq!(
            compare_slices_unrolled(&actual, &expected, 1e-9),
            compare_slices(&actual, &expected, 1e-9)
        );
        let actual32: Vec<f32> = expected.iter().map(|&v| v as f32).collect();
        let expected32: Vec<f32> = actual32.clone();
        assert_eq!(
            compare_slices_f32_unrolled(&actual32, &expected32, 1e-5),
            compare_slices_f32(&actual32, &expected32, 1e-5)
        );
        // Failure cases report the same first offending element.
        let mut broken = actual.clone();
        broken[5] = 1e9;
        broken[6] = 2e9;
        assert_eq!(
            compare_slices_unrolled(&broken, &expected, 1e-9),
            compare_slices(&broken, &expected, 1e-9)
        );
        assert_eq!(
            compare_with_reference_unrolled(&broken, &expected, 1e-9),
            compare_with_reference(&broken, &expected, 1e-9)
        );
        assert!(compare_slices_unrolled(&actual[..10], &expected, 1e-9).is_err());
    }

    #[test]
    fn max_rel_err_chunk_equals_the_scalar_scan() {
        let values: Vec<f64> = (0..257).map(|i| 2.0 + (i as f64).sin() * 1e-13).collect();
        let scalar = values
            .iter()
            .map(|v| (v - 2.0).abs() / 2.0)
            .fold(0.0f64, f64::max);
        let fast = max_rel_err_chunk(|i| values[i], 0, values.len(), 2.0);
        assert_eq!(scalar.to_bits(), fast.to_bits());
    }

    #[test]
    fn every_lane_kernel_is_within_tolerance_at_its_smallest_size() {
        for kernel in lane_kernels() {
            let size = kernel.sizes[0];
            let golden = (kernel.run)(Lane::Deterministic, size);
            let fast = (kernel.run)(Lane::Simd, size);
            let rel = (golden - fast).abs() / golden.abs().max(1.0);
            assert!(
                rel <= kernel.tolerance,
                "{} @ {size}: relative error {rel:.3e} exceeds {:.1e}",
                kernel.name,
                kernel.tolerance
            );
            if kernel.tolerance == 0.0 {
                assert_eq!(golden.to_bits(), fast.to_bits(), "{}", kernel.name);
            }
        }
    }

    #[test]
    fn pose_energy_unrolled_matches_the_reference_within_driver_tolerance() {
        let config = MiniBudeConfig::validation(1, 8);
        let deck = cache::minibude_deck(&config);
        for pose in 0..16 {
            let golden = f64::from(crate::minibude::pose_energy(&deck, pose));
            let fast = f64::from(pose_energy_unrolled(&deck, pose));
            let rel = (golden - fast).abs() / golden.abs().max(1.0);
            assert!(rel < 2e-3, "pose {pose}: {golden} vs {fast}");
        }
    }

    #[test]
    fn eri_batch_sum_matches_the_serial_fold() {
        let config = HartreeFockConfig::validation(8);
        let system = cache::helium_system(&config);
        let quartets: Vec<(u64, u64)> = (0..config.nquartets()).map(pair_decode).collect();
        let serial: f64 = quartets
            .iter()
            .map(|&(ij, kl)| quartet_eri(&system, ij, kl))
            .sum();
        let fast = eri_batch_sum(&system, &quartets);
        assert!((serial - fast).abs() / serial.abs() < 1e-12);
    }
}
