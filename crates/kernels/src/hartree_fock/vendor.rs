//! Vendor-baseline (CUDA/HIP style) Hartree–Fock implementation.
//!
//! Mirrors the CUDA/HIP ports of the basic-hf-proxy the paper compares
//! against: one thread per quartet on raw device buffers, `atomicAdd` on the
//! Fock matrix, launched directly on the simulator without the portable layer.

use super::config::HartreeFockConfig;
use super::cost::hartree_fock_cost;
use super::geometry::HeliumSystem;
use super::reference::quartet_eri;
use super::triangular::pair_decode;
use crate::cache;
use crate::common::{compare_slices, Verification, WorkloadRun};
use gpu_sim::{istr, istr_fmt, launch_flat, PooledVec, SimError};
use vendor_models::{heuristics, KernelClass, Platform};

/// Runs the vendor-baseline Hartree–Fock kernel on `platform`.
pub fn run_vendor(
    platform: &Platform,
    config: &HartreeFockConfig,
) -> Result<WorkloadRun, SimError> {
    let system = cache::helium_system(config);
    let cost = hartree_fock_cost(config, &system);
    let class = KernelClass::HartreeFock {
        natoms: config.natoms,
        ngauss: config.ngauss,
    };
    let profile = platform.execution_profile(&class);
    let timing = cache::timing_model(platform).estimate(&cost, &profile);

    let verification = if config.should_execute() {
        execute(platform, config, &system)?
    } else {
        Verification::Skipped {
            reason: istr_fmt(format_args!(
                "natoms = {} exceeds the functional-execution limit; cost model only",
                config.natoms
            )),
        }
    };

    Ok(WorkloadRun {
        backend: profile.backend.clone(),
        device: istr(&platform.spec.name),
        kernel: istr("hartree_fock"),
        cost,
        profile,
        timing,
        verification,
    })
}

fn execute(
    platform: &Platform,
    config: &HartreeFockConfig,
    system: &HeliumSystem,
) -> Result<Verification, SimError> {
    let natoms = system.natoms;
    let device = cache::device(platform);
    let dens = device.alloc_from_host(&system.dens)?;
    let fock = device.alloc::<f64>(natoms * natoms)?;
    let schwarz = device.alloc_from_host(&system.schwarz)?;

    let nquartets = config.nquartets();
    let launch = heuristics::hartree_fock_launch(nquartets);
    launch.validate(&platform.spec)?;
    let tol = config.screening_tol;

    let (fock_k, dens_k, schwarz_k) = (fock.clone(), dens.clone(), schwarz.clone());
    launch_flat(&launch, move |t| {
        let ijkl = t.global_x();
        if ijkl >= nquartets {
            return;
        }
        let (ij, kl) = pair_decode(ijkl);
        if schwarz_k.read(ij as usize) * schwarz_k.read(kl as usize) <= tol {
            return;
        }
        let eri = quartet_eri(system, ij, kl);
        let (i, j) = pair_decode(ij);
        let (k, l) = pair_decode(kl);
        let (i, j, k, l) = (i as usize, j as usize, k as usize, l as usize);
        let at = |a: usize, b: usize| a * natoms + b;
        fock_k.atomic_add(at(i, j), dens_k.read(at(k, l)) * eri * 4.0);
        fock_k.atomic_add(at(k, l), dens_k.read(at(i, j)) * eri * 4.0);
        fock_k.atomic_add(at(i, k), dens_k.read(at(j, l)) * -eri);
        fock_k.atomic_add(at(i, l), dens_k.read(at(j, k)) * -eri);
        fock_k.atomic_add(at(j, k), dens_k.read(at(i, l)) * -eri);
        fock_k.atomic_add(at(j, l), dens_k.read(at(i, k)) * -eri);
    });

    let expected = cache::hartree_fock_reference(config);
    let mut actual: PooledVec<f64> = PooledVec::new();
    fock.copy_to_host_into(&mut actual);
    match compare_slices(&actual, &expected, 1e-9) {
        Ok(max_abs_error) => Ok(Verification::Passed { max_abs_error }),
        Err(msg) => Err(SimError::InvalidParameter(format!(
            "vendor Hartree-Fock verification failed: {msg}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuda_fock_matches_the_reference() {
        let config = HartreeFockConfig::validation(10);
        let run = run_vendor(&Platform::cuda_h100(false), &config).unwrap();
        assert!(run.verification.is_verified());
        assert_eq!(run.backend, "CUDA");
    }

    #[test]
    fn hip_fock_matches_the_reference() {
        let config = HartreeFockConfig::validation(12);
        let run = run_vendor(&Platform::hip_mi300a(false), &config).unwrap();
        assert!(run.verification.is_verified());
        assert_eq!(run.backend, "HIP");
    }

    #[test]
    fn cuda_duration_is_in_the_table4_ballpark_at_256_atoms() {
        // Table 4: CUDA takes 472 ms for the 256-atom, ngauss = 3 system.
        // Our survivor count depends on the synthetic lattice geometry, so
        // only the order of magnitude is asserted here; the exact paper-vs-
        // measured comparison lives in EXPERIMENTS.md.
        let config = HartreeFockConfig::paper(256, 3);
        let run = run_vendor(&Platform::cuda_h100(false), &config).unwrap();
        assert!(
            run.millis() > 40.0 && run.millis() < 5_000.0,
            "CUDA 256-atom duration {:.1} ms out of expected range",
            run.millis()
        );
    }

    #[test]
    fn portable_collapse_does_not_affect_the_vendor_baseline() {
        let config = HartreeFockConfig::paper(1024, 6);
        let run = run_vendor(&Platform::cuda_h100(false), &config).unwrap();
        assert!((run.profile.atomic_throughput_factor - 1.0).abs() < 1e-12);
    }
}
