//! Analytic launch cost of the fasten kernel.

use super::config::MiniBudeConfig;
use gpu_sim::stats::{AccessPattern, FlopCounts};
use gpu_sim::KernelCost;
use gpu_spec::Precision;
use vendor_models::heuristics;

/// FLOPs of one (ligand atom, protein atom) pair evaluation, classified for
/// the timing model (the transcendental is the short-range exponential whose
/// cost depends on fast-math availability).
pub fn pair_flops() -> FlopCounts {
    FlopCounts {
        adds: 6,
        muls: 6,
        fmas: 2,
        divs: 2,
        sqrts: 1,
        transcendentals: 1,
    }
}

/// FLOPs of transforming one ligand atom into one pose's frame (9 FMAs for
/// the rotation + translation; the sines/cosines are counted per pose).
pub fn transform_flops() -> FlopCounts {
    FlopCounts {
        fmas: 9,
        ..Default::default()
    }
}

/// Builds the launch cost of a fasten run under `config`.
pub fn fasten_cost(config: &MiniBudeConfig) -> KernelCost {
    let nposes = config.nposes as u64;
    let natlig = config.natlig as u64;
    let natpro = config.natpro as u64;
    let launch = heuristics::bude_launch(nposes, config.ppwi, config.wg);

    let pair = pair_flops().scale(nposes * natlig * natpro);
    let transform = transform_flops().scale(nposes * natlig);
    let pose_setup = FlopCounts {
        transcendentals: 6, // three sin/cos pairs per pose
        ..Default::default()
    }
    .scale(nposes);
    let flops = pair.combine(&transform).combine(&pose_setup);

    // Traffic: pose transforms are streamed once; the molecule and force field
    // are re-read per block (they fit in cache); energies are written once.
    let transform_bytes = nposes * 6 * 4;
    let molecule_bytes = (natlig + natpro) * 16 * launch.num_blocks();
    let etotal_bytes = nposes * 4;

    KernelCost::builder(
        "fasten",
        Precision::Fp32,
        launch,
        AccessPattern::ComputeTiled,
    )
    .dram_traffic(transform_bytes + molecule_bytes, etotal_bytes)
    .flops(flops)
    .loads_stores_per_thread(
        (6 + (natlig + natpro) * 4) as f64 * config.ppwi as f64 / config.ppwi as f64,
        config.ppwi as f64,
    )
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_scale_with_the_pair_count() {
        let small = fasten_cost(&MiniBudeConfig::validation(4, 8));
        let large = fasten_cost(&MiniBudeConfig::paper(4, 8));
        assert!(large.flops.total() > small.flops.total());
        // bm1: 65,536 poses × 26 × 938 pairs ≈ 1.6e9 pair evaluations.
        let pairs = 65_536u64 * 26 * 938;
        assert!(large.flops.total() > pairs * 10);
        assert!(large.flops.transcendentals >= pairs);
    }

    #[test]
    fn kernel_is_compute_bound() {
        let cost = fasten_cost(&MiniBudeConfig::paper(8, 64));
        // Arithmetic intensity far beyond any GPU ridge point.
        assert!(cost.arithmetic_intensity_dram() > 100.0);
    }

    #[test]
    fn launch_shape_follows_ppwi_and_wg() {
        let cost = fasten_cost(&MiniBudeConfig::paper(16, 64));
        assert_eq!(cost.launch.threads_per_block(), 64);
        assert_eq!(cost.launch.total_threads(), 65_536 / 16);
        let cost8 = fasten_cost(&MiniBudeConfig::paper(8, 8));
        assert_eq!(cost8.launch.threads_per_block(), 8);
    }

    #[test]
    fn total_flops_are_nearly_ppwi_independent() {
        // The total arithmetic depends on poses × atoms, not on how poses are
        // grouped into work-items.
        let a = fasten_cost(&MiniBudeConfig::paper(1, 64)).flops.total() as f64;
        let b = fasten_cost(&MiniBudeConfig::paper(128, 64)).flops.total() as f64;
        assert!((a / b - 1.0).abs() < 1e-9);
    }
}
