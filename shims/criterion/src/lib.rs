//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the bench targets use (`Criterion::default()`,
//! `sample_size`, `configure_from_args`, `benchmark_group`, `throughput`,
//! `bench_function`, `Bencher::iter`, `final_summary`) as a wall-clock
//! harness: each benchmark closure runs `sample_size` times and mean/min/max
//! are printed, with elements- or bytes-per-second rates when the group
//! declares a [`Throughput`].
//!
//! On top of the console report, every finished group exports a
//! machine-readable record to `target/bench/<group>.json` (schema documented
//! on [`BenchmarkGroup::finish`]) so bench history can be tracked across
//! commits by diffing or plotting the JSON trajectory. Targets can attach
//! named scalar counters to a group via [`BenchmarkGroup::counter`] (the
//! bench crate uses this for buffer-pool telemetry); they land in a
//! `"counters"` array of the record.
//!
//! Recognised command-line flags (as passed by `cargo bench -- <flags>`):
//! `--test` (cargo's bench-as-test mode) and `--smoke` both reduce every
//! benchmark to a single sample, making a full `cargo bench -- --smoke` sweep
//! cheap enough for CI while still exercising every target and emitting the
//! JSON artifacts.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Work performed per benchmark iteration, enabling rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many abstract elements (poses, cells, …).
    Elements(u64),
    /// Iterations move this many bytes.
    Bytes(u64),
}

impl Throughput {
    fn amount(&self) -> u64 {
        match self {
            Throughput::Elements(n) | Throughput::Bytes(n) => *n,
        }
    }

    fn unit(&self) -> &'static str {
        match self {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Throughput::Elements(_) => "elements",
            Throughput::Bytes(_) => "bytes",
        }
    }
}

/// One measured benchmark, as exported to the JSON record.
#[derive(Debug, Clone)]
struct Measurement {
    id: String,
    samples: u64,
    mean_ns: f64,
    min_ns: u128,
    max_ns: u128,
    throughput: Option<Throughput>,
}

impl Measurement {
    /// Units of declared work per second, computed from the mean time.
    fn rate_per_sec(&self) -> Option<f64> {
        let throughput = self.throughput.as_ref()?;
        if self.mean_ns <= 0.0 {
            return None;
        }
        Some(throughput.amount() as f64 * 1e9 / self.mean_ns)
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Applies command-line configuration: `--test` (cargo bench-as-test) and
    /// `--smoke` (CI smoke sweep) both clamp every benchmark to one sample.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test" || a == "--smoke") {
            self.test_mode = true;
        }
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
            measurements: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// Prints the closing summary.
    pub fn final_summary(&self) {
        println!("criterion(shim): benchmarks complete");
    }
}

/// Directory for the JSON bench records: `target/bench/` under the workspace
/// root, honouring `CARGO_TARGET_DIR`.
///
/// Cargo runs bench binaries with the *package* directory as the working
/// directory, so a relative `target/` would scatter records across member
/// crates; instead the workspace root is located by walking up to the
/// directory holding `Cargo.lock`.
pub fn bench_dir() -> PathBuf {
    if let Ok(base) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(base).join("bench");
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target").join("bench");
        }
        if !dir.pop() {
            return PathBuf::from("target").join("bench");
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
    measurements: Vec<Measurement>,
    counters: Vec<(String, u64)>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declares the work performed per iteration of the following benchmarks;
    /// their reports gain an elements- or bytes-per-second rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Records a named scalar counter on the group record (e.g. allocator or
    /// cache telemetry gathered by the bench target around its runs). The
    /// shim itself attaches no meaning to the name; counters land verbatim in
    /// the group's JSON record. A repeated name overwrites the earlier value.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        let name = name.into();
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => self.counters.push((name, value)),
        }
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        let mut bencher = Bencher {
            samples,
            total_ns: 0,
            min_ns: u128::MAX,
            max_ns: 0,
            iterations: 0,
        };
        f(&mut bencher);
        if bencher.iterations > 0 {
            let measurement = Measurement {
                id,
                samples: bencher.iterations,
                mean_ns: bencher.total_ns as f64 / bencher.iterations as f64,
                min_ns: bencher.min_ns,
                max_ns: bencher.max_ns,
                throughput: self.throughput,
            };
            let mut line = format!(
                "{}/{}: mean {:.3} ms, min {:.3} ms ({} iterations)",
                self.name,
                measurement.id,
                measurement.mean_ns / 1e6,
                measurement.min_ns as f64 / 1e6,
                measurement.samples
            );
            if let (Some(rate), Some(throughput)) =
                (measurement.rate_per_sec(), measurement.throughput.as_ref())
            {
                let _ = write!(line, ", {:.3e} {}", rate, throughput.unit());
            }
            println!("{line}");
            self.measurements.push(measurement);
        }
        self
    }

    /// Ends the group, writing its JSON record to
    /// `target/bench/<group>.json`.
    ///
    /// Schema (stable across PRs; see the `bench` crate docs):
    ///
    /// ```json
    /// {
    ///   "group": "<group name>",
    ///   "benchmarks": [
    ///     {
    ///       "id": "<benchmark id>",
    ///       "samples": <u64>,
    ///       "mean_ns": <f64>,
    ///       "min_ns": <u64>,
    ///       "max_ns": <u64>,
    ///       "throughput": { "kind": "elements"|"bytes", "amount": <u64>,
    ///                        "per_sec": <f64> } | null
    ///     }
    ///   ],
    ///   "counters": [ { "name": "<counter>", "value": <u64> } ]
    /// }
    /// ```
    ///
    /// `counters` holds whatever the target recorded via
    /// [`BenchmarkGroup::counter`] (empty array when nothing was recorded);
    /// readers written against the pre-counter schema can ignore the key.
    pub fn finish(self) {
        if self.measurements.is_empty() {
            return;
        }
        let path = bench_dir().join(format!("{}.json", self.name));
        match write_json_record(&path, &self.name, &self.measurements, &self.counters) {
            Ok(()) => println!("criterion(shim): wrote {}", path.display()),
            Err(err) => eprintln!("criterion(shim): failed to write {}: {err}", path.display()),
        }
    }
}

/// Serialises measurements by hand — the shim stays dependency-free, and the
/// schema is flat enough that a formatter is more code than the emitter.
fn write_json_record(
    path: &std::path::Path,
    group: &str,
    measurements: &[Measurement],
    counters: &[(String, u64)],
) -> std::io::Result<()> {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"group\": {},", json_string(group));
    json.push_str("  \"benchmarks\": [\n");
    for (index, m) in measurements.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"id\": {},", json_string(&m.id));
        let _ = writeln!(json, "      \"samples\": {},", m.samples);
        let _ = writeln!(json, "      \"mean_ns\": {:.1},", m.mean_ns);
        let _ = writeln!(json, "      \"min_ns\": {},", m.min_ns);
        let _ = writeln!(json, "      \"max_ns\": {},", m.max_ns);
        match (&m.throughput, m.rate_per_sec()) {
            (Some(t), Some(rate)) => {
                let _ = writeln!(
                    json,
                    "      \"throughput\": {{ \"kind\": \"{}\", \"amount\": {}, \"per_sec\": {:.1} }}",
                    t.kind(),
                    t.amount(),
                    rate
                );
            }
            _ => json.push_str("      \"throughput\": null\n"),
        }
        json.push_str(if index + 1 < measurements.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"counters\": [");
    for (index, (name, value)) in counters.iter().enumerate() {
        let sep = if index + 1 < counters.len() { "," } else { "" };
        let _ = write!(
            json,
            "\n    {{ \"name\": {}, \"value\": {} }}{sep}",
            json_string(name),
            value
        );
    }
    if counters.is_empty() {
        json.push_str("]\n}\n");
    } else {
        json.push_str("\n  ]\n}\n");
    }

    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, json)
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Passed to each benchmark closure; times the routine under measurement.
pub struct Bencher {
    samples: usize,
    total_ns: u128,
    min_ns: u128,
    max_ns: u128,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` `sample_size` times, recording wall-clock durations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed().as_nanos();
            self.total_ns += elapsed;
            self.min_ns = self.min_ns.min(elapsed);
            self.max_ns = self.max_ns.max(elapsed);
            self.iterations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("unit-shim-run");
            group.bench_function("count", |b| b.iter(|| ran += 1));
            group.finish();
        }
        assert_eq!(ran, 2);
        c.final_summary();
        std::fs::remove_file(bench_dir().join("unit-shim-run.json")).ok();
    }

    #[test]
    fn json_record_has_schema_fields_and_throughput() {
        let mut c = Criterion::default().sample_size(3);
        {
            let mut group = c.benchmark_group("unit-shim-json");
            group.throughput(Throughput::Elements(1000));
            group.bench_function("spin", |b| b.iter(|| black_box((0..100u64).sum::<u64>())));
            group.counter("pool_hits", 41);
            group.counter("pool_hits", 42); // overwrite, not duplicate
            group.counter("pool_misses", 7);
            group.finish();
        }
        let path = bench_dir().join("unit-shim-json.json");
        let json = std::fs::read_to_string(&path).expect("bench JSON written");
        for needle in [
            "\"group\": \"unit-shim-json\"",
            "\"id\": \"spin\"",
            "\"samples\": 3",
            "\"mean_ns\":",
            "\"min_ns\":",
            "\"max_ns\":",
            "\"kind\": \"elements\"",
            "\"amount\": 1000",
            "\"per_sec\":",
            "{ \"name\": \"pool_hits\", \"value\": 42 },",
            "{ \"name\": \"pool_misses\", \"value\": 7 }",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(
            !json.contains("\"value\": 41 "),
            "overwritten counter value leaked: {json}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn records_without_counters_emit_an_empty_array() {
        let mut c = Criterion::default().sample_size(1);
        {
            let mut group = c.benchmark_group("unit-shim-nocounters");
            group.bench_function("noop", |b| b.iter(|| black_box(1u64)));
            group.finish();
        }
        let path = bench_dir().join("unit-shim-nocounters.json");
        let json = std::fs::read_to_string(&path).expect("bench JSON written");
        assert!(json.contains("\"counters\": []"), "{json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("tab\there"), "\"tab\\u0009here\"");
    }
}
