//! Bench target for Figure 3 — seven-point stencil bandwidth, Mojo vs
//! CUDA (H100) and Mojo vs HIP (MI300A).

use criterion::{Criterion, Throughput};
use experiment_report::ExperimentId;
use gpu_spec::Precision;
use science_kernels::stencil7::{self, StencilConfig};
use vendor_models::Platform;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_stencil");
    // Functional execution of the portable stencil on a reduced grid: the
    // simulated-kernel work `cargo bench` actually measures on the host.
    for l in [64usize, 96, 128] {
        group.throughput(Throughput::Elements((l as u64).pow(3)));
        group.bench_function(format!("portable_laplacian_L{l}"), |b| {
            let platform = Platform::portable_h100();
            let config = StencilConfig::validation(l, Precision::Fp64);
            b.iter(|| stencil7::run(&platform, &config).unwrap())
        });
    }
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Fig3);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
