//! Vendor-baseline (CUDA/HIP style) BabelStream implementation.
//!
//! Mirrors the structure of the optimised CUDA/HIP BabelStream codes the
//! paper compares against: raw device buffers, the vendor's block-count
//! heuristic for the Dot reduction (4 blocks per SM/CU), and kernels launched
//! directly on the simulator rather than through the portable `DeviceContext`.

use super::config::{BabelStreamConfig, INIT_A, INIT_B, INIT_C, SCALAR};
use super::cost::stream_cost;
use super::reference::expected_values;
use crate::cache;
use crate::common::{Verification, WorkloadRun};
use crate::real::Real;
use gpu_sim::memory::DeviceBuffer;
use gpu_sim::{istr, launch_flat, CoopKernel, CoopLaunch, Dim3, PhaseOutcome, SimError, ThreadCtx};
use rayon::prelude::*;
use vendor_models::kernel_class::StreamOp;
use vendor_models::{heuristics, KernelClass, Platform};

/// Runs one BabelStream operation with the vendor baseline.
pub fn run_vendor(
    platform: &Platform,
    op: StreamOp,
    config: &BabelStreamConfig,
) -> Result<WorkloadRun, SimError> {
    let cost = stream_cost(platform, op, config);
    let class = KernelClass::Stream {
        op,
        precision: config.precision,
    };
    let profile = platform.execution_profile(&class);
    let timing = cache::timing_model(platform).estimate(&cost, &profile);

    let verification = if config.validate {
        match config.precision {
            gpu_spec::Precision::Fp32 => execute::<f32>(platform, op, config)?,
            gpu_spec::Precision::Fp64 => execute::<f64>(platform, op, config)?,
        }
    } else {
        Verification::Skipped {
            reason: istr("functional execution disabled for this configuration"),
        }
    };

    Ok(WorkloadRun {
        backend: profile.backend.clone(),
        device: istr(&platform.spec.name),
        kernel: istr(op.label()),
        cost,
        profile,
        timing,
        verification,
    })
}

/// CUDA-style Dot kernel on raw buffers with the vendor grid heuristic.
struct VendorDotKernel<T: Real> {
    a: DeviceBuffer<T>,
    b: DeviceBuffer<T>,
    sums: DeviceBuffer<T>,
    n: usize,
}

impl<T: Real> CoopKernel for VendorDotKernel<T> {
    type Shared = T;
    type ThreadState = ();

    fn shared_len(&self, block_dim: Dim3) -> usize {
        block_dim.total() as usize
    }

    fn phase(
        &self,
        phase: usize,
        ctx: ThreadCtx,
        _state: &mut (),
        shared: &mut [T],
    ) -> PhaseOutcome {
        let tid = ctx.thread_idx.x as usize;
        let block_size = ctx.block_dim.x as usize;
        if phase == 0 {
            let mut acc = T::from_f64(0.0);
            let mut i = ctx.global_x() as usize;
            let stride = ctx.threads_in_grid_x() as usize;
            while i < self.n {
                acc += self.a.read(i) * self.b.read(i);
                i += stride;
            }
            shared[tid] = acc;
            return PhaseOutcome::Continue;
        }
        let offset = block_size >> phase;
        if offset == 0 {
            if tid == 0 {
                self.sums.write(ctx.block_idx.x as usize, shared[0]);
            }
            return PhaseOutcome::Done;
        }
        if tid < offset {
            let other = shared[tid + offset];
            shared[tid] += other;
        }
        PhaseOutcome::Continue
    }
}

fn execute<T: Real>(
    platform: &Platform,
    op: StreamOp,
    config: &BabelStreamConfig,
) -> Result<Verification, SimError> {
    let n = config.n;
    let device = cache::device(platform);
    let a = device.alloc::<T>(n)?;
    let b = device.alloc::<T>(n)?;
    let c = device.alloc::<T>(n)?;
    a.fill(T::from_f64(INIT_A));
    b.fill(T::from_f64(INIT_B));
    c.fill(T::from_f64(INIT_C));
    let scalar = T::from_f64(SCALAR);

    let launch = heuristics::stream_launch(n as u64);
    launch.validate(&platform.spec)?;
    let expected = expected_values(op, config);

    let max_rel: f64 = match op {
        StreamOp::Copy => {
            let (ak, ck) = (a.clone(), c.clone());
            launch_flat(&launch, move |t| {
                let i = t.global_x() as usize;
                if i < n {
                    ck.write(i, ak.read(i));
                }
            });
            relative_error(&c, expected)
        }
        StreamOp::Mul => {
            let (bk, ck) = (b.clone(), c.clone());
            launch_flat(&launch, move |t| {
                let i = t.global_x() as usize;
                if i < n {
                    bk.write(i, scalar * ck.read(i));
                }
            });
            relative_error(&b, expected)
        }
        StreamOp::Add => {
            let (ak, bk, ck) = (a.clone(), b.clone(), c.clone());
            launch_flat(&launch, move |t| {
                let i = t.global_x() as usize;
                if i < n {
                    ck.write(i, ak.read(i) + bk.read(i));
                }
            });
            relative_error(&c, expected)
        }
        StreamOp::Triad => {
            let (ak, bk, ck) = (a.clone(), b.clone(), c.clone());
            launch_flat(&launch, move |t| {
                let i = t.global_x() as usize;
                if i < n {
                    ak.write(i, bk.read(i) + scalar * ck.read(i));
                }
            });
            relative_error(&a, expected)
        }
        StreamOp::Dot => {
            let dot_launch = heuristics::dot_launch(platform.backend, &platform.spec, n as u64);
            dot_launch.validate(&platform.spec)?;
            let sums = device.alloc::<T>(dot_launch.num_blocks() as usize)?;
            let kernel = VendorDotKernel {
                a: a.clone(),
                b: b.clone(),
                sums: sums.clone(),
                n,
            };
            CoopLaunch::run(&dot_launch, &kernel);
            // Deterministic host-side reduction of the per-block partials,
            // reading straight from the device buffer.
            let partials = &sums;
            let total: f64 = (0..partials.len())
                .into_par_iter()
                .map(|i| partials.read(i).to_f64())
                .sum();
            (total - expected).abs() / expected.abs().max(1.0)
        }
    };

    if max_rel <= T::tolerance() {
        Ok(Verification::Passed {
            max_abs_error: max_rel,
        })
    } else {
        Err(SimError::InvalidParameter(format!(
            "vendor BabelStream {op} verification failed: relative error {max_rel:.3e}"
        )))
    }
}

fn relative_error<T: Real>(buffer: &DeviceBuffer<T>, expected: f64) -> f64 {
    // Pool-parallel max scan over the output array (order-independent, and
    // the lane's fixed chunking keeps it deterministic regardless).
    (0..buffer.len())
        .into_par_iter()
        .map(|i| {
            let v = buffer.read(i).to_f64();
            (v - expected).abs() / expected.abs().max(1.0)
        })
        .reduce(|| 0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;

    #[test]
    fn cuda_baseline_verifies_all_ops() {
        let config = BabelStreamConfig::validation(1 << 13, Precision::Fp64);
        for op in StreamOp::ALL {
            let run = run_vendor(&Platform::cuda_h100(false), op, &config).unwrap();
            assert!(run.verification.is_verified(), "{op}");
            assert_eq!(run.backend, "CUDA");
        }
    }

    #[test]
    fn hip_baseline_verifies_dot_with_vendor_grid() {
        let config = BabelStreamConfig::validation(1 << 14, Precision::Fp32);
        let run = run_vendor(&Platform::hip_mi300a(false), StreamOp::Dot, &config).unwrap();
        assert!(run.verification.is_verified());
        // The vendor heuristic sizes the grid from the CU count.
        let cus = gpu_spec::presets::mi300a().topology.num_compute_units;
        assert_eq!(run.cost.launch.num_blocks(), u64::from(cus * 4));
    }

    #[test]
    fn dot_duration_gap_matches_table3() {
        // Table 3: Dot takes 0.215 ms (Mojo) vs 0.168 ms (CUDA).
        let config = BabelStreamConfig::paper(Precision::Fp64);
        let cuda = run_vendor(&Platform::cuda_h100(false), StreamOp::Dot, &config).unwrap();
        let mojo =
            super::super::run_portable(&Platform::portable_h100(), StreamOp::Dot, &config).unwrap();
        assert!(
            (cuda.millis() - 0.168).abs() < 0.03,
            "CUDA dot {}",
            cuda.millis()
        );
        assert!(
            (mojo.millis() - 0.215).abs() < 0.03,
            "Mojo dot {}",
            mojo.millis()
        );
    }
}
