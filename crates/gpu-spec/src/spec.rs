//! The top-level GPU specification type and derived roofline quantities.

use crate::memory::MemoryHierarchy;
use crate::vendor::Vendor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Floating-point precision of a kernel's arithmetic, used to select the
/// correct peak-FLOP ceiling (the paper runs FP32 and FP64 variants of the
/// stencil and BabelStream and FP64 Hartree–Fock; miniBUDE is FP32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE-754 single precision (`f32`).
    Fp32,
    /// IEEE-754 double precision (`f64`).
    Fp64,
}

impl Precision {
    /// Size of one element of this precision in bytes.
    pub fn size_of(&self) -> usize {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp64 => 8,
        }
    }

    /// Short display name matching the paper's figures ("FP32" / "FP64").
    pub fn label(&self) -> &'static str {
        match self {
            Precision::Fp32 => "FP32",
            Precision::Fp64 => "FP64",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Compute-side topology of the device: how many SMs/CUs it has and how much
/// parallel state each can hold. Used for occupancy and launch-heuristic
/// modelling (the CUDA BabelStream baseline, for instance, sizes its dot-kernel
/// grid from the multiprocessor count).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeTopology {
    /// Number of streaming multiprocessors (NVIDIA) or compute units (AMD).
    pub num_compute_units: u32,
    /// Maximum resident threads per compute unit.
    pub max_threads_per_unit: u32,
    /// Maximum threads per block the hardware accepts.
    pub max_threads_per_block: u32,
    /// Number of 32-bit registers available per compute unit.
    pub registers_per_unit: u32,
    /// SIMT scheduling width (32 for NVIDIA warps, 64 for AMD wavefronts).
    pub simt_width: u32,
    /// Base clock of the compute units in GHz (used only for latency-bound
    /// corrections; throughput figures come from the published peaks).
    pub clock_ghz: f64,
}

impl ComputeTopology {
    /// Maximum number of threads resident on the whole device.
    pub fn max_resident_threads(&self) -> u64 {
        u64::from(self.num_compute_units) * u64::from(self.max_threads_per_unit)
    }

    /// Occupancy (0..=1) achievable by a kernel that needs
    /// `registers_per_thread` registers and blocks of `block_size` threads.
    ///
    /// This is a simplified occupancy model: the limiting factor is either the
    /// register file or the resident-thread limit; shared memory is handled by
    /// the simulator separately because it is per-kernel.
    pub fn occupancy(&self, registers_per_thread: u32, block_size: u32) -> f64 {
        if block_size == 0 || block_size > self.max_threads_per_block {
            return 0.0;
        }
        let reg_limited_threads = self
            .registers_per_unit
            .checked_div(registers_per_thread)
            .unwrap_or(self.max_threads_per_unit)
            .min(self.max_threads_per_unit);
        // Blocks are granular: a partially-fitting block does not run.
        let blocks_by_regs = reg_limited_threads / block_size;
        let blocks_by_threads = self.max_threads_per_unit / block_size;
        let resident_blocks = blocks_by_regs.min(blocks_by_threads);
        let resident_threads = resident_blocks * block_size;
        f64::from(resident_threads) / f64::from(self.max_threads_per_unit)
    }
}

/// Full description of one GPU, combining the published headline figures
/// (Table 1 of the paper) with the architectural detail needed by the
/// simulator and codegen models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. "NVIDIA H100 NVL - 94 GB".
    pub name: String,
    /// Silicon vendor.
    pub vendor: Vendor,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Peak device-memory bandwidth in GB/s (decimal), Table 1 column 2.
    pub bandwidth_gbs: f64,
    /// Peak FP32 throughput in TFLOP/s, Table 1 column 3.
    pub fp32_tflops: f64,
    /// Peak FP64 throughput in TFLOP/s, Table 1 column 4.
    pub fp64_tflops: f64,
    /// Compute topology (SM/CU counts, registers, SIMT width).
    pub topology: ComputeTopology,
    /// Cache/memory hierarchy.
    pub memory: MemoryHierarchy,
    /// Sustained fraction of peak FP64 global-atomic throughput, expressed as
    /// giga-updates per second under heavy contention. Drives the
    /// Hartree–Fock atomic model.
    pub atomic_fp64_gups: f64,
}

impl GpuSpec {
    /// Peak floating-point throughput in FLOP/s for the given precision.
    pub fn peak_flops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fp32 => self.fp32_tflops * 1e12,
            Precision::Fp64 => self.fp64_tflops * 1e12,
        }
    }

    /// Peak device-memory bandwidth in bytes per second.
    pub fn peak_bandwidth_bytes_per_s(&self) -> f64 {
        self.bandwidth_gbs * 1e9
    }

    /// The roofline "ridge point": the arithmetic intensity (FLOP/byte) at
    /// which a kernel transitions from memory-bound to compute-bound on this
    /// device, for the given precision.
    pub fn ridge_point(&self, precision: Precision) -> f64 {
        self.peak_flops(precision) / self.peak_bandwidth_bytes_per_s()
    }

    /// Attainable FLOP/s under the roofline model for a kernel with the given
    /// arithmetic intensity (FLOP per byte of device-memory traffic).
    pub fn roofline_flops(&self, arithmetic_intensity: f64, precision: Precision) -> f64 {
        (arithmetic_intensity * self.peak_bandwidth_bytes_per_s()).min(self.peak_flops(precision))
    }

    /// Whether a kernel of the given arithmetic intensity is memory-bound on
    /// this device.
    pub fn is_memory_bound(&self, arithmetic_intensity: f64, precision: Precision) -> bool {
        arithmetic_intensity < self.ridge_point(precision)
    }

    /// Validates the spec: positive peaks, consistent hierarchy, and an FP64
    /// peak not exceeding the FP32 peak.
    pub fn validate(&self) -> Result<(), String> {
        if self.bandwidth_gbs <= 0.0 || self.fp32_tflops <= 0.0 || self.fp64_tflops <= 0.0 {
            return Err("peak figures must be positive".to_string());
        }
        if self.fp64_tflops > self.fp32_tflops {
            return Err("FP64 peak cannot exceed FP32 peak".to_string());
        }
        if self.memory_bytes == 0 {
            return Err("device memory must be non-zero".to_string());
        }
        if self.topology.num_compute_units == 0 || self.topology.max_threads_per_block == 0 {
            return Err("topology must have compute units and a block limit".to_string());
        }
        if self.atomic_fp64_gups <= 0.0 {
            return Err("atomic throughput must be positive".to_string());
        }
        self.memory.validate()
    }
}

impl fmt::Display for GpuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} GB/s, {:.1} FP32 TFLOP/s, {:.1} FP64 TFLOP/s]",
            self.name, self.bandwidth_gbs, self.fp32_tflops, self.fp64_tflops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn precision_sizes() {
        assert_eq!(Precision::Fp32.size_of(), 4);
        assert_eq!(Precision::Fp64.size_of(), 8);
        assert_eq!(Precision::Fp32.label(), "FP32");
        assert_eq!(Precision::Fp64.to_string(), "FP64");
    }

    #[test]
    fn ridge_point_orders_kernels() {
        let h100 = presets::h100_nvl();
        // A STREAM-like kernel (ai ~ 0.08 for triad FP64) is memory bound,
        // a dense compute kernel (ai ~ 50) is compute bound.
        assert!(h100.is_memory_bound(0.08, Precision::Fp64));
        assert!(!h100.is_memory_bound(50.0, Precision::Fp32));
    }

    #[test]
    fn roofline_is_capped_at_peak() {
        let h100 = presets::h100_nvl();
        let peak = h100.peak_flops(Precision::Fp32);
        assert!((h100.roofline_flops(1e6, Precision::Fp32) - peak).abs() < 1.0);
        // In the memory-bound regime the roofline is linear in intensity.
        let lo = h100.roofline_flops(0.1, Precision::Fp32);
        let hi = h100.roofline_flops(0.2, Precision::Fp32);
        assert!((hi / lo - 2.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_basics() {
        let topo = presets::h100_nvl().topology;
        // Zero registers -> thread-limited occupancy of 1 with a well-chosen block.
        let occ = topo.occupancy(0, 1024);
        assert!(occ > 0.99);
        // Huge register demand lowers occupancy.
        let occ_heavy = topo.occupancy(255, 1024);
        assert!(occ_heavy < occ);
        // Invalid block sizes yield zero.
        assert_eq!(topo.occupancy(32, 0), 0.0);
        assert_eq!(topo.occupancy(32, topo.max_threads_per_block + 1), 0.0);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut spec = presets::h100_nvl();
        assert!(spec.validate().is_ok());
        spec.fp64_tflops = spec.fp32_tflops * 2.0;
        assert!(spec.validate().is_err());

        let mut spec = presets::mi300a();
        spec.bandwidth_gbs = -1.0;
        assert!(spec.validate().is_err());

        let mut spec = presets::h100_nvl();
        spec.atomic_fp64_gups = 0.0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn display_contains_name_and_peaks() {
        let s = presets::h100_nvl().to_string();
        assert!(s.contains("H100"));
        assert!(s.contains("3900"));
    }

    #[test]
    fn serde_round_trip() {
        let spec = presets::mi300a();
        let json = serde_json::to_string(&spec).unwrap();
        let back: GpuSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
