//! Quickstart: the portable programming model in five minutes.
//!
//! Mirrors the paper's Listing 1 (`fill_one`) and then runs one step of the
//! seven-point stencil on both simulated devices, printing the effective
//! bandwidth of Eq. (1) for the portable backend and the vendor baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use mojo_hpc::kernels::stencil7::{self, StencilConfig};
use mojo_hpc::metrics::stencil_bandwidth_gbs;
use mojo_hpc::portable::prelude::*;
use mojo_hpc::spec::{presets, Precision};
use mojo_hpc::vendor::Platform;

fn main() {
    // ---------------------------------------------------------------- Listing 1
    // Compile-time style configuration (Mojo `alias`es become constants).
    const NX: usize = 1024;
    const BLOCK_SIZE: u32 = 256;

    let ctx = DeviceContext::new(presets::h100_nvl());
    let d_u = ctx
        .enqueue_create_buffer::<f32>(NX)
        .expect("allocate buffer");
    let u_tensor = LayoutTensor::new(d_u, Layout::row_major_1d(NX)).expect("bind layout");

    let tensor = u_tensor.clone();
    ctx.enqueue_function(
        LaunchConfig::cover_1d(NX as u64, BLOCK_SIZE),
        move |t: ThreadCtx| {
            let tid = t.global_x() as usize;
            if tid < NX {
                tensor.set(tid, 1.0);
            }
        },
    )
    .expect("launch fill_one");
    ctx.synchronize();
    let filled = u_tensor.to_host().iter().filter(|&&v| v == 1.0).count();
    println!(
        "fill_one: {filled}/{NX} elements set to 1 on {}",
        ctx.spec().name
    );

    // ------------------------------------------------- one stencil step per device
    println!("\nSeven-point stencil, L = 512, FP64 (effective bandwidth, Eq. 1):");
    let config = StencilConfig::paper(512, Precision::Fp64);
    for platform in [
        Platform::portable_h100(),
        Platform::cuda_h100(false),
        Platform::portable_mi300a(),
        Platform::hip_mi300a(false),
    ] {
        let run = stencil7::run(&platform, &config).expect("stencil run");
        let bandwidth = stencil_bandwidth_gbs(config.l as u64, config.precision, run.seconds());
        println!(
            "  {:<38} {:>8.2} ms   {:>8.0} GB/s",
            platform.label(),
            run.millis(),
            bandwidth
        );
    }

    // And a small, fully validated run to show the numerics are real.
    let validated = stencil7::run(
        &Platform::portable_h100(),
        &StencilConfig::validation(64, Precision::Fp64),
    )
    .expect("validated stencil run");
    println!("\nValidation run (L = 64): {:?}", validated.verification);
}
