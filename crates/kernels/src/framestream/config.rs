//! Streaming-dataset engine configuration.

use serde::{Deserialize, Serialize};

/// Functional-execution budget: total streamed elements (`n × frames`) above
/// which the driver falls back to the cost model. 2^24 elements keeps the
/// default batch (16384 × 64 ≈ 2^20) comfortably functional while bounding
/// CI time for parameter sweeps.
pub const MAX_FUNCTIONAL_ELEMENTS: u64 = 1 << 24;

/// Exponential-moving-average blend weight of the incoming frame.
pub const ALPHA: f64 = 0.25;

/// Exponential-moving-average carry weight of the accumulator. `ALPHA + BETA
/// = 1`, so the accumulator stays bounded for bounded frame values.
pub const BETA: f64 = 0.75;

/// Initial accumulator value.
pub const ACC_INIT: f64 = 0.5;

/// Period of the synthetic frame schedule: frame values repeat every 16
/// frames, which makes the closed-form expected accumulator cheap while still
/// exercising a different scale on (almost) every frame.
pub const FRAME_PERIOD: u64 = 16;

/// The synthetic value filling frame `f`. Constant within a frame — that is
/// what makes the expected final accumulator a closed-form serial fold — and
/// bounded in `[0.1, 0.85]`, so the EMA stays well away from overflow or
/// underflow at any frame count.
pub fn frame_value(f: u64) -> f64 {
    0.1 + 0.05 * ((f % FRAME_PERIOD) as f64)
}

/// Configuration of one streaming-dataset experiment. Like the Jacobi
/// solver, the engine is FP64-only: the partition-invariance contract is a
/// property of the arithmetic order, not of the element width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameStreamConfig {
    /// Elements per frame.
    pub n: usize,
    /// Number of frames in the batch.
    pub frames: usize,
    /// Whether to execute the stream functionally and validate against the
    /// closed-form accumulator.
    pub validate: bool,
}

impl FrameStreamConfig {
    /// The standard configuration: functional validation whenever the total
    /// streamed element count fits the budget.
    pub fn paper(n: usize, frames: usize) -> Self {
        FrameStreamConfig {
            n,
            frames,
            validate: (n as u64).saturating_mul(frames as u64) <= MAX_FUNCTIONAL_ELEMENTS,
        }
    }

    /// A configuration that always executes functionally; used by tests.
    pub fn validation(n: usize, frames: usize) -> Self {
        FrameStreamConfig {
            n,
            frames,
            validate: true,
        }
    }

    /// Whether the driver should run the stream functionally.
    pub fn should_execute(&self) -> bool {
        self.validate
            && (self.n as u64).saturating_mul(self.frames as u64) <= MAX_FUNCTIONAL_ELEMENTS
    }

    /// Total elements streamed across the batch.
    pub fn streamed_elements(&self) -> u64 {
        self.n as u64 * self.frames as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_ema_weights_form_a_convex_combination() {
        assert_eq!(ALPHA + BETA, 1.0);
        assert_eq!(ACC_INIT, 0.5);
    }

    #[test]
    fn frame_values_are_bounded_and_periodic() {
        for f in 0..64 {
            let v = frame_value(f);
            assert!((0.1..=0.85).contains(&v));
            assert_eq!(v, frame_value(f + FRAME_PERIOD));
        }
    }

    #[test]
    fn paper_configs_gate_on_the_streamed_element_budget() {
        let default = FrameStreamConfig::paper(16_384, 64);
        assert!(default.should_execute());
        assert_eq!(default.streamed_elements(), 1 << 20);
        let huge = FrameStreamConfig::paper(1 << 20, 1 << 10);
        assert!(!huge.should_execute());
    }
}
