//! Offline stand-in for `rand`.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen` and
//! `Rng::gen_range` over a xoshiro256++ generator seeded with splitmix64 —
//! deterministic, fast, and statistically strong enough for simulation
//! jitter, synthetic deck generation and property-test sampling.

use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator (the `Standard` distribution).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (the argument type of [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($(($t:ty, $ut:ty)),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Two's-complement wrapping arithmetic through the same-width
                // unsigned type yields a correct uniform offset for signed
                // ranges (negative starts) and for spans exceeding the signed
                // maximum alike.
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i32, u32),
    (i64, u64),
    (isize, usize)
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_samples_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut low = false;
        let mut high = false;
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0f32..6.0);
            assert!((-2.0..6.0).contains(&x));
            low |= x < 0.0;
            high |= x > 4.0;
        }
        assert!(low && high);
        for _ in 0..100 {
            let n = rng.gen_range(3u32..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn signed_ranges_with_negative_starts_sample_correctly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut below_zero = false;
        for _ in 0..1000 {
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
            below_zero |= n < 0;
        }
        assert!(below_zero);
        // Spans wider than the signed maximum still stay in bounds.
        for _ in 0..100 {
            let n = rng.gen_range(i64::MIN..i64::MAX);
            assert!(n < i64::MAX);
        }
    }
}
