//! Per-backend, per-kernel execution profiles — the calibrated constants that
//! make the timing model reproduce the paper's measurements.
//!
//! Every constant below is an *effective* quantity: the fraction of a peak a
//! given compiler backend sustains for a given kernel family on a given
//! device. They were calibrated against the paper's published numbers:
//!
//! * Table 2 — stencil durations and register counts (H100),
//! * Table 3 / Figure 4 — BabelStream durations, the Dot gap, registers,
//! * Figure 5 — the Triad instruction-mix observations (constant loads,
//!   issue overhead),
//! * Figures 6–7 / Table 5 — miniBUDE efficiencies vs the fast-math and
//!   non-fast-math vendor baselines,
//! * Table 4 — Hartree–Fock atomic-throughput ratios, including the portable
//!   collapse above 256 atoms and the MI300A atomic cliff.

use crate::kernel_class::{KernelClass, StreamOp};
use crate::Backend;
use gpu_sim::ExecutionProfile;
use gpu_spec::{GpuSpec, Precision, Vendor};

/// Fixed kernel-launch overhead in microseconds, shared by every backend.
const LAUNCH_OVERHEAD_US: f64 = 3.0;

/// Atom count above which the portable Hartree–Fock kernel's atomic path
/// collapses (register spilling at the larger basis, per the paper's
/// discussion of the 1024-atom corner case).
const PORTABLE_HF_COLLAPSE_ATOMS: u32 = 512;

/// Builds the execution profile for one backend compiling one kernel class
/// on one device.
pub fn build(spec: &GpuSpec, backend: Backend, class: &KernelClass) -> ExecutionProfile {
    let mut p = ExecutionProfile::ideal(backend.label());
    p.launch_overhead_us = LAUNCH_OVERHEAD_US;

    // Baseline instruction-stream character (Figure 5): the portable backend
    // materialises constants with integer arithmetic instead of constant
    // loads and carries more addressing overhead per memory instruction.
    if backend.is_portable() {
        p.constant_loads_per_thread = 1;
        p.issue_overhead = 1.5;
    } else {
        p.constant_loads_per_thread = 3;
        p.issue_overhead = 1.0;
    }

    match *class {
        KernelClass::Stream { op, precision: _ } => stream(&mut p, spec.vendor, backend, op),
        KernelClass::Stencil7 { precision } => stencil(&mut p, spec.vendor, backend, precision),
        KernelClass::BudeFasten { ppwi: _, wg } => bude(&mut p, spec.vendor, backend, wg),
        KernelClass::HartreeFock { natoms, ngauss: _ } => {
            hartree_fock(&mut p, spec.vendor, backend, natoms)
        }
    }

    debug_assert!(p.validate().is_ok(), "invalid profile: {p:?}");
    p
}

/// BabelStream: memory efficiencies calibrated to Table 3's durations
/// (Copy 0.202 ms Mojo / 0.205 ms CUDA; Dot 0.215 ms vs 0.168 ms at
/// n = 2²⁵ FP64) and to the MI300A parity of Figure 4b.
fn stream(p: &mut ExecutionProfile, vendor: Vendor, backend: Backend, op: StreamOp) {
    let dot = op == StreamOp::Dot;
    p.registers_per_thread = match (backend.is_portable(), dot) {
        (true, false) => 16,
        (false, false) => 16,
        (true, true) => 26,
        (false, true) => 20,
    };
    p.mem_efficiency = match (vendor, backend.is_portable(), dot) {
        // H100: Mojo marginally ahead on the streaming ops, clearly behind
        // on the reduction.
        (Vendor::Nvidia, true, false) => 0.6917,
        (Vendor::Nvidia, false, false) => 0.6814,
        (Vendor::Nvidia, true, true) => 0.6494,
        (Vendor::Nvidia, false, true) => 0.8344,
        // MI300A: exact portable/vendor parity (Figure 4b).
        (Vendor::Amd, _, false) => 0.7000,
        (Vendor::Amd, _, true) => 0.7500,
        // Test devices: neutral.
        (Vendor::Generic, _, _) => 0.8000,
    };
}

/// Seven-point stencil: calibrated to Table 2 (Mojo 1.10 ms vs CUDA 0.96 ms
/// at L = 512 FP64; CUDA 7.21 ms at L = 1024 FP32) and to Table 5's
/// efficiencies (0.87 FP64, 0.82 FP32 on the H100; parity on the MI300A).
fn stencil(p: &mut ExecutionProfile, vendor: Vendor, backend: Backend, precision: Precision) {
    p.registers_per_thread = match (backend.is_portable(), precision) {
        (true, Precision::Fp64) => 24,
        (false, Precision::Fp64) => 21,
        (true, Precision::Fp32) => 26,
        (false, Precision::Fp32) => 20,
    };
    if backend.is_portable() {
        p.issue_overhead = 1.6;
    }
    p.mem_efficiency = match (vendor, backend.is_portable(), precision) {
        (Vendor::Nvidia, true, Precision::Fp64) => 0.4976,
        (Vendor::Nvidia, false, Precision::Fp64) => 0.5723,
        (Vendor::Nvidia, true, Precision::Fp32) => 0.2499,
        (Vendor::Nvidia, false, Precision::Fp32) => 0.3047,
        (Vendor::Amd, _, Precision::Fp64) => 0.5500,
        (Vendor::Amd, _, Precision::Fp32) => 0.4000,
        (Vendor::Generic, _, _) => 0.6000,
    };
}

/// miniBUDE fasten: a compute-bound FP32 kernel whose gap is dominated by
/// transcendental cost (fast-math) and by how well each backend keeps the
/// pipes busy at a given work-group size (Figures 6–7, Table 5).
fn bude(p: &mut ExecutionProfile, vendor: Vendor, backend: Backend, wg: u32) {
    p.mem_efficiency = 0.80;
    p.registers_per_thread = if backend.is_portable() { 64 } else { 52 };
    p.sfu_cost_flops = match backend {
        Backend::Portable => 14.0,
        Backend::Cuda { fast_math } | Backend::Hip { fast_math } => {
            if fast_math {
                8.0
            } else {
                32.0
            }
        }
    };
    let wide = wg >= 32;
    let fast_math = backend.fast_math();
    p.compute_efficiency = match (vendor, backend.is_portable()) {
        (Vendor::Nvidia | Vendor::Generic, true) => {
            if wide {
                0.585
            } else {
                0.593
            }
        }
        (Vendor::Nvidia | Vendor::Generic, false) => match (wide, fast_math) {
            (true, true) => 0.85,
            (true, false) => 0.78,
            (false, true) => 0.62,
            (false, false) => 0.57,
        },
        (Vendor::Amd, true) => {
            if wide {
                0.3547
            } else {
                0.2660
            }
        }
        (Vendor::Amd, false) => match (wide, fast_math) {
            (true, true) => 0.80,
            (true, false) => 0.74,
            (false, true) => 0.60,
            (false, false) => 0.55,
        },
    };
}

/// Hartree–Fock: atomic-throughput factors calibrated to Table 4. The vendor
/// paths run at the device's native sustained atomic rate (factor 1.0); the
/// portable path is ~2.5× better than CUDA on the H100 up to 256 atoms,
/// collapses above [`PORTABLE_HF_COLLAPSE_ATOMS`], and sits orders of
/// magnitude below HIP on the MI300A at every size.
fn hartree_fock(p: &mut ExecutionProfile, vendor: Vendor, backend: Backend, natoms: u32) {
    p.mem_efficiency = 0.80;
    p.compute_efficiency = if backend.is_portable() { 0.95 } else { 0.90 };
    p.sfu_cost_flops = if backend.is_portable() { 16.0 } else { 32.0 };
    p.registers_per_thread = match (backend.is_portable(), natoms >= PORTABLE_HF_COLLAPSE_ATOMS) {
        (true, true) => 128,
        (true, false) => 96,
        (false, _) => 64,
    };
    p.atomic_throughput_factor = if backend.is_portable() {
        match vendor {
            Vendor::Nvidia => {
                if natoms >= PORTABLE_HF_COLLAPSE_ATOMS {
                    0.008
                } else {
                    2.5
                }
            }
            Vendor::Amd => 0.007,
            Vendor::Generic => 1.0,
        }
    } else {
        1.0
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::presets;

    fn class_stream(op: StreamOp) -> KernelClass {
        KernelClass::Stream {
            op,
            precision: Precision::Fp64,
        }
    }

    #[test]
    fn every_profile_validates() {
        let classes = [
            class_stream(StreamOp::Copy),
            class_stream(StreamOp::Dot),
            KernelClass::Stencil7 {
                precision: Precision::Fp32,
            },
            KernelClass::BudeFasten { ppwi: 4, wg: 8 },
            KernelClass::BudeFasten { ppwi: 8, wg: 64 },
            KernelClass::HartreeFock {
                natoms: 256,
                ngauss: 3,
            },
            KernelClass::HartreeFock {
                natoms: 1024,
                ngauss: 6,
            },
        ];
        let backends = [
            Backend::Portable,
            Backend::Cuda { fast_math: false },
            Backend::Cuda { fast_math: true },
            Backend::Hip { fast_math: false },
            Backend::Hip { fast_math: true },
        ];
        for spec in [
            presets::h100_nvl(),
            presets::mi300a(),
            presets::test_device(),
        ] {
            for backend in backends {
                for class in &classes {
                    build(&spec, backend, class).validate().unwrap();
                }
            }
        }
    }

    #[test]
    fn stream_registers_match_table3() {
        let h100 = presets::h100_nvl();
        let mojo = build(&h100, Backend::Portable, &class_stream(StreamOp::Copy));
        let cuda = build(&h100, Backend::CUDA, &class_stream(StreamOp::Copy));
        assert_eq!(mojo.registers_per_thread, 16);
        assert_eq!(cuda.registers_per_thread, 16);
        let mojo_dot = build(&h100, Backend::Portable, &class_stream(StreamOp::Dot));
        let cuda_dot = build(&h100, Backend::CUDA, &class_stream(StreamOp::Dot));
        assert_eq!(mojo_dot.registers_per_thread, 26);
        assert_eq!(cuda_dot.registers_per_thread, 20);
    }

    #[test]
    fn portable_trades_constant_loads_for_issue_overhead() {
        // Figure 5's observations (i) and (ii).
        let h100 = presets::h100_nvl();
        let mojo = build(&h100, Backend::Portable, &class_stream(StreamOp::Triad));
        let cuda = build(&h100, Backend::CUDA, &class_stream(StreamOp::Triad));
        assert!(mojo.constant_loads_per_thread < cuda.constant_loads_per_thread);
        assert!(mojo.issue_overhead > cuda.issue_overhead);
    }

    #[test]
    fn fast_math_only_changes_transcendental_cost_for_memory_bound_kernels() {
        let h100 = presets::h100_nvl();
        let class = KernelClass::Stencil7 {
            precision: Precision::Fp32,
        };
        let plain = build(&h100, Backend::Cuda { fast_math: false }, &class);
        let mut ff = build(&h100, Backend::Cuda { fast_math: true }, &class);
        // Same profile except the (unused) backend label.
        ff.backend = plain.backend.clone();
        assert_eq!(plain, ff);
    }

    #[test]
    fn hartree_fock_atomic_factors_follow_table4() {
        let h100 = presets::h100_nvl();
        let mi300a = presets::mi300a();
        let small = KernelClass::HartreeFock {
            natoms: 256,
            ngauss: 3,
        };
        let large = KernelClass::HartreeFock {
            natoms: 1024,
            ngauss: 6,
        };
        // Vendor baselines always run at the native rate.
        for class in [&small, &large] {
            assert_eq!(
                build(&h100, Backend::CUDA, class).atomic_throughput_factor,
                1.0
            );
            assert_eq!(
                build(&mi300a, Backend::HIP, class).atomic_throughput_factor,
                1.0
            );
        }
        // Portable: ~2.5x CUDA below the collapse, far below it above.
        let mojo_small = build(&h100, Backend::Portable, &small);
        let mojo_large = build(&h100, Backend::Portable, &large);
        assert!(mojo_small.atomic_throughput_factor > 2.0);
        assert!(mojo_large.atomic_throughput_factor < 0.05);
        // MI300A portable atomics sit orders of magnitude below HIP.
        let mojo_amd = build(&mi300a, Backend::Portable, &small);
        assert!(mojo_amd.atomic_throughput_factor < 0.02);
    }
}
