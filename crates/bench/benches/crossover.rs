//! Crossover bench: times both execution lanes of every registered lane
//! kernel across its size ladder and writes the per-kernel crossover table
//! that `--lane auto` consults (DESIGN.md §14).
//!
//! Output goes to `target/bench/crossover.json` (schema:
//! [`science_kernels::simd::CrossoverTable`]). To refresh the committed
//! cross-machine default, copy that file over
//! `crates/kernels/src/simd/crossover_default.json`.
//!
//! Modes:
//!
//! * default — full sweep: every kernel, every ladder size, warm-up plus
//!   min-of-several-reps per (kernel, size, lane);
//! * `--smoke` / `--test` — CI smoke: first and last ladder size per kernel,
//!   single timed rep (still writes `crossover.json` so the per-SHA bench
//!   archive carries a table);
//! * `--check [FILE]` — no timing: parse `FILE` (default
//!   `target/bench/crossover.json`) and fail on any schema error.

use criterion::{bench_dir, black_box};
use science_kernels::simd::{lane_kernels, CrossoverEntry, CrossoverTable, Lane};
use std::path::PathBuf;
use std::time::Instant;

/// Best-of-`reps` wall-clock nanoseconds for one (kernel, size, lane) point.
/// Warm-up reps also warm the buffer pool, so timed reps see pool hits — the
/// same steady state the drivers run in.
fn time_lane(run: fn(Lane, u64) -> f64, lane: Lane, size: u64, warmup: u32, reps: u32) -> f64 {
    for _ in 0..warmup {
        black_box(run(lane, size));
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        black_box(run(lane, size));
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Parses `path` as a crossover table, reporting schema errors. Exit code 0
/// on success, 2 on any failure.
fn check(path: &PathBuf) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("crossover: cannot read {}: {err}", path.display());
            return 2;
        }
    };
    match CrossoverTable::parse(&text) {
        Ok(table) => {
            println!(
                "crossover: {} is a valid table ({} entries)",
                path.display(),
                table.entries.len()
            );
            0
        }
        Err(message) => {
            eprintln!("crossover: {} is invalid: {message}", path.display());
            2
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check") {
        let path = args
            .get(pos + 1)
            .filter(|a| !a.starts_with("--"))
            .map(PathBuf::from)
            .unwrap_or_else(|| bench_dir().join("crossover.json"));
        std::process::exit(check(&path));
    }
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--test");
    let (warmup, reps) = if smoke { (1, 1) } else { (2, 7) };
    // Positional arguments filter by kernel-name substring, matching the
    // `cargo bench -- <filter>` convention. A filtered run still writes
    // `crossover.json`, covering just the selected kernels.
    let filters: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let mut entries = Vec::new();
    println!(
        "{:<18} {:>9} {:>15} {:>15} {:>9}  fastest",
        "kernel", "size", "deterministic", "simd", "speedup"
    );
    for kernel in lane_kernels() {
        if !filters.is_empty() && !filters.iter().any(|f| kernel.name.contains(f.as_str())) {
            continue;
        }
        let sizes: Vec<u64> = if smoke && kernel.sizes.len() > 2 {
            vec![kernel.sizes[0], *kernel.sizes.last().unwrap()]
        } else {
            kernel.sizes.to_vec()
        };
        for size in sizes {
            let deterministic_ns = time_lane(kernel.run, Lane::Deterministic, size, warmup, reps);
            let simd_ns = time_lane(kernel.run, Lane::Simd, size, warmup, reps);
            let speedup = deterministic_ns / simd_ns;
            let fastest = if simd_ns < deterministic_ns {
                Lane::Simd
            } else {
                Lane::Deterministic
            };
            println!(
                "{:<18} {:>9} {:>12.0} ns {:>12.0} ns {:>8.2}x  {}",
                kernel.name, size, deterministic_ns, simd_ns, speedup, fastest
            );
            entries.push(CrossoverEntry {
                kernel: kernel.name.to_string(),
                size,
                deterministic_ns,
                simd_ns,
                speedup,
                fastest,
            });
        }
    }

    let table = CrossoverTable::new(entries);
    let dir = bench_dir();
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("crossover: cannot create {}: {err}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join("crossover.json");
    match std::fs::write(&path, table.to_json_pretty()) {
        Ok(()) => println!("crossover: wrote {}", path.display()),
        Err(err) => {
            eprintln!("crossover: failed to write {}: {err}", path.display());
            std::process::exit(1);
        }
    }
    println!(
        "crossover: to commit as the cross-machine default, copy over \
         crates/kernels/src/simd/crossover_default.json"
    );
}
