//! `mojo-hpc` — umbrella crate re-exporting the whole reproduction stack.
//!
//! This is the crate downstream users depend on. It re-exports:
//!
//! * [`spec`] — hardware descriptions of the evaluated GPUs (H100 NVL, MI300A),
//! * [`sim`] — the deterministic GPU simulator the kernels execute on,
//! * [`portable`] — the Mojo-analog performance-portable kernel API
//!   (the paper's primary contribution),
//! * [`vendor`] — the CUDA-like and HIP-like baseline codegen/launch models,
//! * [`kernels`] — the four science proxy kernels (seven-point stencil,
//!   BabelStream, miniBUDE, Hartree–Fock),
//! * [`metrics`] — the paper's figures of merit (Eqs. 1–4) and roofline math,
//! * [`report`] — the experiment registry regenerating every table and figure.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for the
//! full system inventory.

pub use experiment_report as report;
pub use gpu_sim as sim;
pub use gpu_spec as spec;
pub use hpc_metrics as metrics;
pub use portable_kernel as portable;
pub use science_kernels as kernels;
pub use vendor_models as vendor;

/// Convenience prelude pulling in the types most programs need.
pub mod prelude {
    pub use experiment_report::prelude::*;
    pub use gpu_spec::{presets, GpuSpec, Precision, Vendor};
    pub use hpc_metrics::portability::PortabilityTable;
    pub use portable_kernel::prelude::*;
    pub use science_kernels::prelude::*;
    pub use vendor_models::{Backend, Platform};
}
