//! The flat kernel executor: one closure invocation per simulated thread.
//!
//! All four of the paper's kernels except the BabelStream `dot` reduction are
//! "flat": every thread computes its global index from
//! `block_idx * block_dim + thread_idx` and works independently, with no
//! barriers or shared memory. The executor runs those kernels with a *chunked
//! block scheduler*: the launch's blocks are grouped into contiguous chunks,
//! each chunk becomes one task on the persistent rayon pool, and the threads
//! of a block run sequentially via nested x/y/z loops (no per-thread
//! div/mod delinearisation). Each invocation receives a [`ThreadCtx`] that
//! plays the role of Mojo/CUDA's `thread_idx` / `block_idx` / `block_dim` /
//! `grid_dim` builtins.

use crate::dim::{Dim3, LaunchConfig};
use rayon::prelude::*;

/// Number of chunks targeted per pool worker. A few chunks per worker keeps
/// the pool's deques stealable without paying scheduling overhead per block.
const CHUNKS_PER_WORKER: u64 = 4;

/// Blocks per scheduler chunk for a launch of `num_blocks` blocks.
pub(crate) fn block_chunk_len(num_blocks: u64) -> u64 {
    let workers = rayon::current_num_threads() as u64;
    num_blocks.div_ceil(workers * CHUNKS_PER_WORKER).max(1)
}

/// Per-thread launch coordinates, mirroring the GPU builtins used in the
/// paper's listings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// This thread's index within its block.
    pub thread_idx: Dim3,
    /// This thread's block index within the grid.
    pub block_idx: Dim3,
    /// The block dimensions of the launch.
    pub block_dim: Dim3,
    /// The grid dimensions of the launch.
    pub grid_dim: Dim3,
}

impl ThreadCtx {
    /// The 1-D global thread index `block_idx.x * block_dim.x + thread_idx.x`,
    /// as used by BabelStream, miniBUDE and Hartree–Fock.
    #[inline]
    pub fn global_x(&self) -> u64 {
        u64::from(self.block_idx.x) * u64::from(self.block_dim.x) + u64::from(self.thread_idx.x)
    }

    /// The 1-D global thread index along y.
    #[inline]
    pub fn global_y(&self) -> u64 {
        u64::from(self.block_idx.y) * u64::from(self.block_dim.y) + u64::from(self.thread_idx.y)
    }

    /// The 1-D global thread index along z.
    #[inline]
    pub fn global_z(&self) -> u64 {
        u64::from(self.block_idx.z) * u64::from(self.block_dim.z) + u64::from(self.thread_idx.z)
    }

    /// Total number of threads in the grid along x
    /// (`block_dim.x * grid_dim.x`), the stride of a grid-stride loop.
    #[inline]
    pub fn threads_in_grid_x(&self) -> u64 {
        u64::from(self.block_dim.x) * u64::from(self.grid_dim.x)
    }

    /// Fully linearised global thread id (x fastest, then y, then z).
    #[inline]
    pub fn global_linear(&self) -> u64 {
        let gx = self.global_x();
        let gy = self.global_y();
        let gz = self.global_z();
        let nx = u64::from(self.block_dim.x) * u64::from(self.grid_dim.x);
        let ny = u64::from(self.block_dim.y) * u64::from(self.grid_dim.y);
        gx + nx * (gy + ny * gz)
    }
}

/// Runs every thread of one block sequentially, in linear order (x fastest),
/// mutating a single [`ThreadCtx`] instead of rebuilding one per thread.
#[inline]
pub(crate) fn run_block<F>(kernel: &F, block_idx: Dim3, block: Dim3, grid: Dim3)
where
    F: Fn(ThreadCtx),
{
    let mut ctx = ThreadCtx {
        thread_idx: Dim3::new(0, 0, 0),
        block_idx,
        block_dim: block,
        grid_dim: grid,
    };
    for tz in 0..block.z {
        for ty in 0..block.y {
            for tx in 0..block.x {
                ctx.thread_idx = Dim3::new(tx, ty, tz);
                kernel(ctx);
            }
        }
    }
}

/// Runs `kernel` once for every thread of the launch.
///
/// Contiguous chunks of blocks are distributed over the persistent pool;
/// threads within a block run sequentially. Because flat kernels have no
/// intra-block communication, this schedule is observationally equivalent to
/// any other.
pub fn launch_flat<F>(cfg: &LaunchConfig, kernel: F)
where
    F: Fn(ThreadCtx) + Sync,
{
    let grid = cfg.grid;
    let block = cfg.block;
    let num_blocks = cfg.num_blocks();
    let chunk = block_chunk_len(num_blocks);
    let num_chunks = num_blocks.div_ceil(chunk);

    (0..num_chunks).into_par_iter().for_each(|chunk_index| {
        let start = chunk_index * chunk;
        let end = (start + chunk).min(num_blocks);
        for block_linear in start..end {
            let (bx, by, bz) = grid.delinearize(block_linear);
            run_block(&kernel, Dim3::new(bx, by, bz), block, grid);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::UnsafeSlice;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn every_thread_runs_exactly_once() {
        let cfg = LaunchConfig::new((4u32, 3u32, 2u32), (8u32, 2u32, 2u32));
        let count = AtomicU64::new(0);
        launch_flat(&cfg, |_ctx| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), cfg.total_threads());
    }

    #[test]
    fn global_linear_ids_are_unique_and_dense() {
        let cfg = LaunchConfig::new((3u32, 2u32, 2u32), (4u32, 2u32, 1u32));
        let total = cfg.total_threads() as usize;
        let mut seen = vec![0u32; total];
        {
            let slice = UnsafeSlice::new(&mut seen);
            launch_flat(&cfg, |ctx| {
                let id = ctx.global_linear() as usize;
                // Each id is written by exactly one thread.
                slice.write(id, slice.read(id) + 1);
            });
        }
        assert!(seen.iter().all(|&c| c == 1), "every id hit exactly once");
    }

    #[test]
    fn global_x_matches_cuda_formula() {
        let cfg = LaunchConfig::new(4u32, 256u32);
        let total = cfg.total_threads() as usize;
        let mut out = vec![0u64; total];
        {
            let slice = UnsafeSlice::new(&mut out);
            launch_flat(&cfg, |ctx| {
                let i = ctx.global_x() as usize;
                slice.write(i, ctx.global_x());
            });
        }
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn grid_stride_loop_covers_all_elements() {
        // Mirrors the accumulation loop of the BabelStream dot kernel.
        let n = 10_000usize;
        let cfg = LaunchConfig::new(8u32, 128u32);
        let mut hits = vec![0u8; n];
        {
            let slice = UnsafeSlice::new(&mut hits);
            launch_flat(&cfg, |ctx| {
                let mut i = ctx.global_x() as usize;
                let stride = ctx.threads_in_grid_x() as usize;
                while i < n {
                    slice.write(i, slice.read(i) + 1);
                    i += stride;
                }
            });
        }
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn thread_ctx_helpers() {
        let ctx = ThreadCtx {
            thread_idx: Dim3::new(3, 1, 0),
            block_idx: Dim3::new(2, 4, 1),
            block_dim: Dim3::new(8, 2, 1),
            grid_dim: Dim3::new(16, 8, 2),
        };
        assert_eq!(ctx.global_x(), 2 * 8 + 3);
        assert_eq!(ctx.global_y(), 4 * 2 + 1);
        assert_eq!(ctx.global_z(), 1);
        assert_eq!(ctx.threads_in_grid_x(), 8 * 16);
    }
}
