//! The parameter-sweep engine: any registered workload, any sizes, one
//! deterministic report.
//!
//! A sweep takes a [`Workload`](workload::Workload), a base parameter
//! assignment and a list of values for the workload's size parameter, runs
//! every point concurrently over the persistent pool (the points are
//! independent), and renders the measurements as an [`ExperimentReport`] —
//! so sweeps share the CSV and JSON emitters, the `--out` handling and the
//! byte-identical-across-thread-counts contract with the paper experiments.

use crate::report::ExperimentReport;
use hpc_metrics::output::CsvTable;
use rayon::prelude::*;
use science_kernels::workload::{self, ParamValue, Params, WorkloadError, WorkloadOutput};

/// A fully resolved sweep request.
pub struct SweepSpec {
    /// The scenario engine to drive.
    pub workload: &'static dyn workload::Workload,
    /// Base assignment every point starts from (defaults + CLI overrides).
    pub base: Params,
    /// Values of the workload's size parameter, in presentation order.
    pub sizes: Vec<u64>,
}

impl SweepSpec {
    /// Builds a sweep over `workload` from `key=value` overrides and sizes,
    /// validating every resulting point assignment up front.
    pub fn new(
        engine: &'static dyn workload::Workload,
        overrides: &[String],
        sizes: Vec<u64>,
    ) -> Result<SweepSpec, WorkloadError> {
        if sizes.is_empty() {
            return Err(WorkloadError::new("a sweep needs at least one size"));
        }
        let mut base = engine.default_params();
        for assignment in overrides {
            base.apply_assignment(assignment)?;
        }
        let spec = SweepSpec {
            workload: engine,
            base,
            sizes,
        };
        for size in &spec.sizes {
            engine.validate(&spec.point(*size)?)?;
        }
        Ok(spec)
    }

    /// The parameter assignment of one sweep point.
    pub fn point(&self, size: u64) -> Result<Params, WorkloadError> {
        let mut params = self.base.clone();
        params.set(self.workload.size_param(), ParamValue::Int(size))?;
        Ok(params)
    }
}

/// Runs every point of a sweep and renders the result.
///
/// Points run concurrently via the slice lane of the rayon shim
/// (`sizes.par_iter()`); order and content are thread-count independent
/// because collection preserves input order and the workloads are
/// deterministic.
pub fn run_sweep(spec: &SweepSpec) -> Result<ExperimentReport, WorkloadError> {
    let outputs: Vec<Result<WorkloadOutput, WorkloadError>> = spec
        .sizes
        .par_iter()
        .map(|&size| spec.workload.run(&spec.point(size)?))
        .collect();
    let outputs: Vec<WorkloadOutput> = outputs.into_iter().collect::<Result<_, _>>()?;
    Ok(render_sweep(spec, &outputs))
}

/// Renders sweep outputs as an experiment-shaped report (id
/// `sweep_<workload>`, one CSV table named `sweep`).
fn render_sweep(spec: &SweepSpec, outputs: &[WorkloadOutput]) -> ExperimentReport {
    let engine = spec.workload;
    let mut report = ExperimentReport::new(
        format!("sweep_{}", engine.name().replace('-', "_")),
        format!(
            "{} — sweep over {} ({} points)",
            engine.description(),
            engine.size_param(),
            spec.sizes.len()
        ),
    );
    let mut csv = CsvTable::new([
        "workload",
        engine.size_param(),
        "params",
        "device",
        "backend",
        "kernel",
        "seconds",
        engine.fom_label(),
        "verification",
    ]);
    for (size, output) in spec.sizes.iter().zip(outputs) {
        let encoding = output.params.encode();
        report.push_line(format!("{}={size}  [{encoding}]", engine.size_param()));
        for m in &output.measurements {
            report.push_line(format!(
                "  {:<24} {:<10} {:<10} {} = {}",
                m.device,
                m.backend,
                m.kernel,
                engine.fom_label(),
                m.fom
            ));
            csv.push_row([
                engine.name().to_string(),
                size.to_string(),
                encoding.clone(),
                m.device.clone(),
                m.backend.clone(),
                m.kernel.clone(),
                format!("{}", m.seconds),
                format!("{}", m.fom),
                m.verification.clone(),
            ]);
        }
    }
    report.push_table("sweep", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stencil() -> &'static dyn workload::Workload {
        workload::find("stencil").unwrap()
    }

    #[test]
    fn sweep_validates_every_point_up_front() {
        assert!(SweepSpec::new(stencil(), &[], vec![]).is_err());
        // l=2 is a degenerate grid: rejected before anything runs.
        assert!(SweepSpec::new(stencil(), &[], vec![24, 2]).is_err());
        assert!(SweepSpec::new(stencil(), &["bogus=1".to_string()], vec![24]).is_err());
        assert!(SweepSpec::new(stencil(), &[], vec![24, 32]).is_ok());
    }

    #[test]
    fn sweep_reports_one_row_per_platform_and_size() {
        let spec =
            SweepSpec::new(stencil(), &["precision=fp32".to_string()], vec![16, 24]).unwrap();
        let report = run_sweep(&spec).unwrap();
        assert_eq!(report.id, "sweep_stencil");
        assert_eq!(report.tables.len(), 1);
        let (name, table) = &report.tables[0];
        assert_eq!(name, "sweep");
        assert_eq!(table.header[1], "l");
        assert_eq!(table.rows.len(), 2 * 4, "2 sizes x 4 platforms");
        assert!(table.rows.iter().all(|r| r[2].contains("precision=fp32")));
        assert!(report.text.contains("l=16"));
        assert!(report.text.contains("l=24"));
    }

    #[test]
    fn sweep_output_is_identical_at_one_thread() {
        let spec = SweepSpec::new(stencil(), &[], vec![16, 20]).unwrap();
        let wide = run_sweep(&spec).unwrap();
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| run_sweep(&spec).unwrap());
        assert_eq!(wide.render(), serial.render());
        assert_eq!(wide.to_json_pretty(), serial.to_json_pretty());
    }

    #[test]
    fn sampled_hartree_fock_sweeps_through_the_same_engine() {
        let spec = SweepSpec::new(
            workload::find("hartree-fock-sampled").unwrap(),
            &["samples=128".to_string(), "shards=4".to_string()],
            vec![64],
        )
        .unwrap();
        let report = run_sweep(&spec).unwrap();
        assert_eq!(report.id, "sweep_hartree_fock_sampled");
        let (_, table) = &report.tables[0];
        assert_eq!(table.rows.len(), 1);
        assert!(table.rows[0][8].contains("exact_survivors="));
    }
}
