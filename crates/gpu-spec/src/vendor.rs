//! GPU vendor identification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The silicon vendor of a GPU.
///
/// The paper compares the portable (Mojo-analog) programming model against the
/// *vendor-native* model on each architecture: CUDA on [`Vendor::Nvidia`] and
/// HIP on [`Vendor::Amd`]. The vendor therefore determines which baseline a
/// portable kernel is measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA GPUs (Hopper/Ampere class in the paper; H100 NVL in the evaluation).
    Nvidia,
    /// AMD GPUs (CDNA3 class; MI300A in the evaluation).
    Amd,
    /// A vendor-neutral device used for tests and synthetic experiments.
    Generic,
}

impl Vendor {
    /// Name of the vendor-native programming model used as the baseline on
    /// this architecture ("CUDA", "HIP", or "native").
    pub fn native_model(&self) -> &'static str {
        match self {
            Vendor::Nvidia => "CUDA",
            Vendor::Amd => "HIP",
            Vendor::Generic => "native",
        }
    }

    /// The SIMT execution width the vendor's hardware schedules at:
    /// 32-thread warps on NVIDIA, 64-thread wavefronts on AMD CDNA.
    pub fn simt_width(&self) -> u32 {
        match self {
            Vendor::Nvidia => 32,
            Vendor::Amd => 64,
            Vendor::Generic => 32,
        }
    }

    /// The name the vendor gives its streaming processor cluster
    /// (SM on NVIDIA, CU on AMD).
    pub fn compute_unit_name(&self) -> &'static str {
        match self {
            Vendor::Nvidia => "SM",
            Vendor::Amd => "CU",
            Vendor::Generic => "PU",
        }
    }

    /// The profiling tool the paper used on this architecture.
    pub fn profiler_name(&self) -> &'static str {
        match self {
            Vendor::Nvidia => "Nsight Compute (ncu)",
            Vendor::Amd => "rocprof",
            Vendor::Generic => "sim-prof",
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::Nvidia => write!(f, "NVIDIA"),
            Vendor::Amd => write!(f, "AMD"),
            Vendor::Generic => write!(f, "Generic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_models_match_paper() {
        assert_eq!(Vendor::Nvidia.native_model(), "CUDA");
        assert_eq!(Vendor::Amd.native_model(), "HIP");
    }

    #[test]
    fn simt_widths() {
        assert_eq!(Vendor::Nvidia.simt_width(), 32);
        assert_eq!(Vendor::Amd.simt_width(), 64);
    }

    #[test]
    fn display_names() {
        assert_eq!(Vendor::Nvidia.to_string(), "NVIDIA");
        assert_eq!(Vendor::Amd.to_string(), "AMD");
        assert_eq!(Vendor::Generic.to_string(), "Generic");
    }

    #[test]
    fn serde_round_trip() {
        let v = Vendor::Amd;
        let s = serde_json::to_string(&v).unwrap();
        let back: Vendor = serde_json::from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn unit_names_and_profilers() {
        assert_eq!(Vendor::Nvidia.compute_unit_name(), "SM");
        assert_eq!(Vendor::Amd.compute_unit_name(), "CU");
        assert!(Vendor::Nvidia.profiler_name().contains("ncu"));
        assert!(Vendor::Amd.profiler_name().contains("rocprof"));
    }
}
