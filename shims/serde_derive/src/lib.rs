//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build has
//! no `syn`/`quote`). Supports exactly the shapes this workspace derives on:
//! non-generic structs with named fields, and enums whose variants are either
//! unit or struct-like (named fields).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed form of a derive input item.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

/// Skips attributes (`#[...]`, including doc comments) at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Parses the named fields of a brace-delimited body, returning field names.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        if ident_at(&tokens, i).as_deref() == Some("pub") {
            i += 1;
            // `pub(crate)` style visibility.
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let name = ident_at(&tokens, i).expect("expected field name");
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Consume the type: tokens until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Parses the variants of an enum body.
fn parse_variants(group: &proc_macro::Group) -> Vec<(String, Option<Vec<String>>)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).expect("expected variant name");
        i += 1;
        let mut fields = None;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    fields = Some(parse_named_fields(g));
                    i += 1;
                }
                Delimiter::Parenthesis => {
                    panic!("tuple enum variants are not supported by the serde shim")
                }
                _ => {}
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    if ident_at(&tokens, i).as_deref() == Some("pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    let kind = ident_at(&tokens, i).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_at(&tokens, i).expect("expected type name");
    i += 1;
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("generic types are not supported by the serde shim")
            }
            Some(_) => i += 1,
            None => panic!("missing braced body on `{name}`"),
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => {
                        format!("{name}::{v} => ::serde::value::Value::Str(\"{v}\".to_string()),")
                    }
                    Some(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::value::Value::Object(vec![\
                             (\"{v}\".to_string(), ::serde::value::Value::Object(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    out.parse()
        .expect("serde shim generated invalid Serialize impl")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(v, \"{f}\")?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value)\n\
                         -> Result<Self, ::serde::value::Error> {{\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!("\"{v}\" => Ok({name}::{v}),"),
                    Some(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__private::field(inner, \"{f}\")?"))
                            .collect();
                        format!("\"{v}\" => Ok({name}::{v} {{ {} }}),", inits.join(", "))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value)\n\
                         -> Result<Self, ::serde::value::Error> {{\n\
                         let (tag, inner) = ::serde::__private::variant_tag(v)?;\n\
                         let _ = inner;\n\
                         match tag {{\n\
                             {}\n\
                             other => Err(::serde::value::Error::new(format!(\n\
                                 \"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    out.parse()
        .expect("serde shim generated invalid Deserialize impl")
}
