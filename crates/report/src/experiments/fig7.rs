//! Figure 7 — miniBUDE GFLOP/s vs PPWI on the AMD MI300A:
//! Mojo vs HIP with and without fast-math, for work-group sizes 8 and 64.

use super::fig6::sweep;
use crate::render::Series;
use crate::report::ExperimentReport;
use hpc_metrics::output::CsvTable;
use science_kernels::minibude::MiniBudeConfig;
use vendor_models::Platform;

/// Backends compared on the MI300A in Figure 7.
pub fn mi300a_backends() -> Vec<Platform> {
    vec![
        Platform::portable_mi300a(),
        Platform::hip_mi300a(true),
        Platform::hip_mi300a(false),
    ]
}

/// Regenerates Figure 7 (both work-group sizes).
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig7",
        "miniBUDE GFLOP/s (Eq. 3) vs PPWI on the AMD MI300A, bm1 deck",
    );
    let mut csv = CsvTable::new(["device", "backend", "wg", "ppwi", "gflops"]);
    for wg in MiniBudeConfig::paper_wg_values() {
        report.push_line(format!("Figure 7 (wg = {wg})"));
        let series = sweep(&mi300a_backends(), wg, &mut csv);
        report.push_line(Series::render_group(&series, "GF/s", 40));
    }
    report.push_table("gflops", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_mojo_underperforms_both_hip_variants() {
        let mut csv = CsvTable::new(["device", "backend", "wg", "ppwi", "gflops"]);
        for wg in [8u32, 64] {
            let series = sweep(&mi300a_backends(), wg, &mut csv);
            // series[0] = Mojo, [1] = HIP fast-math, [2] = HIP.
            for i in 0..series[0].points.len() {
                let mojo = series[0].points[i].1;
                assert!(
                    series[1].points[i].1 > mojo,
                    "HIP-ff should beat Mojo (wg {wg})"
                );
                assert!(
                    series[2].points[i].1 > mojo,
                    "HIP should beat Mojo (wg {wg})"
                );
            }
        }
    }

    #[test]
    fn fig7_efficiency_matches_table5_band() {
        // Table 5: miniBUDE efficiency on the MI300A is 0.38 for both listed
        // configurations; allow a generous band around it.
        let mut csv = CsvTable::new(["device", "backend", "wg", "ppwi", "gflops"]);
        let series = sweep(&mi300a_backends(), 64, &mut csv);
        let eff = series[0].points[2].1 / series[1].points[2].1; // PPWI = 4
        assert!((0.25..=0.5).contains(&eff), "MI300A efficiency {eff}");
    }

    #[test]
    fn fig7_report_structure() {
        let report = run();
        assert!(report.text.contains("Figure 7 (wg = 8)"));
        assert!(report.text.contains("Figure 7 (wg = 64)"));
        assert!(report.text.contains("HIP fast-math"));
        assert_eq!(report.tables[0].1.rows.len(), 48);
    }
}
