//! The parameter-sweep engine: any registered workload, any sizes, one
//! deterministic report.
//!
//! A sweep takes a [`Workload`](workload::Workload), a base parameter
//! assignment and a list of values for the workload's size parameter, runs
//! every point concurrently over the persistent pool (the points are
//! independent), and renders the measurements as an [`ExperimentReport`] —
//! so sweeps share the CSV and JSON emitters, the `--out` handling and the
//! byte-identical-across-thread-counts contract with the paper experiments.

use crate::report::{json_array, json_field, json_str, json_u64, ExperimentReport};
use hpc_metrics::output::CsvTable;
use rayon::prelude::*;
use science_kernels::workload::{self, ParamValue, Params, WorkloadError, WorkloadOutput};
use serde::value::Value;
use std::path::Path;

/// Version tag of the sweep preset file schema.
pub const PRESET_SCHEMA: u64 = 1;

/// A fully resolved sweep request.
pub struct SweepSpec {
    /// The scenario engine to drive.
    pub workload: &'static dyn workload::Workload,
    /// Base assignment every point starts from (defaults + CLI overrides).
    pub base: Params,
    /// Values of the workload's size parameter, in presentation order.
    pub sizes: Vec<u64>,
}

impl SweepSpec {
    /// Builds a sweep over `workload` from `key=value` overrides and sizes,
    /// validating every resulting point assignment up front.
    pub fn new(
        engine: &'static dyn workload::Workload,
        overrides: &[String],
        sizes: Vec<u64>,
    ) -> Result<SweepSpec, WorkloadError> {
        if sizes.is_empty() {
            return Err(WorkloadError::new("a sweep needs at least one size"));
        }
        let mut base = engine.default_params();
        for assignment in overrides {
            base.apply_assignment(assignment)?;
        }
        let spec = SweepSpec {
            workload: engine,
            base,
            sizes,
        };
        for size in &spec.sizes {
            engine.validate(&spec.point(*size)?)?;
        }
        Ok(spec)
    }

    /// The parameter assignment of one sweep point.
    pub fn point(&self, size: u64) -> Result<Params, WorkloadError> {
        let mut params = self.base.clone();
        params.set(self.workload.size_param(), ParamValue::Int(size))?;
        Ok(params)
    }

    /// The spec as a preset value tree:
    /// `{schema, workload, params, sizes}` — the file format of
    /// `sweep --preset-out` / `sweep --preset`, which shard workers consume
    /// so every worker runs one pinned configuration.
    pub fn to_preset_value(&self) -> Value {
        Value::Object(vec![
            ("schema".to_string(), Value::U64(PRESET_SCHEMA)),
            (
                "workload".to_string(),
                Value::Str(self.workload.name().to_string()),
            ),
            ("params".to_string(), Value::Str(self.base.encode())),
            (
                "sizes".to_string(),
                Value::Array(self.sizes.iter().map(|&s| Value::U64(s)).collect()),
            ),
        ])
    }

    /// Writes the spec as a pretty-printed preset file, creating parent
    /// directories as needed.
    pub fn write_preset(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut json =
            serde_json::to_string_pretty(&self.to_preset_value()).expect("preset serialises");
        json.push('\n');
        std::fs::write(path, json)
    }

    /// Rebuilds a spec from a preset value tree, re-validating the workload
    /// name, the parameter encoding and every sweep point.
    pub fn from_preset_value(value: &Value) -> Result<SweepSpec, String> {
        let schema = json_u64(json_field(value, "schema")?)?;
        if schema != PRESET_SCHEMA {
            return Err(format!(
                "unsupported preset schema {schema} (this binary speaks {PRESET_SCHEMA})"
            ));
        }
        let name = json_str(json_field(value, "workload")?)?;
        let engine = workload::find(name).ok_or_else(|| {
            format!(
                "preset names unknown workload '{name}' (known: {})",
                workload::known_names()
            )
        })?;
        let overrides: Vec<String> = json_str(json_field(value, "params")?)?
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.trim().to_string())
            .collect();
        let sizes = json_array(json_field(value, "sizes")?)?
            .iter()
            .map(json_u64)
            .collect::<Result<Vec<_>, _>>()?;
        SweepSpec::new(engine, &overrides, sizes).map_err(|e| e.to_string())
    }

    /// Loads a preset file written by [`SweepSpec::write_preset`].
    pub fn load_preset(path: &Path) -> Result<SweepSpec, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read preset {}: {e}", path.display()))?;
        let value: Value = serde_json::from_str(&text)
            .map_err(|e| format!("preset {} is not valid JSON: {e}", path.display()))?;
        SweepSpec::from_preset_value(&value).map_err(|e| format!("preset {}: {e}", path.display()))
    }
}

/// Runs every point of a sweep and renders the result.
///
/// Points run concurrently via the slice lane of the rayon shim
/// (`sizes.par_iter()`); order and content are thread-count independent
/// because collection preserves input order and the workloads are
/// deterministic.
pub fn run_sweep(spec: &SweepSpec) -> Result<ExperimentReport, WorkloadError> {
    let outputs: Vec<Result<WorkloadOutput, WorkloadError>> = spec
        .sizes
        .par_iter()
        .map(|&size| spec.workload.run(&spec.point(size)?))
        .collect();
    let outputs: Vec<WorkloadOutput> = outputs.into_iter().collect::<Result<_, _>>()?;
    Ok(render_sweep(spec, &outputs))
}

/// The empty report envelope of a sweep: id `sweep_<workload>` and the
/// title naming the full point count. The shard merge lane rebuilds the
/// envelope from the coordinator's spec and splices worker-rendered points
/// into it, so the envelope must depend only on the spec — never on the
/// outputs.
pub fn report_envelope(spec: &SweepSpec) -> ExperimentReport {
    let engine = spec.workload;
    ExperimentReport::new(
        format!("sweep_{}", engine.name().replace('-', "_")),
        format!(
            "{} — sweep over {} ({} points)",
            engine.description(),
            engine.size_param(),
            spec.sizes.len()
        ),
    )
}

/// The column names of a workload's `sweep` table.
pub fn table_header(engine: &dyn workload::Workload) -> Vec<String> {
    [
        "workload",
        engine.size_param(),
        "params",
        "device",
        "backend",
        "kernel",
        "seconds",
        engine.fom_label(),
        "verification",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

/// Renders sweep outputs as an experiment-shaped report (id
/// `sweep_<workload>`, one CSV table named `sweep`).
///
/// Public so the serve layer (DESIGN.md §13) can rebuild a sweep report
/// from per-point `Measurement` rows served out of its Params-keyed cache;
/// `outputs` must be in `spec.sizes` order.
pub fn render_sweep(spec: &SweepSpec, outputs: &[WorkloadOutput]) -> ExperimentReport {
    let engine = spec.workload;
    let mut report = report_envelope(spec);
    let mut csv = CsvTable::new(table_header(engine));
    for (size, output) in spec.sizes.iter().zip(outputs) {
        let encoding = output.params.encode();
        report.push_line(format!("{}={size}  [{encoding}]", engine.size_param()));
        for m in &output.measurements {
            report.push_line(format!(
                "  {:<24} {:<10} {:<10} {} = {}",
                m.device,
                m.backend,
                m.kernel,
                engine.fom_label(),
                m.fom
            ));
            csv.push_row([
                engine.name().to_string(),
                size.to_string(),
                encoding.clone(),
                m.device.to_string(),
                m.backend.to_string(),
                m.kernel.to_string(),
                format!("{}", m.seconds),
                format!("{}", m.fom),
                m.verification.to_string(),
            ]);
        }
    }
    report.push_table("sweep", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stencil() -> &'static dyn workload::Workload {
        workload::find("stencil").unwrap()
    }

    #[test]
    fn sweep_validates_every_point_up_front() {
        assert!(SweepSpec::new(stencil(), &[], vec![]).is_err());
        // l=2 is a degenerate grid: rejected before anything runs.
        assert!(SweepSpec::new(stencil(), &[], vec![24, 2]).is_err());
        assert!(SweepSpec::new(stencil(), &["bogus=1".to_string()], vec![24]).is_err());
        assert!(SweepSpec::new(stencil(), &[], vec![24, 32]).is_ok());
    }

    #[test]
    fn sweep_reports_one_row_per_platform_and_size() {
        let spec =
            SweepSpec::new(stencil(), &["precision=fp32".to_string()], vec![16, 24]).unwrap();
        let report = run_sweep(&spec).unwrap();
        assert_eq!(report.id, "sweep_stencil");
        assert_eq!(report.tables.len(), 1);
        let (name, table) = &report.tables[0];
        assert_eq!(name, "sweep");
        assert_eq!(table.header[1], "l");
        assert_eq!(table.rows.len(), 2 * 4, "2 sizes x 4 platforms");
        assert!(table.rows.iter().all(|r| r[2].contains("precision=fp32")));
        assert!(report.text.contains("l=16"));
        assert!(report.text.contains("l=24"));
    }

    #[test]
    fn sweep_output_is_identical_at_one_thread() {
        let spec = SweepSpec::new(stencil(), &[], vec![16, 20]).unwrap();
        let wide = run_sweep(&spec).unwrap();
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| run_sweep(&spec).unwrap());
        assert_eq!(wide.render(), serial.render());
        assert_eq!(wide.to_json_pretty(), serial.to_json_pretty());
    }

    #[test]
    fn presets_round_trip_through_files() {
        let spec =
            SweepSpec::new(stencil(), &["precision=fp32".to_string()], vec![16, 24]).unwrap();
        let dir = std::env::temp_dir().join(format!("mojo-hpc-preset-test-{}", std::process::id()));
        let path = dir.join("preset.json");
        spec.write_preset(&path).unwrap();
        let loaded = SweepSpec::load_preset(&path).unwrap();
        assert_eq!(loaded.workload.name(), "stencil");
        assert_eq!(loaded.base.encode(), spec.base.encode());
        assert_eq!(loaded.sizes, spec.sizes);
        // Loaded specs produce identical reports.
        assert_eq!(
            run_sweep(&loaded).unwrap().to_json_pretty(),
            run_sweep(&spec).unwrap().to_json_pretty()
        );
        // Unreadable, malformed and invalid presets are rejected with a path.
        assert!(SweepSpec::load_preset(&dir.join("missing.json")).is_err());
        std::fs::write(dir.join("bad.json"), "{not json").unwrap();
        assert!(SweepSpec::load_preset(&dir.join("bad.json")).is_err());
        std::fs::write(
            dir.join("unknown.json"),
            "{\"schema\": 1, \"workload\": \"frobnicate\", \"params\": \"\", \"sizes\": [8]}",
        )
        .unwrap();
        let err = match SweepSpec::load_preset(&dir.join("unknown.json")) {
            Err(err) => err,
            Ok(_) => panic!("an unknown workload must be rejected"),
        };
        assert!(err.contains("frobnicate"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sampled_hartree_fock_sweeps_through_the_same_engine() {
        let spec = SweepSpec::new(
            workload::find("hartree-fock-sampled").unwrap(),
            &["samples=128".to_string(), "shards=4".to_string()],
            vec![64],
        )
        .unwrap();
        let report = run_sweep(&spec).unwrap();
        assert_eq!(report.id, "sweep_hartree_fock_sampled");
        let (_, table) = &report.tables[0];
        assert_eq!(table.rows.len(), 1);
        assert!(table.rows[0][8].contains("exact_survivors="));
    }
}
