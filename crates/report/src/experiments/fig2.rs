//! Figure 2 — roofline placement of the four workloads on the H100.

use crate::render::AsciiTable;
use crate::report::ExperimentReport;
use gpu_sim::ProfileReport;
use gpu_spec::{presets, Precision};
use hpc_metrics::output::CsvTable;
use hpc_metrics::{Roofline, RooflinePoint};
use science_kernels::{babelstream, hartree_fock, minibude, stencil7};
use vendor_models::kernel_class::StreamOp;
use vendor_models::Platform;

/// Regenerates Figure 2: measured `(arithmetic intensity, FLOP/s)` points for
/// the four kernels against the H100 roofline, using the vendor (CUDA)
/// baselines exactly as the paper's NSight roofline does.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig2",
        "Roofline representation of the workloads on the NVIDIA H100",
    );
    let platform = Platform::cuda_h100(false);
    let spec = presets::h100_nvl();

    let mut points: Vec<(RooflinePoint, Precision)> = Vec::new();

    let stencil_config = stencil7::StencilConfig::paper(512, Precision::Fp64);
    let stencil = stencil7::run(&platform, &stencil_config).expect("stencil run");
    points.push((
        roofline_point("seven-point stencil", &spec, &stencil),
        Precision::Fp64,
    ));

    let stream_config = babelstream::BabelStreamConfig::paper(Precision::Fp64);
    let triad = babelstream::run(&platform, StreamOp::Triad, &stream_config).expect("triad run");
    points.push((
        roofline_point("BabelStream Triad", &spec, &triad),
        Precision::Fp64,
    ));
    let dot = babelstream::run(&platform, StreamOp::Dot, &stream_config).expect("dot run");
    points.push((
        roofline_point("BabelStream Dot", &spec, &dot),
        Precision::Fp64,
    ));

    let bude_config = minibude::MiniBudeConfig {
        executed_poses: 0,
        ..minibude::MiniBudeConfig::paper(8, 64)
    };
    let bude = minibude::run(&Platform::cuda_h100(true), &bude_config).expect("fasten run");
    points.push((
        roofline_point("miniBUDE fasten", &spec, &bude),
        Precision::Fp32,
    ));

    let hf_config = hartree_fock::HartreeFockConfig::paper(256, 3);
    let hf = hartree_fock::run(&platform, &hf_config).expect("hartree-fock run");
    points.push((roofline_point("Hartree-Fock", &spec, &hf), Precision::Fp64));

    let mut table = AsciiTable::new([
        "Kernel",
        "AI (FLOP/byte)",
        "Achieved GFLOP/s",
        "Roofline GFLOP/s",
        "Region",
    ]);
    let mut csv = CsvTable::new([
        "kernel",
        "arithmetic_intensity",
        "achieved_flops",
        "attainable_flops",
        "memory_bound",
    ]);
    for (point, precision) in &points {
        let roof = Roofline::of(&spec, *precision);
        let attainable = roof.attainable(point.arithmetic_intensity);
        let region = if roof.is_memory_bound(point) {
            "memory-bound"
        } else {
            "compute-bound"
        };
        table.push_row([
            point.label.clone(),
            format!("{:.2}", point.arithmetic_intensity),
            format!("{:.1}", point.achieved_flops / 1e9),
            format!("{:.1}", attainable / 1e9),
            region.to_string(),
        ]);
        csv.push_row([
            point.label.clone(),
            format!("{}", point.arithmetic_intensity),
            format!("{}", point.achieved_flops),
            format!("{}", attainable),
            format!("{}", roof.is_memory_bound(point)),
        ]);
    }
    report.push_line(table.render());

    // Ceiling series for plotting the roofline itself.
    let mut ceiling = CsvTable::new([
        "arithmetic_intensity",
        "attainable_flops_fp32",
        "attainable_flops_fp64",
    ]);
    let roof32 = Roofline::of(&spec, Precision::Fp32);
    let roof64 = Roofline::of(&spec, Precision::Fp64);
    for (ai, f32ceil) in roof32.ceiling_series(0.01, 1000.0, 61) {
        ceiling.push_row([
            format!("{ai}"),
            format!("{f32ceil}"),
            format!("{}", roof64.attainable(ai)),
        ]);
    }
    report.push_table("points", csv);
    report.push_table("ceiling", ceiling);
    report
}

fn roofline_point(
    label: &str,
    spec: &gpu_spec::GpuSpec,
    run: &science_kernels::WorkloadRun,
) -> RooflinePoint {
    let profile = ProfileReport::derive(spec, &run.cost, &run.profile, &run.timing);
    let (ai, flops) = profile.roofline_point();
    RooflinePoint::new(label, ai, flops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_classifies_kernels_like_the_paper() {
        let report = run();
        let text = &report.text;
        // Memory-bound: stencil and BabelStream. Compute-bound: miniBUDE and
        // Hartree-Fock.
        for needle in [
            "seven-point stencil",
            "BabelStream Triad",
            "miniBUDE",
            "Hartree-Fock",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        let lines: Vec<&str> = text.lines().collect();
        let region_of = |name: &str| {
            lines
                .iter()
                .find(|l| l.contains(name))
                .map(|l| {
                    if l.contains("memory-bound") {
                        "memory"
                    } else {
                        "compute"
                    }
                })
                .unwrap()
        };
        assert_eq!(region_of("seven-point stencil"), "memory");
        assert_eq!(region_of("BabelStream Triad"), "memory");
        assert_eq!(region_of("miniBUDE fasten"), "compute");
        assert_eq!(region_of("Hartree-Fock"), "compute");
        assert_eq!(report.tables.len(), 2);
    }
}
