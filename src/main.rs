//! The `mojo-hpc` binary: scenario-addressable entry point to the
//! reproduction. `mojo-hpc help` prints the subcommand reference; parsing
//! and execution live in [`experiment_report::cli`], except `bench-diff`,
//! which is dispatched here because the bench crate sits above the report
//! crate in the dependency graph.
//!
//! The `shard` coordinator re-invokes *this* binary (via
//! `std::env::current_exe`) as its worker subprocesses, so the worker-facing
//! `--shard I/N` flags of `run` and `sweep` always speak the same partition
//! and document schema as the coordinator that spawned them (DESIGN.md §10).

use experiment_report::cli::{self, Command};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match cli::parse(&args) {
        Ok(Command::BenchDiff { baseline, current }) => bench_diff(&baseline, &current),
        Ok(command) => cli::execute(&command),
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("\n{}", cli::usage());
            2
        }
    };
    std::process::exit(code);
}

/// Compares two bench JSON records (each a file or a directory of records),
/// tolerating groups present on only one side.
fn bench_diff(baseline: &Path, current: &Path) -> i32 {
    let load = |path: &Path| match bench::diff::load_records(path) {
        Ok(records) => Some(records),
        Err(message) => {
            eprintln!("error: {message}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (load(baseline), load(current)) else {
        return 2;
    };
    let comparison = bench::diff::diff(&baseline, &current);
    print!("{}", bench::diff::render(&comparison));
    0
}
