//! Shared host-driver machinery: run records, verification, and repeated-run
//! sampling.

use gpu_sim::timing::JitterModel;
use gpu_sim::{ExecutionProfile, IStr, KernelCost, LaunchTiming};
use hpc_metrics::RunStats;
use serde::{Deserialize, Serialize};

/// Outcome of comparing a simulated kernel's output with the CPU reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verification {
    /// Output matched the reference within tolerance.
    Passed {
        /// Largest absolute element-wise error observed.
        max_abs_error: f64,
    },
    /// Functional execution was skipped (problem too large to run on the
    /// host within the experiment budget); the cost model is still exact.
    Skipped {
        /// Why functional execution was skipped. Interned: skip reasons are
        /// drawn from a small fixed set, so repeated runs re-use one string.
        reason: IStr,
    },
}

impl Verification {
    /// Whether the run either verified or was deliberately skipped
    /// (i.e. not a failure).
    pub fn is_ok(&self) -> bool {
        true
    }

    /// Whether the run was actually verified against the reference.
    pub fn is_verified(&self) -> bool {
        matches!(self, Verification::Passed { .. })
    }
}

/// The complete record of one kernel execution on one platform: what ran,
/// what it cost, how long the model says it took, and whether the numerics
/// were checked.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadRun {
    /// Backend label ("Mojo", "CUDA", "CUDA fast-math", "HIP", …). Interned
    /// so that building and cloning run records never allocates once warm.
    pub backend: IStr,
    /// Device name (e.g. "NVIDIA H100 NVL - 94 GB"). Interned.
    pub device: IStr,
    /// Kernel name. Interned.
    pub kernel: IStr,
    /// Analytic launch cost.
    pub cost: KernelCost,
    /// Backend execution profile used for timing.
    pub profile: ExecutionProfile,
    /// Simulated kernel timing.
    pub timing: LaunchTiming,
    /// Verification outcome.
    pub verification: Verification,
}

impl WorkloadRun {
    /// Kernel duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.timing.seconds
    }

    /// Kernel duration in milliseconds.
    pub fn millis(&self) -> f64 {
        self.timing.millis()
    }

    /// Draws `iterations` jittered per-run durations (seconds), discarding a
    /// warm-up iteration first, the way the paper's methodology prescribes
    /// ("we discarded the first step in our measurements").
    pub fn sample_durations(&self, iterations: usize, sigma: f64, seed: u64) -> Vec<f64> {
        let mut jitter = JitterModel::new(sigma, seed ^ fxhash(&self.backend, &self.kernel));
        // Warm-up draw, discarded.
        let _ = jitter.sample();
        (0..iterations)
            .map(|_| jitter.jitter_seconds(self.timing.seconds))
            .collect()
    }

    /// Summary statistics of `iterations` jittered runs.
    pub fn duration_stats(&self, iterations: usize, sigma: f64, seed: u64) -> RunStats {
        RunStats::from_samples(&self.sample_durations(iterations, sigma, seed))
    }
}

/// Small deterministic string hash so different backend/kernel combinations
/// get decorrelated jitter streams from the same user seed.
fn fxhash(a: &str, b: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for byte in a.bytes().chain(b.bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Compares two slices and returns the maximum absolute error, or an error
/// message naming the first element that exceeds `tolerance`.
pub fn compare_slices(actual: &[f64], expected: &[f64], tolerance: f64) -> Result<f64, String> {
    if actual.len() != expected.len() {
        return Err(format!(
            "length mismatch: {} vs {}",
            actual.len(),
            expected.len()
        ));
    }
    let mut max_err = 0.0f64;
    for (i, (a, e)) in actual.iter().zip(expected.iter()).enumerate() {
        let err = (a - e).abs();
        let scale = e.abs().max(1.0);
        if err / scale > tolerance {
            return Err(format!(
                "element {i} differs: got {a}, expected {e} (relative error {:.3e})",
                err / scale
            ));
        }
        max_err = max_err.max(err);
    }
    Ok(max_err)
}

/// Generic variant of [`compare_slices`]: compares a typed kernel output
/// against an `f64` reference, widening element-by-element instead of staging
/// a converted copy — the verification loop never touches the allocator.
pub fn compare_with_reference<T: crate::real::Real>(
    actual: &[T],
    expected: &[f64],
    tolerance: f64,
) -> Result<f64, String> {
    if actual.len() != expected.len() {
        return Err(format!(
            "length mismatch: {} vs {}",
            actual.len(),
            expected.len()
        ));
    }
    let mut max_err = 0.0f64;
    for (i, (&a, &e)) in actual.iter().zip(expected.iter()).enumerate() {
        let a = a.to_f64();
        let err = (a - e).abs();
        let scale = e.abs().max(1.0);
        if err / scale > tolerance {
            return Err(format!(
                "element {i} differs: got {a}, expected {e} (relative error {:.3e})",
                err / scale
            ));
        }
        max_err = max_err.max(err);
    }
    Ok(max_err)
}

/// Single-precision variant of [`compare_slices`]. Compares element-wise
/// without staging widened copies, so the steady-state hot path stays off the
/// allocator.
pub fn compare_slices_f32(actual: &[f32], expected: &[f32], tolerance: f32) -> Result<f64, String> {
    if actual.len() != expected.len() {
        return Err(format!(
            "length mismatch: {} vs {}",
            actual.len(),
            expected.len()
        ));
    }
    let tolerance = f64::from(tolerance);
    let mut max_err = 0.0f64;
    for (i, (&a, &e)) in actual.iter().zip(expected.iter()).enumerate() {
        let (a, e) = (f64::from(a), f64::from(e));
        let err = (a - e).abs();
        let scale = e.abs().max(1.0);
        if err / scale > tolerance {
            return Err(format!(
                "element {i} differs: got {a}, expected {e} (relative error {:.3e})",
                err / scale
            ));
        }
        max_err = max_err.max(err);
    }
    Ok(max_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::stats::AccessPattern;
    use gpu_sim::{LaunchConfig, TimingModel};
    use gpu_spec::{presets, Precision};

    fn dummy_run() -> WorkloadRun {
        let cost = KernelCost::builder(
            "copy",
            Precision::Fp64,
            LaunchConfig::cover_1d(1024, 256),
            AccessPattern::Stream,
        )
        .dram_traffic(8192, 8192)
        .build();
        let profile = ExecutionProfile::ideal("Mojo");
        let timing = TimingModel::new(presets::test_device()).estimate(&cost, &profile);
        WorkloadRun {
            backend: gpu_sim::istr("Mojo"),
            device: gpu_sim::istr("test"),
            kernel: gpu_sim::istr("copy"),
            cost,
            profile,
            timing,
            verification: Verification::Passed { max_abs_error: 0.0 },
        }
    }

    #[test]
    fn sampled_durations_are_deterministic_and_near_the_estimate() {
        let run = dummy_run();
        let a = run.sample_durations(50, 0.02, 7);
        let b = run.sample_durations(50, 0.02, 7);
        assert_eq!(a, b);
        for d in &a {
            assert!((d / run.seconds() - 1.0).abs() < 0.2);
        }
        let stats = run.duration_stats(50, 0.02, 7);
        assert_eq!(stats.count, 50);
        assert!(stats.min > 0.0);
    }

    #[test]
    fn different_kernels_get_different_jitter_streams() {
        let run = dummy_run();
        let mut other = dummy_run();
        other.kernel = gpu_sim::istr("add");
        assert_ne!(
            run.sample_durations(10, 0.02, 7),
            other.sample_durations(10, 0.02, 7)
        );
    }

    #[test]
    fn compare_slices_accepts_within_tolerance() {
        let max = compare_slices(&[1.0, 2.0, 3.0], &[1.0, 2.0 + 1e-12, 3.0], 1e-9).unwrap();
        assert!(max <= 1e-11);
    }

    #[test]
    fn compare_slices_rejects_large_errors_and_length_mismatch() {
        assert!(compare_slices(&[1.0], &[2.0], 1e-6).is_err());
        assert!(compare_slices(&[1.0, 2.0], &[1.0], 1e-6).is_err());
        assert!(compare_slices_f32(&[1.0f32], &[1.5f32], 1e-3).is_err());
    }

    #[test]
    fn verification_helpers() {
        assert!(Verification::Passed { max_abs_error: 0.0 }.is_verified());
        assert!(!Verification::Skipped {
            reason: gpu_sim::istr("too large")
        }
        .is_verified());
        assert!(Verification::Skipped {
            reason: gpu_sim::istr("x")
        }
        .is_ok());
    }
}
