//! Integration tests asserting the *shape* of the paper's headline results:
//! who wins, by roughly what factor, and where the crossovers fall.

use mojo_hpc::kernels::{babelstream, hartree_fock, minibude, stencil7};
use mojo_hpc::metrics::PortabilityTable;
use mojo_hpc::spec::Precision;
use mojo_hpc::vendor::kernel_class::StreamOp;
use mojo_hpc::vendor::Platform;

#[test]
fn observation1_memory_bound_kernels_are_portable() {
    // Paper Observation 1: "Mojo's single GPU code performance is on par with
    // AMD's HIP GPU code in all of our experiments for memory-bound kernels",
    // with an ~87% gap against CUDA for the stencil.
    let stencil = stencil7::StencilConfig::paper(512, Precision::Fp64);
    let mojo = stencil7::run(&Platform::portable_mi300a(), &stencil).unwrap();
    let hip = stencil7::run(&Platform::hip_mi300a(false), &stencil).unwrap();
    assert!((mojo.seconds() / hip.seconds() - 1.0).abs() < 0.02);

    let mojo_h = stencil7::run(&Platform::portable_h100(), &stencil).unwrap();
    let cuda = stencil7::run(&Platform::cuda_h100(false), &stencil).unwrap();
    let ratio = cuda.seconds() / mojo_h.seconds();
    assert!(
        ratio > 0.8 && ratio < 0.95,
        "stencil Mojo/CUDA ratio {ratio}"
    );
}

#[test]
fn babelstream_dot_is_the_only_weak_operation() {
    let config = babelstream::BabelStreamConfig::paper(Precision::Fp64);
    let mut weak_ops = Vec::new();
    for op in StreamOp::ALL {
        let mojo = babelstream::run(&Platform::portable_h100(), op, &config).unwrap();
        let cuda = babelstream::run(&Platform::cuda_h100(false), op, &config).unwrap();
        if cuda.seconds() < mojo.seconds() * 0.95 {
            weak_ops.push(op);
        }
    }
    assert_eq!(weak_ops, vec![StreamOp::Dot]);
}

#[test]
fn minibude_gap_is_explained_by_fast_math() {
    // The paper attributes the miniBUDE gap to the missing fast-math option:
    // against the *non*-fast-math CUDA baseline, Mojo wins; against the
    // fast-math baseline it loses.
    let config = minibude::MiniBudeConfig {
        executed_poses: 0,
        ..minibude::MiniBudeConfig::paper(16, 64)
    };
    let mojo = minibude::run(&Platform::portable_h100(), &config).unwrap();
    let cuda_ff = minibude::run(&Platform::cuda_h100(true), &config).unwrap();
    let cuda = minibude::run(&Platform::cuda_h100(false), &config).unwrap();
    assert!(mojo.seconds() < cuda.seconds());
    assert!(mojo.seconds() > cuda_ff.seconds());
}

#[test]
fn hartree_fock_crossover_appears_between_256_and_1024_atoms() {
    // Mojo beats CUDA at 256 atoms and collapses at 1024 — the crossover the
    // paper flags as a corner case needing further analysis.
    let small = hartree_fock::HartreeFockConfig::paper(256, 3);
    let large = hartree_fock::HartreeFockConfig::paper(1024, 6);
    let at = |cfg: &hartree_fock::HartreeFockConfig, platform: &Platform| {
        hartree_fock::run(platform, cfg).unwrap().seconds()
    };
    assert!(at(&small, &Platform::portable_h100()) < at(&small, &Platform::cuda_h100(false)));
    assert!(at(&large, &Platform::portable_h100()) > at(&large, &Platform::cuda_h100(false)));
}

#[test]
fn table5_phi_ordering_matches_the_paper() {
    // The paper's Φ ordering: BabelStream (0.96) > stencil (0.92) > miniBUDE
    // (0.54). (Hartree-Fock's Φ is excluded: the paper itself calls it
    // misleading because opposite-sign outliers cancel.)
    let mut stencil = PortabilityTable::new("stencil");
    let mut stream = PortabilityTable::new("babelstream");
    let mut bude = PortabilityTable::new("minibude");

    for precision in [Precision::Fp32, Precision::Fp64] {
        let config = stencil7::StencilConfig::paper(512, precision);
        let mojo = stencil7::run(&Platform::portable_h100(), &config).unwrap();
        let cuda = stencil7::run(&Platform::cuda_h100(false), &config).unwrap();
        let mojo_a = stencil7::run(&Platform::portable_mi300a(), &config).unwrap();
        let hip = stencil7::run(&Platform::hip_mi300a(false), &config).unwrap();
        stencil.push(
            precision.label(),
            Some(cuda.seconds() / mojo.seconds()),
            Some(hip.seconds() / mojo_a.seconds()),
        );
    }
    let sconfig = babelstream::BabelStreamConfig::paper(Precision::Fp64);
    for op in StreamOp::ALL {
        let mojo = babelstream::run(&Platform::portable_h100(), op, &sconfig).unwrap();
        let cuda = babelstream::run(&Platform::cuda_h100(false), op, &sconfig).unwrap();
        let mojo_a = babelstream::run(&Platform::portable_mi300a(), op, &sconfig).unwrap();
        let hip = babelstream::run(&Platform::hip_mi300a(false), op, &sconfig).unwrap();
        stream.push(
            op.label(),
            Some(cuda.seconds() / mojo.seconds()),
            Some(hip.seconds() / mojo_a.seconds()),
        );
    }
    for (ppwi, wg) in [(8, 8), (4, 64)] {
        let config = minibude::MiniBudeConfig {
            executed_poses: 0,
            ..minibude::MiniBudeConfig::paper(ppwi, wg)
        };
        let mojo = minibude::run(&Platform::portable_h100(), &config).unwrap();
        let cuda_ff = minibude::run(&Platform::cuda_h100(true), &config).unwrap();
        let mojo_a = minibude::run(&Platform::portable_mi300a(), &config).unwrap();
        let hip_ff = minibude::run(&Platform::hip_mi300a(true), &config).unwrap();
        bude.push(
            format!("ppwi{ppwi}-wg{wg}"),
            Some(cuda_ff.seconds() / mojo.seconds()),
            Some(hip_ff.seconds() / mojo_a.seconds()),
        );
    }

    let phi_stencil = stencil.phi().unwrap();
    let phi_stream = stream.phi().unwrap();
    let phi_bude = bude.phi().unwrap();
    assert!(phi_stream > phi_stencil, "{phi_stream} vs {phi_stencil}");
    assert!(phi_stencil > phi_bude, "{phi_stencil} vs {phi_bude}");
    assert!((phi_stencil - 0.92).abs() < 0.03);
    assert!(phi_bude < 0.75);
}
