//! Bench target for Figure 6 — miniBUDE GFLOP/s vs PPWI on the H100.

use criterion::{Criterion, Throughput};
use experiment_report::ExperimentId;
use science_kernels::minibude::{self, MiniBudeConfig};
use vendor_models::Platform;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_minibude");
    // Functional execution of the portable fasten kernel on a reduced deck.
    for ppwi in [1u32, 4, 16] {
        let platform = Platform::portable_h100();
        let config = MiniBudeConfig::validation(ppwi, 64);
        // Poses actually executed per driver run (normalised() rounds the
        // count to a multiple of ppwi, so derive it from this exact config).
        group.throughput(Throughput::Elements(config.executed_poses as u64));
        group.bench_function(format!("portable_fasten_ppwi{ppwi}"), |b| {
            b.iter(|| minibude::run(&platform, &config).unwrap())
        });
    }
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Fig6);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
