//! Host Jacobi solver and CPU golden reference.
//!
//! The solver alternates a six-neighbour relaxation sweep with an RMS
//! iterate-difference norm — the composite multi-pass stencil+reduction
//! pattern of DESIGN.md §15. Both lanes run the *same* per-cell sweep
//! expression (bitwise-identical grids); only the norm reduction
//! reassociates on the SIMD lane, within the documented 1e-12.

use super::config::{JacobiConfig, RESIDUAL_REDUCTION};
use crate::cache;
use crate::simd::{self, Lane};
use crate::stencil7::StencilConfig;
use gpu_sim::PooledVec;
use gpu_spec::Precision;
use rayon::prelude::*;

/// The result of a host Jacobi solve: the final iterate, the per-iteration
/// residual history, and how the solve stopped.
#[derive(Debug, Clone)]
pub struct JacobiSolution {
    /// The final iterate (boundary cells carry the initial field).
    pub grid: PooledVec<f64>,
    /// RMS iterate-difference norm after each sweep, in iteration order.
    pub residuals: PooledVec<f64>,
    /// Number of sweeps actually run (`residuals.len()`).
    pub iters_run: usize,
    /// Whether the [`RESIDUAL_REDUCTION`] target was reached before the
    /// iteration cap.
    pub converged: bool,
}

/// The stencil-grid configuration whose cached initial field seeds the solve
/// (the grid memo is keyed by `l` alone).
pub fn seed_config(config: &JacobiConfig) -> StencilConfig {
    StencilConfig::validation(config.l, Precision::Fp64)
}

/// RMS iterate-difference norm `sqrt(Σ (new−old)² / interior)`. Boundary
/// cells never change, so the sum may safely span the whole grid. The
/// deterministic lane uses the fixed-chunk pairwise tree the goldens pin;
/// the SIMD lane folds each chunk with independent accumulators
/// (`rayon`'s `sum_unrolled`), within 1e-12 relative.
pub fn residual_rms(new: &[f64], old: &[f64], interior_cells: f64, lane: Lane) -> f64 {
    let n = new.len().min(old.len());
    let sq = |i: usize| {
        let d = new[i] - old[i];
        d * d
    };
    let sum: f64 = match lane {
        Lane::Deterministic => (0..n).into_par_iter().map(sq).sum(),
        Lane::Simd => (0..n).into_par_iter().map(sq).sum_unrolled(),
    };
    (sum / interior_cells).sqrt()
}

/// Runs the Jacobi solve on the host under an explicit lane. Stops at the
/// documented residual target ([`RESIDUAL_REDUCTION`] × the first residual)
/// or at the configured iteration cap, whichever comes first.
pub fn solve_host(config: &JacobiConfig, lane: Lane) -> JacobiSolution {
    let l = config.l;
    let seed = cache::stencil_grid(&seed_config(config));
    let mut u: PooledVec<f64> = PooledVec::with_capacity(seed.len());
    u.extend_from_slice(&seed);
    let mut next: PooledVec<f64> = PooledVec::with_capacity(seed.len());
    next.extend_from_slice(&seed); // carries the Dirichlet boundary
    let mut residuals: PooledVec<f64> = PooledVec::with_capacity(config.iters);
    let interior = config.interior_cells() as f64;
    let mut converged = false;
    let mut target = f64::INFINITY;
    for _ in 0..config.iters {
        match lane {
            Lane::Deterministic => simd::jacobi_sweep_scalar(next.as_mut_slice(), &u, l),
            Lane::Simd => simd::jacobi_sweep(next.as_mut_slice(), &u, l),
        }
        let r = residual_rms(&next, &u, interior, lane);
        std::mem::swap(&mut u, &mut next);
        residuals.push(r);
        if residuals.len() == 1 {
            target = r * RESIDUAL_REDUCTION;
        }
        if r <= target {
            converged = true;
            break;
        }
    }
    let iters_run = residuals.len();
    JacobiSolution {
        grid: u,
        residuals,
        iters_run,
        converged,
    }
}

/// The CPU golden reference: the deterministic-lane host solve.
pub fn reference_jacobi(config: &JacobiConfig) -> JacobiSolution {
    solve_host(config, Lane::Deterministic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sized_solve_converges_before_the_cap() {
        let solution = reference_jacobi(&JacobiConfig::validation(16, 400));
        assert!(solution.converged);
        assert!(solution.iters_run < 400);
        let first = solution.residuals[0];
        let last = solution.residuals[solution.iters_run - 1];
        assert!(last <= first * RESIDUAL_REDUCTION);
    }

    #[test]
    fn residuals_are_monotonically_non_increasing() {
        // The Jacobi iteration matrix for the constant-diagonal Laplacian is
        // symmetric, so the iterate-difference 2-norm contracts every sweep.
        let solution = reference_jacobi(&JacobiConfig::validation(12, 200));
        for pair in solution.residuals.as_slice().windows(2) {
            assert!(
                pair[1] <= pair[0],
                "residual rose: {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn a_tight_cap_stops_the_solve_unconverged() {
        let solution = reference_jacobi(&JacobiConfig::validation(16, 5));
        assert!(!solution.converged);
        assert_eq!(solution.iters_run, 5);
    }

    #[test]
    fn boundary_cells_carry_the_seed_field() {
        let config = JacobiConfig::validation(8, 50);
        let seed = cache::stencil_grid(&seed_config(&config));
        let solution = reference_jacobi(&config);
        let l = config.l;
        assert_eq!(solution.grid[0], seed[0]);
        assert_eq!(solution.grid[l * l * l - 1], seed[l * l * l - 1]);
        // Interior cells relaxed away from the seed.
        let mid = (l / 2 * l + l / 2) * l + l / 2;
        assert_ne!(solution.grid[mid], seed[mid]);
    }

    #[test]
    fn both_lanes_produce_bitwise_identical_grids() {
        let config = JacobiConfig::validation(10, 80);
        let det = solve_host(&config, Lane::Deterministic);
        let simd = solve_host(&config, Lane::Simd);
        assert_eq!(det.iters_run, simd.iters_run);
        assert_eq!(det.grid.as_slice(), simd.grid.as_slice());
        for (a, b) in det.residuals.iter().zip(simd.residuals.iter()) {
            let rel = (a - b).abs() / a.abs().max(1e-300);
            assert!(rel <= 1e-12, "residual lane divergence {rel:.3e}");
        }
    }
}
