//! Expected results for each BabelStream operation.
//!
//! BabelStream initialises `a = 0.1`, `b = 0.2`, `c = 0.0` and uses
//! `scalar = 0.4`. Because every element of each array holds the same value,
//! the result of each operation is a constant array (or a single scalar for
//! Dot) that can be written in closed form — which is exactly how the
//! original benchmark verifies itself.

use super::config::{BabelStreamConfig, INIT_A, INIT_B, INIT_C, SCALAR};
use vendor_models::kernel_class::StreamOp;

/// The expected per-element value of the array each operation writes, or the
/// expected scalar for Dot.
pub fn expected_values(op: StreamOp, config: &BabelStreamConfig) -> f64 {
    match op {
        // c = a
        StreamOp::Copy => INIT_A,
        // b = scalar * c  (run on freshly initialised arrays, c = INIT_C)
        StreamOp::Mul => SCALAR * INIT_C,
        // c = a + b
        StreamOp::Add => INIT_A + INIT_B,
        // a = b + scalar * c
        StreamOp::Triad => INIT_B + SCALAR * INIT_C,
        // sum = Σ a·b
        StreamOp::Dot => INIT_A * INIT_B * config.n as f64,
    }
}

/// Which array (by name) each operation writes; used by the drivers to pick
/// the buffer to verify.
pub fn output_array(op: StreamOp) -> &'static str {
    match op {
        StreamOp::Copy | StreamOp::Add => "c",
        StreamOp::Mul => "b",
        StreamOp::Triad => "a",
        StreamOp::Dot => "sum",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;

    #[test]
    fn closed_forms_match_the_benchmark_definitions() {
        let config = BabelStreamConfig::validation(1000, Precision::Fp64);
        assert_eq!(expected_values(StreamOp::Copy, &config), 0.1);
        assert_eq!(expected_values(StreamOp::Mul, &config), 0.0);
        assert!((expected_values(StreamOp::Add, &config) - 0.3).abs() < 1e-15);
        assert_eq!(expected_values(StreamOp::Triad, &config), 0.2);
        assert!((expected_values(StreamOp::Dot, &config) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn output_arrays_match_listing3() {
        assert_eq!(output_array(StreamOp::Copy), "c");
        assert_eq!(output_array(StreamOp::Mul), "b");
        assert_eq!(output_array(StreamOp::Add), "c");
        assert_eq!(output_array(StreamOp::Triad), "a");
        assert_eq!(output_array(StreamOp::Dot), "sum");
    }
}
