//! In-silico molecular docking with the miniBUDE fasten kernel: the PPWI /
//! work-group sweep behind the paper's Figures 6 and 7, plus a validated
//! docking pass that reports the best poses it found.
//!
//! Run with `cargo run --release --example molecular_docking`.

use mojo_hpc::kernels::minibude::{self, Deck, MiniBudeConfig};
use mojo_hpc::metrics::{minibude_gflops, MiniBudeSizes};
use mojo_hpc::vendor::Platform;

fn main() {
    // ------------------------------------------------------------- GFLOP/s sweep
    println!("miniBUDE fasten, bm1 deck (Eq. 3 GFLOP/s), work-group = 64:\n");
    println!(
        "{:<24} {:>6} {:>12} {:>12} {:>12}",
        "", "PPWI", "Mojo", "CUDA -ff", "CUDA"
    );
    for ppwi in MiniBudeConfig::paper_ppwi_sweep() {
        let config = MiniBudeConfig {
            executed_poses: 0,
            ..MiniBudeConfig::paper(ppwi, 64)
        };
        let sizes = MiniBudeSizes::bm1(u64::from(ppwi));
        let gflops = |platform: &Platform| {
            let run = minibude::run(platform, &config).expect("fasten run");
            minibude_gflops(&sizes, run.seconds())
        };
        println!(
            "{:<24} {:>6} {:>12.0} {:>12.0} {:>12.0}",
            "NVIDIA H100",
            ppwi,
            gflops(&Platform::portable_h100()),
            gflops(&Platform::cuda_h100(true)),
            gflops(&Platform::cuda_h100(false)),
        );
    }

    // --------------------------------------------------------- a real docking run
    // Execute a small deck functionally, validate against the CPU reference,
    // and report the lowest-energy poses — what a docking user actually wants.
    println!("\nValidated docking pass (512 poses, portable backend on the MI300A):");
    let mut config = MiniBudeConfig::paper(4, 64);
    config.natlig = 16;
    config.natpro = 256;
    config.nposes = 512;
    config.executed_poses = 512;
    let config = config.normalised();
    let run = minibude::run(&Platform::portable_mi300a(), &config).expect("docking run");
    println!("  verification: {:?}", run.verification);

    let deck = Deck::generate(&config);
    let all = minibude::reference_energies(&deck, config.executed_poses);
    let mut energies: Vec<(usize, f32)> = all.into_iter().enumerate().collect();
    energies.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("  best poses (lowest interaction energy):");
    for (pose, energy) in energies.iter().take(5) {
        println!("    pose {pose:>4}  energy {energy:>10.3}");
    }
}
