//! Bench target for Figure 6 — miniBUDE GFLOP/s vs PPWI on the H100.

use criterion::{Criterion, Throughput};
use experiment_report::ExperimentId;
use science_kernels::minibude;
use science_kernels::workload::{self, ParamValue};
use vendor_models::Platform;

fn bench(c: &mut Criterion) {
    let pool_before = bench::pool_snapshot();
    let mut group = c.benchmark_group("fig6_minibude");
    // Functional execution of the portable fasten kernel at the workload's
    // bench preset PPWI values, on a reduced deck so the measured work is
    // the kernel itself.
    let engine = workload::find("minibude").expect("registered workload");
    for &ppwi in engine.bench_sizes() {
        let mut params = engine.default_params();
        params
            .set(engine.size_param(), ParamValue::Int(ppwi))
            .expect("size param");
        params
            .apply_encoding("poses=128,natlig=8,natpro=64")
            .expect("reduced deck");
        engine.validate(&params).expect("bench preset validates");
        let config = minibude::workload::config(&params).expect("bench preset decodes");
        let platform = Platform::portable_h100();
        // Poses actually executed per driver run (normalised() rounds the
        // count to a multiple of ppwi, so derive it from this exact config).
        group.throughput(Throughput::Elements(config.executed_poses as u64));
        group.bench_function(format!("portable_fasten_ppwi{ppwi}"), |b| {
            b.iter(|| minibude::run(&platform, &config).unwrap())
        });
    }
    bench::record_pool_counters(&mut group, &pool_before);
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Fig6);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
