//! Helpers shared by the experiment modules: the platform sets each figure
//! compares and figure-of-merit extraction from workload runs.

use hpc_metrics::{
    babelstream_bandwidth_gbs, minibude_gflops, stencil_bandwidth_gbs, BabelStreamOp, MiniBudeSizes,
};
use science_kernels::babelstream::BabelStreamConfig;
use science_kernels::minibude::MiniBudeConfig;
use science_kernels::stencil7::StencilConfig;
use science_kernels::WorkloadRun;
use vendor_models::kernel_class::StreamOp;
use vendor_models::Platform;

/// Number of repeated (jittered) measurements per configuration, mirroring
/// the paper's "at least 100 runs".
pub const RUNS_PER_CONFIG: usize = 100;

/// Relative run-to-run spread used for the stencil scatter plots (the paper
/// notes visible variability for this kernel).
pub const STENCIL_JITTER: f64 = 0.035;

/// Relative run-to-run spread for BabelStream (the paper notes much less
/// variability thanks to the simple 1-D access pattern).
pub const STREAM_JITTER: f64 = 0.008;

/// One rendered metric row of a profiling table: label plus a per-record
/// extractor.
pub type MetricRow<T> = (&'static str, fn(&T) -> String);

/// The portable-vs-vendor platform pairs compared on each device.
pub fn h100_pair() -> (Platform, Platform) {
    (Platform::portable_h100(), Platform::cuda_h100(false))
}

/// The portable-vs-vendor platform pair on the MI300A.
pub fn mi300a_pair() -> (Platform, Platform) {
    (Platform::portable_mi300a(), Platform::hip_mi300a(false))
}

/// Effective stencil bandwidth (Eq. 1) of a run in GB/s.
pub fn stencil_fom(run: &WorkloadRun, config: &StencilConfig) -> f64 {
    stencil_bandwidth_gbs(config.l as u64, config.precision, run.seconds())
}

/// Effective BabelStream bandwidth (Eq. 2) of a run in GB/s.
pub fn stream_fom(run: &WorkloadRun, op: StreamOp, config: &BabelStreamConfig) -> f64 {
    babelstream_bandwidth_gbs(
        to_metric_op(op),
        config.n as u64,
        config.precision,
        run.seconds(),
    )
}

/// miniBUDE GFLOP/s (Eq. 3) of a run.
pub fn bude_fom(run: &WorkloadRun, config: &MiniBudeConfig) -> f64 {
    let sizes = MiniBudeSizes {
        nligands: config.natlig as u64,
        nproteins: config.natpro as u64,
        poses: config.nposes as u64,
        ppwi: config.ppwi as u64,
    };
    minibude_gflops(&sizes, run.seconds())
}

/// Maps the kernel-side operation enum onto the metric-side one (shared
/// with the workload layer's figure-of-merit computation).
pub fn to_metric_op(op: StreamOp) -> BabelStreamOp {
    science_kernels::babelstream::workload::metric_op(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;

    #[test]
    fn platform_pairs_are_portable_vs_native() {
        let (mojo, cuda) = h100_pair();
        assert!(mojo.backend.is_portable());
        assert!(cuda.is_vendor_baseline());
        let (mojo, hip) = mi300a_pair();
        assert!(mojo.backend.is_portable());
        assert!(hip.is_vendor_baseline());
    }

    #[test]
    fn stream_op_mapping_is_total_and_consistent() {
        for op in StreamOp::ALL {
            assert_eq!(to_metric_op(op).label(), op.label());
        }
    }

    #[test]
    fn figures_of_merit_are_positive() {
        let config = StencilConfig::paper(512, Precision::Fp64);
        let run = science_kernels::stencil7::run(&Platform::cuda_h100(false), &config).unwrap();
        assert!(stencil_fom(&run, &config) > 100.0);

        let sconfig = BabelStreamConfig::paper(Precision::Fp64);
        let srun = science_kernels::babelstream::run(
            &Platform::portable_h100(),
            StreamOp::Triad,
            &sconfig,
        )
        .unwrap();
        assert!(stream_fom(&srun, StreamOp::Triad, &sconfig) > 1000.0);

        let bconfig = MiniBudeConfig {
            executed_poses: 0,
            ..MiniBudeConfig::paper(8, 64)
        };
        let brun = science_kernels::minibude::run(&Platform::cuda_h100(true), &bconfig).unwrap();
        assert!(bude_fom(&brun, &bconfig) > 100.0);
    }
}
