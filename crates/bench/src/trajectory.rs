//! Performance-trajectory rendering across archived bench snapshots.
//!
//! CI archives every build's `target/bench/*.json` records under a
//! `bench-trajectory-<sha>` cache key (see `.github/workflows/ci.yml`). This
//! module walks a directory whose subdirectories are such snapshots and
//! renders, for every benchmark, the trend of its mean time across the
//! snapshots — the `mojo-hpc bench-trajectory` subcommand.
//!
//! Snapshots are ordered by modification time (oldest first, name as the
//! tie-break): commit SHAs do not sort chronologically, but the archive's
//! directory timestamps do.

use crate::diff::{load_records, BenchGroup};
use std::path::Path;

/// One archived bench snapshot: its directory name and parsed records.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Directory (file) name of the snapshot, e.g. `bench-trajectory-abc123`.
    pub name: String,
    /// Bench group records found in the snapshot directory.
    pub records: Vec<BenchGroup>,
}

impl Snapshot {
    /// Display label: the directory name without the `bench-trajectory-`
    /// archive prefix, truncated to 12 characters (enough for a short SHA).
    pub fn label(&self) -> &str {
        let stem = self
            .name
            .strip_prefix("bench-trajectory-")
            .unwrap_or(&self.name);
        &stem[..stem.len().min(12)]
    }
}

/// The mean-time trend of one benchmark across every snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// Group name (the record file stem).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean nanoseconds per snapshot, `None` where the benchmark is absent.
    pub mean_ns: Vec<Option<f64>>,
}

impl TrendRow {
    /// Relative change from the first to the last snapshot that has this
    /// benchmark, `(last - first) / first` (positive = slower). `None` with
    /// fewer than two data points.
    pub fn overall_change(&self) -> Option<f64> {
        let mut present = self.mean_ns.iter().flatten();
        let first = *present.next()?;
        let last = *present.last()?;
        (first != 0.0).then(|| (last - first) / first)
    }
}

/// A full trajectory: the snapshot names (chronological) and one trend row
/// per benchmark observed in any snapshot.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// Snapshots in chronological order.
    pub snapshots: Vec<Snapshot>,
    /// One row per `(group, id)`, sorted for deterministic output.
    pub rows: Vec<TrendRow>,
}

/// Loads every snapshot subdirectory of `root`, ordered by modification
/// time (oldest first) with the directory name as the tie-break.
pub fn load_snapshots(root: &Path) -> Result<Vec<Snapshot>, String> {
    let mut dirs: Vec<(std::time::SystemTime, String)> = std::fs::read_dir(root)
        .map_err(|e| format!("cannot read {}: {e}", root.display()))?
        .filter_map(|entry| entry.ok())
        .filter(|entry| entry.path().is_dir())
        .filter_map(|entry| {
            let name = entry.file_name().into_string().ok()?;
            let mtime = entry
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            Some((mtime, name))
        })
        .collect();
    dirs.sort();
    dirs.into_iter()
        .map(|(_, name)| {
            let records = load_records(&root.join(&name))?;
            Ok(Snapshot { name, records })
        })
        .collect()
}

/// Builds the trajectory over `snapshots`: the union of every `(group, id)`
/// pair, each row carrying that benchmark's mean time per snapshot.
pub fn trajectory(snapshots: Vec<Snapshot>) -> Trajectory {
    let mut keys: Vec<(String, String)> = Vec::new();
    for snapshot in &snapshots {
        for group in &snapshot.records {
            for bench in &group.benchmarks {
                let key = (group.group.clone(), bench.id.clone());
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
    }
    keys.sort();
    let rows = keys
        .into_iter()
        .map(|(group, id)| {
            let mean_ns = snapshots
                .iter()
                .map(|snapshot| {
                    snapshot
                        .records
                        .iter()
                        .find(|g| g.group == group)
                        .and_then(|g| g.benchmarks.iter().find(|b| b.id == id))
                        .map(|b| b.mean_ns)
                })
                .collect();
            TrendRow { group, id, mean_ns }
        })
        .collect();
    Trajectory { snapshots, rows }
}

/// Renders the trajectory as an aligned console table: one row per
/// benchmark, one column per snapshot (mean ns), plus the overall relative
/// change.
pub fn render(t: &Trajectory) -> String {
    if t.snapshots.is_empty() {
        return "no bench snapshots found\n".to_string();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "bench trajectory over {} snapshot(s):\n",
        t.snapshots.len()
    ));
    let name_width = t
        .rows
        .iter()
        .map(|r| r.group.len() + 1 + r.id.len())
        .chain(std::iter::once("benchmark".len()))
        .max()
        .unwrap_or(0);
    let col_width = t
        .snapshots
        .iter()
        .map(|s| s.label().len())
        .max()
        .unwrap_or(0)
        .max(12);
    out.push_str(&format!("{:<name_width$}", "benchmark"));
    for snapshot in &t.snapshots {
        out.push_str(&format!("  {:>col_width$}", snapshot.label()));
    }
    out.push_str("    change\n");
    for row in &t.rows {
        out.push_str(&format!(
            "{:<name_width$}",
            format!("{}/{}", row.group, row.id)
        ));
        for mean in &row.mean_ns {
            match mean {
                Some(ns) => out.push_str(&format!("  {:>col_width$.1}", ns)),
                None => out.push_str(&format!("  {:>col_width$}", "-")),
            }
        }
        match row.overall_change() {
            Some(change) => out.push_str(&format!("  {:>+7.1}%\n", change * 100.0)),
            None => out.push_str("        -\n"),
        }
    }
    out
}

/// Renders the trajectory as CSV: `group,id,<snapshot>...` with raw mean
/// nanoseconds (empty cell where a benchmark is absent from a snapshot).
pub fn to_csv(t: &Trajectory) -> String {
    let mut out = String::from("group,id");
    for snapshot in &t.snapshots {
        out.push(',');
        out.push_str(&snapshot.name);
    }
    out.push('\n');
    for row in &t.rows {
        out.push_str(&row.group);
        out.push(',');
        out.push_str(&row.id);
        for mean in &row.mean_ns {
            out.push(',');
            if let Some(ns) = mean {
                out.push_str(&format!("{ns}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::BenchMeasurement;

    fn group(name: &str, ids: &[(&str, f64)]) -> BenchGroup {
        BenchGroup {
            group: name.to_string(),
            benchmarks: ids
                .iter()
                .map(|&(id, mean)| BenchMeasurement {
                    id: id.to_string(),
                    samples: 1,
                    mean_ns: mean,
                    min_ns: mean as u64,
                    max_ns: mean as u64,
                    throughput: None,
                })
                .collect(),
            counters: None,
        }
    }

    fn snapshot(name: &str, records: Vec<BenchGroup>) -> Snapshot {
        Snapshot {
            name: name.to_string(),
            records,
        }
    }

    #[test]
    fn rows_cover_the_union_of_benchmarks_in_sorted_order() {
        let t = trajectory(vec![
            snapshot("s1", vec![group("g", &[("b", 100.0), ("a", 10.0)])]),
            snapshot("s2", vec![group("g", &[("a", 20.0), ("c", 5.0)])]),
        ]);
        let keys: Vec<String> = t
            .rows
            .iter()
            .map(|r| format!("{}/{}", r.group, r.id))
            .collect();
        assert_eq!(keys, vec!["g/a", "g/b", "g/c"]);
        assert_eq!(t.rows[0].mean_ns, vec![Some(10.0), Some(20.0)]);
        assert_eq!(t.rows[1].mean_ns, vec![Some(100.0), None]);
        assert_eq!(t.rows[2].mean_ns, vec![None, Some(5.0)]);
    }

    #[test]
    fn overall_change_spans_first_to_last_present_snapshot() {
        let row = TrendRow {
            group: "g".to_string(),
            id: "a".to_string(),
            mean_ns: vec![Some(100.0), None, Some(150.0)],
        };
        assert!((row.overall_change().unwrap() - 0.5).abs() < 1e-12);
        let single = TrendRow {
            group: "g".to_string(),
            id: "a".to_string(),
            mean_ns: vec![None, Some(100.0), None],
        };
        assert_eq!(single.overall_change(), None);
    }

    #[test]
    fn labels_strip_the_archive_prefix_and_truncate() {
        let s = snapshot("bench-trajectory-0123456789abcdef0123", vec![]);
        assert_eq!(s.label(), "0123456789ab");
        assert_eq!(snapshot("short", vec![]).label(), "short");
    }

    #[test]
    fn render_and_csv_are_shaped_by_the_snapshots() {
        let t = trajectory(vec![
            snapshot("s1", vec![group("g", &[("a", 100.0)])]),
            snapshot("s2", vec![group("g", &[("a", 110.0)])]),
        ]);
        let text = render(&t);
        assert!(text.contains("g/a"));
        assert!(text.contains("+10.0%"));
        let csv = to_csv(&t);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("group,id,s1,s2"));
        assert_eq!(lines.next(), Some("g,a,100,110"));
        assert!(render(&trajectory(Vec::new())).contains("no bench snapshots"));
    }

    #[test]
    fn snapshots_load_from_disk_oldest_first() {
        let base = std::env::temp_dir().join(format!("bench-traj-test-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        for (name, mean) in [("older", 100.0), ("newer", 120.0)] {
            let dir = base.join(format!("bench-trajectory-{name}"));
            std::fs::create_dir_all(&dir).unwrap();
            let record = serde_json::to_string(&group("g", &[("a", mean)])).unwrap();
            std::fs::write(dir.join("g.json"), record).unwrap();
            // Distinct mtimes so the chronological order is unambiguous.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let snapshots = load_snapshots(&base).unwrap();
        assert_eq!(snapshots.len(), 2);
        assert_eq!(snapshots[0].name, "bench-trajectory-older");
        assert_eq!(snapshots[1].name, "bench-trajectory-newer");
        let t = trajectory(snapshots);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].mean_ns, vec![Some(100.0), Some(120.0)]);
        assert!(load_snapshots(&base.join("missing")).is_err());
        std::fs::remove_dir_all(&base).ok();
    }
}
