//! The persistent work-stealing thread pool behind the rayon shim.
//!
//! The previous shim spawned and joined fresh OS threads (`std::thread::scope`)
//! on every parallel call — acceptable for one-off launches, ruinous for the
//! simulator's hot path where every kernel launch is a parallel region. This
//! module keeps a single lazily-created pool alive for the whole process:
//!
//! * one worker thread per logical core (`RAYON_NUM_THREADS` overrides);
//! * a per-worker deque of work slots; owners push and pop at the back
//!   (LIFO, depth-first), thieves steal *batches* (the oldest half of the
//!   victim's deque) from the front, which keeps steal traffic logarithmic
//!   in the segment count;
//! * callers participate: the thread that opens a parallel scope executes
//!   slots itself while it waits, so nested scopes opened from inside a
//!   worker never deadlock;
//! * a [`join`] primitive for binary fork-join parallelism, usable from
//!   anywhere — including from inside a running kernel closure;
//! * graceful single-core degeneration: with one hardware thread (or
//!   `RAYON_NUM_THREADS=1`) no threads are ever spawned and every scope runs
//!   inline on the caller.
//!
//! Scoped borrows are handed to 'static worker threads through type-erased
//! raw pointers; soundness rests on one invariant, enforced by the latch in
//! every job: **a scope entry point does not return until every slot created
//! for its job has been executed** (or the job poisoned by a panic), so the
//! job — and everything it borrows — outlives all worker accesses.

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Upper bound on worker threads, matching rayon's default cap behaviour for
/// absurd `RAYON_NUM_THREADS` values.
const MAX_THREADS: usize = 256;

/// Segments created per worker when a scope is split; more segments give the
/// thieves something to steal, fewer amortise bookkeeping. Four per worker is
/// rayon's classic depth-first split factor.
const SEGMENTS_PER_WORKER: usize = 4;

thread_local! {
    /// Index of the pool worker running on this thread (`None` on host
    /// threads), used to push nested work onto the local deque.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
    /// When > 0, parallel scopes opened from this thread run inline
    /// (installed by [`crate::ThreadPool::install`] with one thread).
    static FORCE_SERIAL: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Executes scoped work: `execute` runs one index range of the job.
trait Job: Sync {
    fn execute(&self, range: Range<usize>);
}

/// A unit of queued work: a type-erased job pointer plus the index range to
/// run. The pointee is kept alive by the scope-doesn't-return-early invariant
/// described in the module docs.
struct Slot {
    job: *const (dyn Job + 'static),
    range: Range<usize>,
}

// SAFETY: the job pointer is only dereferenced while the owning scope blocks
// on its latch, so the pointee is alive and `dyn Job: Sync` makes shared
// access from another thread sound.
unsafe impl Send for Slot {}

impl Slot {
    fn run(self) {
        // SAFETY: see the `Send` impl above.
        unsafe { (*self.job).execute(self.range) };
    }
}

/// Completion latch: counts outstanding segments, wakes the scope owner when
/// the last one finishes, and records the first panic payload so it can be
/// rethrown — message and all — on the owner's thread.
struct Latch {
    pending: AtomicUsize,
    poisoned: AtomicBool,
    /// First panic payload from any segment (later ones are dropped).
    payload: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    cond: Condvar,
}

impl Latch {
    fn new(pending: usize) -> Self {
        Latch {
            pending: AtomicUsize::new(pending),
            poisoned: AtomicBool::new(false),
            payload: Mutex::new(None),
            done: Mutex::new(pending == 0),
            cond: Condvar::new(),
        }
    }

    /// Marks one segment finished (recording its panic payload, if any); the
    /// final call opens the latch.
    fn complete_one(&self, panic: Option<Box<dyn Any + Send>>) {
        if let Some(payload) = panic {
            self.poisoned.store(true, Ordering::Release);
            let mut slot = self.payload.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
            *done = true;
            self.cond.notify_all();
        }
    }

    /// Rethrows the recorded panic on the calling thread if any segment
    /// panicked. Call only after the latch has opened.
    fn rethrow_if_poisoned(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            let payload = self
                .payload
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .unwrap_or_else(|| Box::new("a parallel task panicked"));
            std::panic::resume_unwind(payload);
        }
    }

    fn is_open(&self) -> bool {
        *self.done.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until the latch opens or `timeout` elapses.
    fn wait_timeout(&self, timeout: Duration) {
        let done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        if !*done {
            let _ = self
                .cond
                .wait_timeout_while(done, timeout, |d| !*d)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until the latch opens (no timeout; `complete_one` wakes us).
    fn wait(&self) {
        let done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        let _guard = self
            .cond
            .wait_while(done, |d| !*d)
            .unwrap_or_else(|e| e.into_inner());
    }
}

/// An indexed parallel job: run `body` over every index of each segment.
struct IndexedJob<'a> {
    body: &'a (dyn Fn(usize) + Sync),
    latch: Latch,
}

impl Job for IndexedJob<'_> {
    fn execute(&self, range: Range<usize>) {
        let result = catch_unwind(AssertUnwindSafe(|| {
            for i in range {
                (self.body)(i);
            }
        }));
        self.latch.complete_one(result.err());
    }
}

/// A one-shot job used by [`join`]: runs a closure once, storing its result.
struct OnceJob<F, R> {
    func: Mutex<Option<F>>,
    result: Mutex<Option<R>>,
    latch: Latch,
}

impl<F: FnOnce() -> R + Send, R: Send> OnceJob<F, R> {
    fn new(func: F) -> Self {
        OnceJob {
            func: Mutex::new(Some(func)),
            result: Mutex::new(None),
            latch: Latch::new(1),
        }
    }

    fn run_now(&self) {
        self.execute(0..0);
    }

    fn take_result(&self) -> Option<R> {
        self.result.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

impl<F: FnOnce() -> R + Send, R: Send> Job for OnceJob<F, R> {
    fn execute(&self, _range: Range<usize>) {
        let func = self.func.lock().unwrap_or_else(|e| e.into_inner()).take();
        let Some(func) = func else { return };
        let outcome = catch_unwind(AssertUnwindSafe(func));
        match outcome {
            Ok(value) => {
                *self.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
                self.latch.complete_one(None);
            }
            Err(payload) => self.latch.complete_one(Some(payload)),
        }
    }
}

/// Shared state of one worker: its deque of pending slots.
struct WorkerState {
    deque: Mutex<VecDeque<Slot>>,
}

/// The process-wide pool.
pub(crate) struct Pool {
    workers: Vec<WorkerState>,
    /// Injection epoch: bumped (under `sleep`) whenever new slots arrive, so
    /// parked workers can detect work they have not scanned for yet.
    sleep: Mutex<u64>,
    wakeup: Condvar,
    /// Round-robin cursor for external injection.
    next_worker: AtomicUsize,
}

fn configured_threads() -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(0) | None => hardware,
        Some(n) => n.min(MAX_THREADS),
    }
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The lazily-created global pool.
pub(crate) fn global() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let pool = Pool {
            workers: (0..threads)
                .map(|_| WorkerState {
                    deque: Mutex::new(VecDeque::new()),
                })
                .collect(),
            sleep: Mutex::new(0),
            wakeup: Condvar::new(),
            next_worker: AtomicUsize::new(0),
        };
        if threads > 1 {
            for index in 0..threads {
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    .spawn(move || worker_main(index))
                    .expect("failed to spawn pool worker");
            }
        }
        pool
    })
}

/// Number of threads parallel scopes fan out over (1 means inline execution).
pub fn current_num_threads() -> usize {
    if FORCE_SERIAL.with(|f| f.get()) > 0 {
        1
    } else {
        global().workers.len()
    }
}

/// Runs `f` with every parallel scope opened from this thread (and from
/// nested inline scopes) executing serially. Used by the determinism tests to
/// compare single-threaded and pooled execution in one process.
pub(crate) fn run_serial<R>(f: impl FnOnce() -> R) -> R {
    FORCE_SERIAL.with(|flag| flag.set(flag.get() + 1));
    let result = catch_unwind(AssertUnwindSafe(f));
    FORCE_SERIAL.with(|flag| flag.set(flag.get() - 1));
    match result {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn worker_main(index: usize) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    let pool = global();
    let mut last_epoch = 0u64;
    loop {
        if pool.run_one(index) {
            continue;
        }
        // No runnable work anywhere: park until the next injection. The
        // untimed wait cannot miss work — every injection bumps the epoch
        // under this same lock before notifying, and the epoch is re-checked
        // here before parking, so idle workers consume zero CPU.
        let guard = pool.sleep.lock().unwrap_or_else(|e| e.into_inner());
        if *guard != last_epoch {
            last_epoch = *guard;
            continue; // work arrived while we were scanning
        }
        let guard = pool
            .wakeup
            .wait_while(guard, |epoch| *epoch == last_epoch)
            .unwrap_or_else(|e| e.into_inner());
        last_epoch = *guard;
    }
}

impl Pool {
    fn lock_deque(&self, index: usize) -> std::sync::MutexGuard<'_, VecDeque<Slot>> {
        self.workers[index]
            .deque
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Pushes slots onto a worker's deque (the local one when called from a
    /// worker, round-robin otherwise) and wakes the pool.
    fn inject(&self, slots: Vec<Slot>) {
        let local = WORKER_INDEX.with(|w| w.get());
        match local {
            Some(index) => self.lock_deque(index).extend(slots),
            None => {
                // Spread segments across workers so several can start
                // immediately without a steal.
                let n = self.workers.len();
                let start = self.next_worker.fetch_add(1, Ordering::Relaxed);
                for (offset, slot) in slots.into_iter().enumerate() {
                    self.lock_deque((start + offset) % n).push_back(slot);
                }
            }
        }
        let mut epoch = self.sleep.lock().unwrap_or_else(|e| e.into_inner());
        *epoch += 1;
        self.wakeup.notify_all();
    }

    /// Executes one slot on behalf of worker `index`: first from its own
    /// deque, otherwise by stealing a batch from a victim. Returns false when
    /// no work was found anywhere.
    ///
    /// Local pop is LIFO (back of the deque, where nested scopes push): a
    /// worker waiting on a nested scope runs its *own* freshly-pushed slots
    /// before older, unrelated work round-robined onto its deque — rayon's
    /// depth-first discipline, which keeps nested-launch latency proportional
    /// to the nested work and bounds helper recursion.
    fn run_one(&self, index: usize) -> bool {
        // Bind before matching: the deque guard must drop before `run`, which
        // may push nested work onto this very deque.
        let popped = self.lock_deque(index).pop_back();
        if let Some(slot) = popped {
            slot.run();
            return true;
        }
        self.steal_into(index)
    }

    /// Batch-steals the *front* (oldest) half of some victim's deque into
    /// worker `index`'s deque and runs the first stolen slot. Returns false
    /// if every deque is empty.
    fn steal_into(&self, index: usize) -> bool {
        let n = self.workers.len();
        for offset in 1..n {
            let victim = (index + offset) % n;
            let mut batch: VecDeque<Slot> = {
                let mut deque = self.lock_deque(victim);
                let take = deque.len().div_ceil(2);
                deque.drain(..take).collect()
            };
            let Some(first) = batch.pop_front() else {
                continue;
            };
            if !batch.is_empty() {
                self.lock_deque(index).extend(batch);
                // The transplanted batch is visible work other thieves may
                // want; announce it.
                let mut epoch = self.sleep.lock().unwrap_or_else(|e| e.into_inner());
                *epoch += 1;
                self.wakeup.notify_all();
            }
            first.run();
            return true;
        }
        false
    }

    /// Steals and runs one slot from any deque on behalf of an external
    /// (non-worker) thread. Returns false when nothing was runnable.
    fn help_once(&self) -> bool {
        if let Some(index) = WORKER_INDEX.with(|w| w.get()) {
            return self.run_one(index);
        }
        for index in 0..self.workers.len() {
            // Thief-side order: take the oldest slot.
            let slot = self.lock_deque(index).pop_front();
            if let Some(slot) = slot {
                slot.run();
                return true;
            }
        }
        false
    }

    /// Participates in pool work until `latch` opens.
    ///
    /// Pool workers keep a short timed poll between help attempts so they
    /// stay responsive to fresh injections. External callers park on the
    /// latch untimed once a few consecutive scans find nothing to help with:
    /// at that point every slot of their job is queued on (or running under)
    /// a worker, which completes it without their help, and `complete_one`'s
    /// notify wakes them — no 1 ms wakeup churn during long tasks.
    fn wait_with_help(&self, latch: &Latch) {
        let is_worker = WORKER_INDEX.with(|w| w.get()).is_some();
        let mut idle_scans = 0u32;
        while !latch.is_open() {
            if self.help_once() {
                idle_scans = 0;
            } else if is_worker || idle_scans < 3 {
                idle_scans += 1;
                latch.wait_timeout(Duration::from_millis(1));
            } else {
                latch.wait();
            }
        }
    }
}

/// Erases the lifetime of a job reference for queueing.
///
/// # Safety
/// The caller must not return from the enclosing scope until the job's latch
/// opens (all slots executed).
unsafe fn erase<'a>(job: &'a (dyn Job + 'a)) -> *const (dyn Job + 'static) {
    std::mem::transmute::<*const (dyn Job + 'a), *const (dyn Job + 'static)>(job)
}

/// Runs `body(i)` for every `i in 0..len` across the pool, blocking until all
/// indices have executed. Panics in `body` are propagated to the caller.
pub(crate) fn scope_indexed(len: usize, body: &(dyn Fn(usize) + Sync)) {
    if len == 0 {
        return;
    }
    let serial = FORCE_SERIAL.with(|f| f.get()) > 0;
    let pool = global();
    if serial || pool.workers.len() <= 1 || len == 1 {
        for i in 0..len {
            body(i);
        }
        return;
    }

    let segments = (pool.workers.len() * SEGMENTS_PER_WORKER).min(len);
    let job = IndexedJob {
        body,
        latch: Latch::new(segments),
    };
    // SAFETY: `wait_with_help` below blocks until the latch opens, i.e. until
    // every slot has run; `job` outlives all worker accesses.
    let erased = unsafe { erase(&job) };
    let mut slots = Vec::with_capacity(segments);
    let base = len / segments;
    let extra = len % segments;
    let mut start = 0;
    for s in 0..segments {
        let size = base + usize::from(s < extra);
        slots.push(Slot {
            job: erased,
            range: start..start + size,
        });
        start += size;
    }
    pool.inject(slots);
    pool.wait_with_help(&job.latch);
    job.latch.rethrow_if_poisoned();
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
///
/// `b` is published to the pool while the caller runs `a`; if no worker has
/// claimed it by then the caller reclaims and runs it inline (the common,
/// allocation-free fast path). Usable from host threads and from inside
/// kernels running on the pool (nested fork-join).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let serial = FORCE_SERIAL.with(|f| f.get()) > 0;
    let pool = global();
    if serial || pool.workers.len() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }

    let bjob = OnceJob::new(b);
    // SAFETY: this function blocks (reclaim or latch wait) until the slot for
    // `bjob` has been consumed, so the stack-allocated job stays alive.
    let erased = unsafe { erase(&bjob) };
    let target = WORKER_INDEX.with(|w| w.get());
    let pushed_to = match target {
        Some(index) => index,
        None => pool.next_worker.fetch_add(1, Ordering::Relaxed) % pool.workers.len(),
    };
    pool.lock_deque(pushed_to).push_back(Slot {
        job: erased,
        range: 0..0,
    });
    {
        let mut epoch = pool.sleep.lock().unwrap_or_else(|e| e.into_inner());
        *epoch += 1;
        pool.wakeup.notify_all();
    }

    // Run `a` under catch_unwind: the slot pointing at the stack-allocated
    // `bjob` is already published, so unwinding out of this frame now would
    // free the job under the pool's feet. Every path below retires the slot
    // before `bjob` can drop.
    let ra = catch_unwind(AssertUnwindSafe(a));

    // Try to reclaim the slot; if it is still queued where we pushed it, no
    // worker can start it once it is out of the deque.
    let reclaimed = {
        let mut deque = pool.lock_deque(pushed_to);
        let position = deque
            .iter()
            .position(|slot| std::ptr::eq(slot.job as *const (), erased as *const ()));
        position.map(|at| deque.remove(at)).is_some()
    };
    if reclaimed {
        // The slot is ours alone now; if `a` panicked, skip `b` entirely.
        if ra.is_ok() {
            bjob.run_now();
        }
    } else {
        // A thief holds (or already ran) the slot — help the pool until it
        // finishes. Required even when `a` panicked: the thief still
        // dereferences `bjob`.
        pool.wait_with_help(&bjob.latch);
    }
    let ra = match ra {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    bjob.latch.rethrow_if_poisoned();
    let rb = bjob
        .take_result()
        .expect("join closure completed no result");
    (ra, rb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_indexed_covers_every_index() {
        let n = 100_000;
        let sum = AtomicU64::new(0);
        scope_indexed(n, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (n as u64) * (n as u64 - 1) / 2);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn serial_override_forces_inline_execution() {
        let outer = current_num_threads();
        run_serial(|| {
            assert_eq!(current_num_threads(), 1);
            let sum = AtomicU64::new(0);
            scope_indexed(1000, &|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn join_survives_a_panicking_first_closure() {
        // The slot for `b` is already published when `a` unwinds; join must
        // retire it before propagating, or a worker dereferences freed stack.
        let result = catch_unwind(AssertUnwindSafe(|| {
            join(|| -> u32 { panic!("left side") }, || 7u32)
        }));
        assert!(result.is_err());
        // The pool (and fresh joins) still work afterwards.
        assert_eq!(join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn join_preserves_the_right_closure_panic_payload() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            join(|| 1u32, || -> u32 { panic!("right side") })
        }));
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"right side"));
    }

    #[test]
    fn panics_propagate_to_the_scope_owner() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope_indexed(64, &|i| {
                if i == 33 {
                    panic!("boom");
                }
            });
        }));
        // The original payload (message included) reaches the owner.
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
        // The pool survives a poisoned scope.
        let sum = AtomicU64::new(0);
        scope_indexed(16, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 120);
    }
}
