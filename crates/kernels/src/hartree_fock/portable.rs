//! Portable (Mojo-style) Hartree–Fock implementation — paper Listing 5.
//!
//! One thread per integral quartet: decode the quartet index, apply Schwarz
//! screening, evaluate the ERI through the four nested Gaussian loops, and
//! scatter six `Atomic.fetch_add` updates into the Fock `LayoutTensor`.

use super::config::HartreeFockConfig;
use super::cost::hartree_fock_cost;
use super::geometry::HeliumSystem;
use super::reference::quartet_eri;
use super::triangular::pair_decode;
use crate::cache;
use crate::common::{compare_slices, Verification, WorkloadRun};
use crate::simd::{self, Lane, LanePolicy};
use gpu_sim::{istr, istr_fmt, SimError};
use portable_kernel::prelude::*;
use vendor_models::{heuristics, KernelClass, Platform};

/// Runs the portable Hartree–Fock kernel on `platform` under the
/// process-wide lane policy.
pub fn run_portable(
    platform: &Platform,
    config: &HartreeFockConfig,
) -> Result<WorkloadRun, SimError> {
    run_portable_lane(platform, config, simd::process_policy())
}

/// Runs the portable Hartree–Fock kernel under an explicit lane policy. The
/// lane picks the host verification scan; both scans return bit-identical
/// results, so Hartree–Fock rows are byte-identical on every lane.
pub fn run_portable_lane(
    platform: &Platform,
    config: &HartreeFockConfig,
    policy: LanePolicy,
) -> Result<WorkloadRun, SimError> {
    let system = cache::helium_system(config);
    let cost = hartree_fock_cost(config, &system);
    let class = KernelClass::HartreeFock {
        natoms: config.natoms,
        ngauss: config.ngauss,
    };
    let profile = platform.execution_profile(&class);
    let timing = cache::timing_model(platform).estimate(&cost, &profile);
    let lane = simd::resolve(policy, simd::KERNEL_FOCK_ERI, u64::from(config.natoms));

    let verification = if config.should_execute() {
        execute(platform, config, &system, lane)?
    } else {
        Verification::Skipped {
            reason: istr_fmt(format_args!(
                "natoms = {} exceeds the functional-execution limit; cost model only",
                config.natoms
            )),
        }
    };

    Ok(WorkloadRun {
        backend: profile.backend.clone(),
        device: istr(&platform.spec.name),
        kernel: istr("hartree_fock"),
        cost,
        profile,
        timing,
        verification,
    })
}

fn execute(
    platform: &Platform,
    config: &HartreeFockConfig,
    system: &HeliumSystem,
    lane: Lane,
) -> Result<Verification, SimError> {
    let natoms = system.natoms;
    let ctx = DeviceContext::from_device(cache::device(platform));

    let dens = LayoutTensor::new(
        ctx.enqueue_create_buffer_from(&system.dens)?,
        Layout::row_major_2d(natoms, natoms),
    )?;
    let fock = LayoutTensor::new(
        ctx.enqueue_create_buffer::<f64>(natoms * natoms)?,
        Layout::row_major_2d(natoms, natoms),
    )?;
    let schwarz = LayoutTensor::new(
        ctx.enqueue_create_buffer_from(&system.schwarz)?,
        Layout::row_major_1d(system.schwarz.len()),
    )?;

    let nquartets = config.nquartets();
    let launch = heuristics::hartree_fock_launch(nquartets);
    let tol = config.screening_tol;

    let (fock_k, dens_k, schwarz_k) = (fock.clone(), dens.clone(), schwarz.clone());
    ctx.enqueue_function(launch, move |t| {
        let ijkl = t.global_x();
        if ijkl >= nquartets {
            return;
        }
        let (ij, kl) = pair_decode(ijkl);
        if schwarz_k.get(ij as usize) * schwarz_k.get(kl as usize) <= tol {
            return;
        }
        let eri = quartet_eri(system, ij, kl);
        // Six atomic Fock-matrix updates (Listing 5), reading the density
        // tensor from device memory and scattering through the portable
        // Atomic namespace on the flattened Fock tensor.
        let (i, j) = pair_decode(ij);
        let (k, l) = pair_decode(kl);
        let (i, j, k, l) = (i as usize, j as usize, k as usize, l as usize);
        Atomic::fetch_add_f64(&fock_k, i * natoms + j, dens_k.get2(k, l) * eri * 4.0);
        Atomic::fetch_add_f64(&fock_k, k * natoms + l, dens_k.get2(i, j) * eri * 4.0);
        Atomic::fetch_add_f64(&fock_k, i * natoms + k, dens_k.get2(j, l) * -eri);
        Atomic::fetch_add_f64(&fock_k, i * natoms + l, dens_k.get2(j, k) * -eri);
        Atomic::fetch_add_f64(&fock_k, j * natoms + k, dens_k.get2(i, l) * -eri);
        Atomic::fetch_add_f64(&fock_k, j * natoms + l, dens_k.get2(i, k) * -eri);
    })?;
    ctx.synchronize();

    let expected = cache::hartree_fock_reference(config);
    let mut actual: PooledVec<f64> = PooledVec::new();
    fock.to_host_into(&mut actual);
    let compared = match lane {
        Lane::Deterministic => compare_slices(&actual, &expected, 1e-9),
        Lane::Simd => simd::compare_slices_unrolled(&actual, &expected, 1e-9),
    };
    match compared {
        Ok(max_abs_error) => Ok(Verification::Passed { max_abs_error }),
        Err(msg) => Err(SimError::InvalidParameter(format!(
            "Hartree-Fock verification failed: {msg}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_fock_matches_the_reference() {
        let config = HartreeFockConfig::validation(10);
        let run = run_portable(&Platform::portable_h100(), &config).unwrap();
        match run.verification {
            Verification::Passed { max_abs_error } => assert!(max_abs_error < 1e-6),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn screening_threshold_is_respected_on_device() {
        // With an enormous threshold nothing survives, so the Fock matrix is zero.
        let mut config = HartreeFockConfig::validation(8);
        config.screening_tol = 1e12;
        let run = run_portable(&Platform::portable_mi300a(), &config).unwrap();
        assert!(run.verification.is_verified());
        assert_eq!(run.cost.atomics_fp64, 0);
    }

    #[test]
    fn large_systems_skip_execution_but_still_cost_atomics() {
        let config = HartreeFockConfig::paper(256, 3);
        let run = run_portable(&Platform::portable_h100(), &config).unwrap();
        assert!(!run.verification.is_verified());
        assert!(run.cost.atomics_fp64 > 1_000_000);
        assert!(run.seconds() > 0.01);
    }
}
