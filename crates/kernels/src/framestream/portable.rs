//! Portable (Mojo-style) streaming-dataset engine.
//!
//! One launch per frame: the accumulator tensor stays resident on the device
//! while a single frame buffer is refilled with each arriving frame's data
//! and folded in — the frames are streamed, never resident, which is what
//! makes the batch deliberately larger than any cache could memoize. Both
//! buffers come from the §11 pool, so a steady-state run allocates nothing.

use super::config::{frame_value, FrameStreamConfig, ACC_INIT, ALPHA, BETA};
use super::cost::framestream_cost;
use super::reference::expected_final;
use crate::cache;
use crate::common::{Verification, WorkloadRun};
use crate::simd::{self, Lane, LanePolicy};
use gpu_sim::{istr, istr_fmt, SimError};
use portable_kernel::prelude::*;
use rayon::prelude::*;
use vendor_models::{heuristics, KernelClass, Platform};

/// Runs the portable frame stream on `platform` under the process-wide lane
/// policy.
pub fn run_portable(
    platform: &Platform,
    config: &FrameStreamConfig,
) -> Result<WorkloadRun, SimError> {
    run_portable_lane(platform, config, simd::process_policy())
}

/// Runs the portable frame stream under an explicit lane policy. The lane
/// picks the host verification scan; the element-wise fold itself cannot
/// reassociate, so every lane produces bitwise-identical accumulators.
pub fn run_portable_lane(
    platform: &Platform,
    config: &FrameStreamConfig,
    policy: LanePolicy,
) -> Result<WorkloadRun, SimError> {
    let cost = framestream_cost(config);
    let class = KernelClass::Stream {
        op: vendor_models::kernel_class::StreamOp::Triad,
        precision: gpu_spec::Precision::Fp64,
    };
    let profile = platform.execution_profile(&class);
    let timing = cache::timing_model(platform).estimate(&cost, &profile);
    let lane = simd::resolve(policy, simd::KERNEL_FRAMESTREAM, config.n as u64);

    let verification = if config.should_execute() {
        execute(platform, config, lane)?
    } else {
        Verification::Skipped {
            reason: istr_fmt(format_args!(
                "{} streamed elements exceed the functional-execution budget; cost model only",
                config.streamed_elements()
            )),
        }
    };

    Ok(WorkloadRun {
        backend: profile.backend.clone(),
        device: istr(&platform.spec.name),
        kernel: istr("framestream"),
        cost,
        profile,
        timing,
        verification,
    })
}

fn execute(
    platform: &Platform,
    config: &FrameStreamConfig,
    lane: Lane,
) -> Result<Verification, SimError> {
    let n = config.n;
    let ctx = DeviceContext::from_device(cache::device(platform));
    let layout = Layout::row_major_1d(n);
    let acc = LayoutTensor::new(ctx.enqueue_create_buffer::<f64>(n)?, layout)?;
    let frame = LayoutTensor::new(ctx.enqueue_create_buffer::<f64>(n)?, layout)?;
    acc.fill(ACC_INIT);

    let launch = heuristics::stream_launch(n as u64);
    for f in 0..config.frames {
        // The frame buffer is REUSED: refill stands in for the next frame of
        // a dataset arriving from storage.
        frame.fill(frame_value(f as u64));
        let (acc_k, frame_k) = (acc.clone(), frame.clone());
        ctx.enqueue_function(launch, move |t| {
            let i = t.global_x() as usize;
            if i < n {
                // The same expression, in the same association, as the host
                // lanes: acc·BETA + ALPHA·value.
                acc_k.set(i, acc_k.get(i) * BETA + ALPHA * frame_k.get(i));
            }
        })?;
    }
    ctx.synchronize();

    // Every element saw the identical frame sequence, so the whole
    // accumulator must equal the closed-form serial fold exactly.
    let expected = expected_final(config.frames);
    let max_rel = match lane {
        Lane::Deterministic => (0..n)
            .into_par_iter()
            .map(|i| {
                let v = acc.get(i);
                (v - expected).abs() / expected.abs().max(1.0)
            })
            .reduce(|| 0.0f64, f64::max),
        Lane::Simd => {
            let nchunks = n.div_ceil(rayon::REDUCE_CHUNK);
            (0..nchunks)
                .into_par_iter()
                .map(|chunk| {
                    let start = chunk * rayon::REDUCE_CHUNK;
                    let end = (start + rayon::REDUCE_CHUNK).min(n);
                    simd::max_rel_err_chunk(|i| acc.get(i), start, end, expected)
                })
                .reduce(|| 0.0f64, f64::max)
        }
    };

    if max_rel == 0.0 {
        Ok(Verification::Passed { max_abs_error: 0.0 })
    } else {
        Err(SimError::InvalidParameter(format!(
            "framestream verification failed: accumulator diverged from the closed form by \
             relative {max_rel:.3e}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_stream_matches_the_closed_form_bitwise() {
        let config = FrameStreamConfig::validation(4096, 48);
        let run = run_portable(&Platform::portable_h100(), &config).unwrap();
        match run.verification {
            Verification::Passed { max_abs_error } => assert_eq!(max_abs_error, 0.0),
            other => panic!("expected verification, got {other:?}"),
        }
    }

    #[test]
    fn simd_lane_verifies_too() {
        let config = FrameStreamConfig::validation(5000, 17);
        let run =
            run_portable_lane(&Platform::portable_mi300a(), &config, LanePolicy::Simd).unwrap();
        assert!(run.verification.is_verified());
    }

    #[test]
    fn oversized_batches_skip_functional_execution_but_still_time() {
        let config = FrameStreamConfig::paper(1 << 22, 1 << 10);
        let run = run_portable(&Platform::portable_h100(), &config).unwrap();
        assert!(!run.verification.is_verified());
        assert!(run.seconds() > 0.0);
    }
}
