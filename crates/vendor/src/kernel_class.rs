//! Kernel classification: which workload (and which shape of it) a backend is
//! compiling, so the codegen model can attach the right execution profile.

use gpu_spec::Precision;
use std::fmt;

/// The five BabelStream operations (paper Listing 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamOp {
    /// `c[i] = a[i]`.
    Copy,
    /// `b[i] = scalar * c[i]`.
    Mul,
    /// `c[i] = a[i] + b[i]`.
    Add,
    /// `a[i] = b[i] + scalar * c[i]`.
    Triad,
    /// `sum = Σ a[i]·b[i]` — the block-reduction kernel.
    Dot,
}

impl StreamOp {
    /// All operations in the paper's presentation order.
    pub const ALL: [StreamOp; 5] = [
        StreamOp::Copy,
        StreamOp::Mul,
        StreamOp::Add,
        StreamOp::Triad,
        StreamOp::Dot,
    ];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            StreamOp::Copy => "Copy",
            StreamOp::Mul => "Mul",
            StreamOp::Add => "Add",
            StreamOp::Triad => "Triad",
            StreamOp::Dot => "Dot",
        }
    }
}

impl fmt::Display for StreamOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What kind of kernel a backend is asked to compile. Codegen quality differs
/// per kernel family *and* per shape (the paper's Hartree–Fock collapse at
/// 1024 atoms, the miniBUDE work-group sensitivity), so the shape parameters
/// ride along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// A BabelStream operation at a given precision.
    Stream {
        /// Which of the five operations.
        op: StreamOp,
        /// Arithmetic precision.
        precision: Precision,
    },
    /// The seven-point stencil at a given precision.
    Stencil7 {
        /// Arithmetic precision.
        precision: Precision,
    },
    /// The miniBUDE `fasten` kernel with its launch-shape parameters.
    BudeFasten {
        /// Poses per work-item.
        ppwi: u32,
        /// Work-group (thread block) size.
        wg: u32,
    },
    /// The Hartree–Fock Fock-build kernel with its system parameters.
    HartreeFock {
        /// Number of helium atoms.
        natoms: u32,
        /// Gaussian primitives per atom.
        ngauss: u32,
    },
}

impl KernelClass {
    /// Short name of the kernel family ("stream", "stencil7", …).
    pub fn family(&self) -> &'static str {
        match self {
            KernelClass::Stream { .. } => "stream",
            KernelClass::Stencil7 { .. } => "stencil7",
            KernelClass::BudeFasten { .. } => "fasten",
            KernelClass::HartreeFock { .. } => "hartree_fock",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_ops_are_ordered_and_labelled() {
        let labels: Vec<_> = StreamOp::ALL.iter().map(|op| op.label()).collect();
        assert_eq!(labels, vec!["Copy", "Mul", "Add", "Triad", "Dot"]);
        assert_eq!(StreamOp::Dot.to_string(), "Dot");
    }

    #[test]
    fn kernel_families() {
        assert_eq!(
            KernelClass::Stream {
                op: StreamOp::Copy,
                precision: Precision::Fp64
            }
            .family(),
            "stream"
        );
        assert_eq!(
            KernelClass::HartreeFock {
                natoms: 64,
                ngauss: 3
            }
            .family(),
            "hartree_fock"
        );
    }
}
