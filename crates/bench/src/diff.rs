//! Parsing and diffing of the bench JSON records (`target/bench/*.json`).
//!
//! The criterion shim exports one record per benchmark group (schema in the
//! crate docs). This module reads those records back and compares two runs —
//! the committed baseline vs a fresh smoke run in CI, or any two archived
//! artifacts — reporting per-benchmark mean deltas and tolerating structural
//! drift: a group or benchmark present in only one side is reported as
//! *added*/*removed* instead of failing the comparison.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// Declared throughput of one benchmark (`"throughput"` in the record).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputRecord {
    /// `"elements"` or `"bytes"`.
    pub kind: String,
    /// Declared work per iteration.
    pub amount: u64,
    /// `amount / mean` in units per second.
    pub per_sec: f64,
}

/// One benchmark's measurements within a group record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchMeasurement {
    /// Benchmark id within the group.
    pub id: String,
    /// Number of timed iterations.
    pub samples: u64,
    /// Mean wall-clock per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration in nanoseconds.
    pub min_ns: u64,
    /// Slowest iteration in nanoseconds.
    pub max_ns: u64,
    /// Declared throughput, when the group set one.
    pub throughput: Option<ThroughputRecord>,
}

/// One named telemetry counter of a group record (`"counters"` in the
/// record) — the bench targets use these for buffer-pool statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterRecord {
    /// Counter name, e.g. `pool_hits`.
    pub name: String,
    /// Counter value over the whole group run.
    pub value: u64,
}

/// One `target/bench/<group>.json` record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchGroup {
    /// Group name (the file stem).
    pub group: String,
    /// Measurements of every benchmark in the group.
    pub benchmarks: Vec<BenchMeasurement>,
    /// Telemetry counters of the group run (`None` for records written
    /// before the key existed).
    pub counters: Option<Vec<CounterRecord>>,
}

/// Mean-time delta of one benchmark present in both runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkDelta {
    /// Benchmark id within the group.
    pub id: String,
    /// Mean nanoseconds in the baseline run.
    pub mean_ns_a: f64,
    /// Mean nanoseconds in the compared run.
    pub mean_ns_b: f64,
}

impl BenchmarkDelta {
    /// Relative change of the mean, `(b - a) / a` (positive = slower).
    pub fn relative_change(&self) -> f64 {
        if self.mean_ns_a == 0.0 {
            return 0.0;
        }
        (self.mean_ns_b - self.mean_ns_a) / self.mean_ns_a
    }
}

/// Comparison of one group present in both runs.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDelta {
    /// Group name.
    pub group: String,
    /// Benchmark ids present only in the compared run.
    pub added: Vec<String>,
    /// Benchmark ids present only in the baseline run.
    pub removed: Vec<String>,
    /// Deltas of the benchmarks present in both.
    pub benchmarks: Vec<BenchmarkDelta>,
}

/// Full comparison of two bench-record sets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchDiff {
    /// Groups present only in the compared run.
    pub added_groups: Vec<String>,
    /// Groups present only in the baseline run.
    pub removed_groups: Vec<String>,
    /// Per-group comparisons for groups present in both.
    pub groups: Vec<GroupDelta>,
}

/// Parses one bench JSON record.
pub fn parse_group(json: &str) -> Result<BenchGroup, String> {
    serde_json::from_str(json).map_err(|e| format!("invalid bench record: {e}"))
}

/// Loads bench records from `path`: a single `.json` file, or a directory
/// whose `*.json` files are all loaded (sorted by file name).
///
/// `target/bench/` also hosts sidecar artifacts that are not group records —
/// the lane crossover table among them. In directory mode a `.json` file
/// without a `"group"` key (every group record has one; see [`BenchGroup`])
/// is skipped rather than rejected, so sidecars ride along in archived bench
/// artifacts without breaking later diffs. An explicit single-file path is
/// still parsed strictly.
pub fn load_records(path: &Path) -> Result<Vec<BenchGroup>, String> {
    let read_one = |file: &Path| -> Result<BenchGroup, String> {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        parse_group(&text).map_err(|e| format!("{}: {e}", file.display()))
    };
    if path.is_dir() {
        let mut files: Vec<_> = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        files.sort();
        let mut groups = Vec::new();
        for file in &files {
            let text = std::fs::read_to_string(file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            if !text.contains("\"group\"") {
                continue;
            }
            groups.push(parse_group(&text).map_err(|e| format!("{}: {e}", file.display()))?);
        }
        Ok(groups)
    } else {
        Ok(vec![read_one(path)?])
    }
}

/// Compares two record sets. Groups and benchmarks are matched by name; a
/// name present on only one side lands in the `added`/`removed` lists
/// instead of aborting the comparison.
pub fn diff(baseline: &[BenchGroup], current: &[BenchGroup]) -> BenchDiff {
    let mut result = BenchDiff::default();
    for group in current {
        if !baseline.iter().any(|g| g.group == group.group) {
            result.added_groups.push(group.group.clone());
        }
    }
    for base in baseline {
        let Some(cur) = current.iter().find(|g| g.group == base.group) else {
            result.removed_groups.push(base.group.clone());
            continue;
        };
        let mut delta = GroupDelta {
            group: base.group.clone(),
            added: Vec::new(),
            removed: Vec::new(),
            benchmarks: Vec::new(),
        };
        for bench in &cur.benchmarks {
            if !base.benchmarks.iter().any(|b| b.id == bench.id) {
                delta.added.push(bench.id.clone());
            }
        }
        for bench in &base.benchmarks {
            match cur.benchmarks.iter().find(|b| b.id == bench.id) {
                Some(matching) => delta.benchmarks.push(BenchmarkDelta {
                    id: bench.id.clone(),
                    mean_ns_a: bench.mean_ns,
                    mean_ns_b: matching.mean_ns,
                }),
                None => delta.removed.push(bench.id.clone()),
            }
        }
        result.groups.push(delta);
    }
    result
}

/// One benchmark whose mean regressed beyond a tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Relative change of the mean, `(b - a) / a`.
    pub change: f64,
}

/// Benchmarks whose mean slowed down by more than `max_regression`
/// (a fraction: `0.10` tolerates up to +10%). Only benchmarks present in
/// both runs count; added/removed entries carry no delta to gate on.
pub fn regressions_beyond(diff: &BenchDiff, max_regression: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for group in &diff.groups {
        for bench in &group.benchmarks {
            let change = bench.relative_change();
            if change > max_regression {
                out.push(Regression {
                    group: group.group.clone(),
                    id: bench.id.clone(),
                    change,
                });
            }
        }
    }
    out
}

/// Renders a comparison as a human-readable report.
pub fn render(diff: &BenchDiff) -> String {
    let mut out = String::new();
    for group in &diff.added_groups {
        out.push_str(&format!("group {group}: added (no baseline)\n"));
    }
    for group in &diff.removed_groups {
        out.push_str(&format!("group {group}: removed (baseline only)\n"));
    }
    for group in &diff.groups {
        out.push_str(&format!("group {}\n", group.group));
        for id in &group.added {
            out.push_str(&format!("  {id}: added\n"));
        }
        for id in &group.removed {
            out.push_str(&format!("  {id}: removed\n"));
        }
        for bench in &group.benchmarks {
            out.push_str(&format!(
                "  {}: {:.1} ns -> {:.1} ns ({:+.1}%)\n",
                bench.id,
                bench.mean_ns_a,
                bench.mean_ns_b,
                bench.relative_change() * 100.0
            ));
        }
    }
    if out.is_empty() {
        out.push_str("no bench records on either side\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(name: &str, ids: &[(&str, f64)]) -> BenchGroup {
        BenchGroup {
            group: name.to_string(),
            benchmarks: ids
                .iter()
                .map(|&(id, mean)| BenchMeasurement {
                    id: id.to_string(),
                    samples: 10,
                    mean_ns: mean,
                    min_ns: mean as u64,
                    max_ns: mean as u64 + 10,
                    throughput: None,
                })
                .collect(),
            counters: None,
        }
    }

    #[test]
    fn schema_round_trips_through_the_shim_writer_format() {
        // Exactly the shape the criterion shim writes (see crate docs).
        let json = r#"{
  "group": "fig4_babelstream",
  "benchmarks": [
    {
      "id": "portable_triad",
      "samples": 10,
      "mean_ns": 1234567.8,
      "min_ns": 1200000,
      "max_ns": 1300000,
      "throughput": { "kind": "bytes", "amount": 8388608,
                      "per_sec": 6794772480.0 }
    },
    {
      "id": "no_throughput",
      "samples": 1,
      "mean_ns": 100.0,
      "min_ns": 100,
      "max_ns": 100,
      "throughput": null
    }
  ]
}"#;
        let record = parse_group(json).unwrap();
        assert_eq!(record.group, "fig4_babelstream");
        assert_eq!(record.benchmarks.len(), 2);
        let first = &record.benchmarks[0];
        assert_eq!(first.id, "portable_triad");
        assert_eq!(first.samples, 10);
        assert!((first.mean_ns - 1234567.8).abs() < 1e-6);
        let throughput = first.throughput.as_ref().unwrap();
        assert_eq!(throughput.kind, "bytes");
        assert_eq!(throughput.amount, 8388608);
        assert!(record.benchmarks[1].throughput.is_none());
        // A record written before the counters key existed parses to None.
        assert!(record.counters.is_none());
        // And the parsed record serialises back without loss of structure.
        let rendered = serde_json::to_string(&record).unwrap();
        let reparsed = parse_group(&rendered).unwrap();
        assert_eq!(reparsed, record);
    }

    #[test]
    fn counters_parse_when_present() {
        let json = r#"{
  "group": "g",
  "benchmarks": [],
  "counters": [
    { "name": "pool_hits", "value": 308 },
    { "name": "pool_misses", "value": 4 }
  ]
}"#;
        let record = parse_group(json).unwrap();
        let counters = record.counters.as_ref().unwrap();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].name, "pool_hits");
        assert_eq!(counters[0].value, 308);
        let rendered = serde_json::to_string(&record).unwrap();
        assert_eq!(parse_group(&rendered).unwrap(), record);
    }

    #[test]
    fn regression_gate_flags_only_slowdowns_beyond_the_tolerance() {
        let baseline = vec![group(
            "g",
            &[("fast", 100.0), ("slow", 100.0), ("ok", 100.0)],
        )];
        let current = vec![group(
            "g",
            &[("fast", 80.0), ("slow", 125.0), ("ok", 105.0)],
        )];
        let d = diff(&baseline, &current);
        let flagged = regressions_beyond(&d, 0.10);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].id, "slow");
        assert!((flagged[0].change - 0.25).abs() < 1e-12);
        // A looser tolerance passes everything; a zero tolerance flags every
        // slowdown but never a speedup.
        assert!(regressions_beyond(&d, 0.30).is_empty());
        let all = regressions_beyond(&d, 0.0);
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|r| r.id != "fast"));
    }

    #[test]
    fn missing_groups_are_reported_as_added_or_removed() {
        let baseline = vec![group("only_in_a", &[("x", 10.0)]), group("shared", &[])];
        let current = vec![group("shared", &[]), group("only_in_b", &[("y", 20.0)])];
        let d = diff(&baseline, &current);
        assert_eq!(d.removed_groups, vec!["only_in_a".to_string()]);
        assert_eq!(d.added_groups, vec!["only_in_b".to_string()]);
        assert_eq!(d.groups.len(), 1);
        let rendered = render(&d);
        assert!(rendered.contains("only_in_a: removed"));
        assert!(rendered.contains("only_in_b: added"));
    }

    #[test]
    fn benchmark_level_drift_is_tolerated_and_deltas_computed() {
        let baseline = vec![group("g", &[("kept", 100.0), ("dropped", 50.0)])];
        let current = vec![group("g", &[("kept", 150.0), ("new", 25.0)])];
        let d = diff(&baseline, &current);
        let g = &d.groups[0];
        assert_eq!(g.added, vec!["new".to_string()]);
        assert_eq!(g.removed, vec!["dropped".to_string()]);
        assert_eq!(g.benchmarks.len(), 1);
        assert!((g.benchmarks[0].relative_change() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn malformed_records_are_an_error_not_a_panic() {
        assert!(parse_group("{").is_err());
        assert!(parse_group(r#"{"group": "g"}"#).is_err());
        assert!(load_records(Path::new("/nonexistent/definitely-missing.json")).is_err());
    }

    #[test]
    fn directory_loads_skip_sidecar_artifacts() {
        let dir = std::env::temp_dir().join(format!("bench-diff-sidecar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let record = serde_json::to_string(&group("streams", &[("copy", 10.0)])).unwrap();
        std::fs::write(dir.join("streams.json"), record).unwrap();
        // A crossover-table sidecar: valid JSON, but not a bench group.
        std::fs::write(
            dir.join("crossover.json"),
            r#"{"schema": 1, "accumulators": 4, "kernels": []}"#,
        )
        .unwrap();

        let records = load_records(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].group, "streams");
    }
}
