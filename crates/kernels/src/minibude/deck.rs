//! Synthetic miniBUDE deck generation.
//!
//! The original bm1 deck ships as binary files (ligand atoms, protein atoms,
//! force-field parameters and 65,536 pose transforms). This module generates a
//! deck with the same dimensions and physically plausible ranges from a seeded
//! RNG, which preserves the kernel's arithmetic characteristics (the paper's
//! metric, Eq. (3), depends only on the deck's sizes, not its contents).

use super::config::MiniBudeConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One atom of the ligand or protein: position plus a force-field type index.
/// The paper notes Mojo lacked plain-old-data GPU allocations for exactly this
/// struct (3 × Float32 + 1 × Int), forcing the portable port to flatten it —
/// we mirror that flattening in the portable kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Position x (Å).
    pub x: f32,
    /// Position y (Å).
    pub y: f32,
    /// Position z (Å).
    pub z: f32,
    /// Index into the force-field parameter table.
    pub type_index: u32,
}

/// Per-type force-field parameters used by the energy function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForceFieldParam {
    /// Hard-sphere radius (Å).
    pub radius: f32,
    /// Hydrophobicity / hydrogen-bond strength.
    pub hphb: f32,
    /// Electrostatic charge.
    pub charge: f32,
}

/// A complete docking deck: molecules, force field and pose transforms.
#[derive(Debug, Clone)]
pub struct Deck {
    /// Ligand atoms.
    pub ligand: Vec<Atom>,
    /// Protein atoms.
    pub protein: Vec<Atom>,
    /// Force-field parameter table.
    pub forcefield: Vec<ForceFieldParam>,
    /// Six pose-transform arrays (three rotations, three translations), each
    /// of length `nposes`, mirroring `transforms_0 … transforms_5` in
    /// Listing 4.
    pub transforms: [Vec<f32>; 6],
}

/// Number of distinct force-field types in the synthetic deck.
pub const NUM_FF_TYPES: usize = 8;

impl Deck {
    /// Generates the deck for a configuration.
    pub fn generate(config: &MiniBudeConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let forcefield: Vec<ForceFieldParam> = (0..NUM_FF_TYPES)
            .map(|_| ForceFieldParam {
                radius: rng.gen_range(1.0..2.5),
                hphb: rng.gen_range(-1.0..1.0),
                charge: rng.gen_range(-0.5..0.5),
            })
            .collect();

        // Ligand atoms cluster near the origin; protein atoms fill a larger box.
        let ligand = (0..config.natlig)
            .map(|_| Atom {
                x: rng.gen_range(-4.0..4.0),
                y: rng.gen_range(-4.0..4.0),
                z: rng.gen_range(-4.0..4.0),
                type_index: rng.gen_range(0..NUM_FF_TYPES as u32),
            })
            .collect();
        let protein = (0..config.natpro)
            .map(|_| Atom {
                x: rng.gen_range(-24.0..24.0),
                y: rng.gen_range(-24.0..24.0),
                z: rng.gen_range(-24.0..24.0),
                type_index: rng.gen_range(0..NUM_FF_TYPES as u32),
            })
            .collect();

        // Rotations in [-π, π], translations within the protein box.
        let transforms = std::array::from_fn(|axis| {
            (0..config.nposes)
                .map(|_| {
                    if axis < 3 {
                        rng.gen_range(-std::f32::consts::PI..std::f32::consts::PI)
                    } else {
                        rng.gen_range(-10.0..10.0)
                    }
                })
                .collect()
        });

        Deck {
            ligand,
            protein,
            forcefield,
            transforms,
        }
    }

    /// The ligand flattened to 4 floats per atom (x, y, z, type-as-float),
    /// the workaround the paper describes for the missing plain-old-data
    /// support in Mojo's GPU allocations.
    pub fn ligand_flat(&self) -> Vec<f32> {
        Self::flatten(&self.ligand)
    }

    /// The protein flattened to 4 floats per atom.
    pub fn protein_flat(&self) -> Vec<f32> {
        Self::flatten(&self.protein)
    }

    /// The force field flattened to 3 floats per type (radius, hphb, charge).
    pub fn forcefield_flat(&self) -> Vec<f32> {
        self.forcefield
            .iter()
            .flat_map(|p| [p.radius, p.hphb, p.charge])
            .collect()
    }

    fn flatten(atoms: &[Atom]) -> Vec<f32> {
        atoms
            .iter()
            .flat_map(|a| [a.x, a.y, a.z, a.type_index as f32])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deck_has_the_configured_dimensions() {
        let config = MiniBudeConfig::paper(4, 64);
        let deck = Deck::generate(&config);
        assert_eq!(deck.ligand.len(), 26);
        assert_eq!(deck.protein.len(), 938);
        assert_eq!(deck.forcefield.len(), NUM_FF_TYPES);
        for t in &deck.transforms {
            assert_eq!(t.len(), 65_536);
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let config = MiniBudeConfig::validation(2, 8);
        let a = Deck::generate(&config);
        let b = Deck::generate(&config);
        assert_eq!(a.ligand, b.ligand);
        assert_eq!(a.protein, b.protein);
        assert_eq!(a.transforms[3], b.transforms[3]);

        let mut other = config;
        other.seed += 1;
        let c = Deck::generate(&other);
        assert_ne!(a.ligand, c.ligand);
    }

    #[test]
    fn flattening_uses_four_floats_per_atom() {
        let config = MiniBudeConfig::validation(2, 8);
        let deck = Deck::generate(&config);
        assert_eq!(deck.ligand_flat().len(), deck.ligand.len() * 4);
        assert_eq!(deck.protein_flat().len(), deck.protein.len() * 4);
        assert_eq!(deck.forcefield_flat().len(), NUM_FF_TYPES * 3);
        // Type indices survive the float round-trip.
        let flat = deck.ligand_flat();
        for (i, atom) in deck.ligand.iter().enumerate() {
            assert_eq!(flat[i * 4 + 3] as u32, atom.type_index);
        }
    }

    #[test]
    fn atom_values_are_in_plausible_ranges() {
        let config = MiniBudeConfig::paper(1, 8);
        let deck = Deck::generate(&config);
        for a in &deck.ligand {
            assert!(a.x.abs() <= 4.0 && a.y.abs() <= 4.0 && a.z.abs() <= 4.0);
            assert!((a.type_index as usize) < NUM_FF_TYPES);
        }
        for p in &deck.forcefield {
            assert!(p.radius >= 1.0 && p.radius <= 2.5);
        }
    }
}
