//! Process-wide size-classed buffer pool: the steady-state memory
//! architecture behind every hot path (DESIGN.md §11).
//!
//! PR 2's thread-local arena recycled per-block scratch only, and only on the
//! thread that first allocated it. This module generalises that discipline to
//! the whole process: backing storage for [`DeviceBuffer`] allocations, coop
//! block scratch, pooled host staging ([`PooledVec`]), and reusable report
//! rows all check raw blocks out of one global, size-classed shelf set and
//! return them on drop. Blocks are rounded up to power-of-two classes
//! (64 B minimum), so a steady workload re-requests the *same* classes on
//! every launch and — after warm-up — never touches the global allocator:
//! checkout pops a shelved block, recycle pushes it back into already-reserved
//! `Vec` capacity.
//!
//! Telemetry is first-class: every checkout is counted as a hit (served from
//! a shelf) or a miss (fresh `alloc`), with recycled vs fresh byte totals, the
//! current outstanding footprint, and its high-water mark. [`stats`] snapshots
//! the counters for the profiler, the bench JSON, and `mojo-hpc run
//! --verbose`.
//!
//! Panic safety: a [`PooledVec`] dropped during unwinding *frees* its block
//! instead of recycling it, so a panicking kernel cannot shelve storage whose
//! contents (or accounting) it may have left inconsistent.
//!
//! [`DeviceBuffer`]: crate::memory::DeviceBuffer

use serde::{Deserialize, Serialize};
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Smallest size class in bytes; requests below this round up to it.
pub const MIN_CLASS_BYTES: usize = 64;

/// Alignment of every pooled block. 16 bytes covers every scalar and SIMD
/// lane type the simulator stores ([`PooledVec`] enforces this bound on `T`).
pub const BLOCK_ALIGN: usize = 16;

/// Number of power-of-two size classes: 64 B × 2^0 .. 64 B × 2^26 (4 GiB).
const NUM_CLASSES: usize = 27;

/// Sentinel class index for blocks larger than the largest class; they are
/// allocated exactly and freed on recycle instead of shelved.
const OVERSIZE: usize = NUM_CLASSES;

/// Blocks retained per class; beyond this, recycle frees instead of shelving,
/// bounding idle pool memory at ~`Σ class_bytes × RETAIN_PER_CLASS`.
const RETAIN_PER_CLASS: usize = 32;

/// One shelf per size class. Const-initialised so the statics themselves
/// never allocate; each inner `Vec` grows only while the pool is warming up.
static SHELVES: [Mutex<Vec<Block>>; NUM_CLASSES] = [const { Mutex::new(Vec::new()) }; NUM_CLASSES];

static CHECKOUTS: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED_BYTES: AtomicU64 = AtomicU64::new(0);
static FRESH_BYTES: AtomicU64 = AtomicU64::new(0);
static OUTSTANDING_BYTES: AtomicU64 = AtomicU64::new(0);
static HIGH_WATER_BYTES: AtomicU64 = AtomicU64::new(0);

/// A raw 16-byte-aligned allocation owned by the pool machinery.
///
/// Crate-internal: [`PooledVec`] and `memory::BufferStorage` wrap it; other
/// crates interact with the pool only through those types and [`stats`].
pub(crate) struct Block {
    ptr: NonNull<u8>,
    /// Usable capacity: the full rounded class size (or the exact rounded
    /// request for oversize blocks).
    bytes: usize,
    /// Index into [`SHELVES`], or [`OVERSIZE`].
    class: usize,
}

// SAFETY: a Block is an exclusive handle to its allocation; nothing about the
// raw pointer is thread-affine.
unsafe impl Send for Block {}

impl Block {
    /// The start of the block's storage.
    pub(crate) fn as_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// Usable capacity in bytes (the rounded class size, not the request).
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    fn layout(&self) -> Layout {
        // SAFETY-adjacent: bytes/align were validated when the block was
        // first allocated.
        Layout::from_size_align(self.bytes, BLOCK_ALIGN).expect("pool block layout")
    }
}

/// Rounds a byte request up to its pool class size (minimum 64 B,
/// powers of two). Oversize requests round up to [`BLOCK_ALIGN`].
pub fn class_bytes(bytes: usize) -> usize {
    let (class, rounded) = classify(bytes);
    if class == OVERSIZE {
        rounded
    } else {
        MIN_CLASS_BYTES << class
    }
}

/// Maps a request to `(class index, rounded byte size)`.
fn classify(bytes: usize) -> (usize, usize) {
    let wanted = bytes.max(MIN_CLASS_BYTES).next_power_of_two();
    let class = (wanted / MIN_CLASS_BYTES).trailing_zeros() as usize;
    if class < NUM_CLASSES {
        (class, wanted)
    } else {
        // Larger than the largest shelf: exact allocation, align-rounded.
        let rounded = bytes.div_ceil(BLOCK_ALIGN) * BLOCK_ALIGN;
        (OVERSIZE, rounded)
    }
}

/// Raises the high-water mark to at least `current`.
fn raise_high_water(current: u64) {
    let mut peak = HIGH_WATER_BYTES.load(Ordering::Relaxed);
    while current > peak {
        match HIGH_WATER_BYTES.compare_exchange_weak(
            peak,
            current,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(now) => peak = now,
        }
    }
}

/// Checks a block of at least `bytes` bytes out of the pool.
///
/// Warm path: pops a shelved block of the same class — no allocator traffic.
/// Cold path: `alloc`s a fresh block of the full class size. `bytes` must be
/// non-zero.
pub(crate) fn checkout(bytes: usize) -> Block {
    assert!(bytes > 0, "pool checkout of zero bytes");
    let (class, rounded) = classify(bytes);
    CHECKOUTS.fetch_add(1, Ordering::Relaxed);

    if class != OVERSIZE {
        let shelved = SHELVES[class]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop();
        if let Some(block) = shelved {
            HITS.fetch_add(1, Ordering::Relaxed);
            RECYCLED_BYTES.fetch_add(block.bytes as u64, Ordering::Relaxed);
            let now = OUTSTANDING_BYTES.fetch_add(block.bytes as u64, Ordering::Relaxed)
                + block.bytes as u64;
            raise_high_water(now);
            return block;
        }
    }

    MISSES.fetch_add(1, Ordering::Relaxed);
    FRESH_BYTES.fetch_add(rounded as u64, Ordering::Relaxed);
    let now = OUTSTANDING_BYTES.fetch_add(rounded as u64, Ordering::Relaxed) + rounded as u64;
    raise_high_water(now);

    let layout = Layout::from_size_align(rounded, BLOCK_ALIGN).expect("pool block layout");
    // SAFETY: `rounded` is non-zero (>= MIN_CLASS_BYTES or align-rounded up
    // from a non-zero request).
    let raw = unsafe { alloc(layout) };
    let Some(ptr) = NonNull::new(raw) else {
        handle_alloc_error(layout)
    };
    Block {
        ptr,
        bytes: rounded,
        class,
    }
}

/// Returns a block to its class shelf (or frees it: oversize blocks and
/// blocks beyond the per-class retention cap are deallocated).
pub(crate) fn recycle(block: Block) {
    OUTSTANDING_BYTES.fetch_sub(block.bytes as u64, Ordering::Relaxed);
    if block.class != OVERSIZE {
        let mut shelf = SHELVES[block.class]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if shelf.len() < RETAIN_PER_CLASS {
            shelf.push(block);
            return;
        }
    }
    free(block);
}

/// Deallocates a block without shelving it (oversize, over-retention, or
/// panic-path returns). Outstanding accounting must already be settled by the
/// caller ([`recycle`]) — [`discard`] settles it itself.
fn free(block: Block) {
    let layout = block.layout();
    // SAFETY: ptr/layout come from the matching `alloc` in `checkout`.
    unsafe { dealloc(block.ptr.as_ptr(), layout) };
}

/// Frees a checked-out block *without* recycling it — the panic-safety path:
/// storage whose contents may be inconsistent is dropped, not shelved.
pub(crate) fn discard(block: Block) {
    OUTSTANDING_BYTES.fetch_sub(block.bytes as u64, Ordering::Relaxed);
    free(block);
}

/// Frees every shelved block, returning idle pool memory to the allocator.
/// Outstanding blocks are unaffected. Mainly for tests and teardown.
pub fn trim() {
    for shelf in &SHELVES {
        let drained: Vec<Block> = {
            let mut shelf = shelf.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *shelf)
        };
        for block in drained {
            free(block);
        }
    }
}

/// A snapshot of the pool counters (DESIGN.md §11 telemetry schema).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Total blocks checked out since process start (or [`reset_stats`]).
    pub checkouts: u64,
    /// Checkouts served by popping a shelved block (no allocator traffic).
    pub hits: u64,
    /// Checkouts that had to allocate a fresh block.
    pub misses: u64,
    /// Cumulative bytes served from shelves.
    pub recycled_bytes: u64,
    /// Cumulative bytes served by fresh allocations.
    pub fresh_bytes: u64,
    /// Bytes currently checked out of the pool.
    pub outstanding_bytes: u64,
    /// Peak of [`outstanding_bytes`](Self::outstanding_bytes).
    pub high_water_bytes: u64,
}

impl PoolStats {
    /// Fraction of checkouts served from shelves (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        if self.checkouts == 0 {
            0.0
        } else {
            self.hits as f64 / self.checkouts as f64
        }
    }

    /// Counter-wise difference `self - earlier` for the monotonic counters;
    /// the gauges (`outstanding_bytes`, `high_water_bytes`) keep `self`'s
    /// values. Used to attribute pool traffic to one bench iteration.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            checkouts: self.checkouts.saturating_sub(earlier.checkouts),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            recycled_bytes: self.recycled_bytes.saturating_sub(earlier.recycled_bytes),
            fresh_bytes: self.fresh_bytes.saturating_sub(earlier.fresh_bytes),
            outstanding_bytes: self.outstanding_bytes,
            high_water_bytes: self.high_water_bytes,
        }
    }
}

/// Snapshots the global pool counters.
pub fn stats() -> PoolStats {
    PoolStats {
        checkouts: CHECKOUTS.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled_bytes: RECYCLED_BYTES.load(Ordering::Relaxed),
        fresh_bytes: FRESH_BYTES.load(Ordering::Relaxed),
        outstanding_bytes: OUTSTANDING_BYTES.load(Ordering::Relaxed),
        high_water_bytes: HIGH_WATER_BYTES.load(Ordering::Relaxed),
    }
}

/// Zeroes the cumulative counters and re-bases the high-water mark at the
/// current outstanding footprint. For tests and bench warm-up boundaries.
pub fn reset_stats() {
    CHECKOUTS.store(0, Ordering::Relaxed);
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    RECYCLED_BYTES.store(0, Ordering::Relaxed);
    FRESH_BYTES.store(0, Ordering::Relaxed);
    HIGH_WATER_BYTES.store(OUTSTANDING_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// A growable array over pooled storage: the `Vec<T>` of the steady-state
/// architecture.
///
/// Capacity always occupies one pool block, so growth is geometric by size
/// class and a dropped `PooledVec` returns its block for the next checkout of
/// the same class. After warm-up, fill/clear/refill cycles at a stable size
/// touch the global allocator zero times.
///
/// `T` may be any type whose alignment is at most [`BLOCK_ALIGN`] (asserted
/// on first growth); elements are dropped in place like `Vec`'s.
pub struct PooledVec<T> {
    ptr: NonNull<T>,
    len: usize,
    cap: usize,
    block: Option<Block>,
    _marker: PhantomData<T>,
}

// SAFETY: PooledVec owns its elements and block exclusively, like Vec<T>.
unsafe impl<T: Send> Send for PooledVec<T> {}
// SAFETY: shared access only reads through &[T].
unsafe impl<T: Sync> Sync for PooledVec<T> {}

impl<T> PooledVec<T> {
    /// Creates an empty vector without checking out a block.
    pub const fn new() -> Self {
        PooledVec {
            ptr: NonNull::dangling(),
            len: 0,
            cap: if std::mem::size_of::<T>() == 0 {
                usize::MAX
            } else {
                0
            },
            block: None,
            _marker: PhantomData,
        }
    }

    /// Creates an empty vector holding a block for at least `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        let mut v = Self::new();
        v.reserve(cap);
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element capacity of the held block.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Ensures room for at least `additional` more elements, growing to the
    /// next size class if needed.
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.len.checked_add(additional).expect("capacity overflow");
        if needed > self.cap {
            self.grow_to(needed);
        }
    }

    /// Replaces the current block with one of at least `needed` elements,
    /// moving the live prefix over.
    fn grow_to(&mut self, needed: usize) {
        let elem = std::mem::size_of::<T>();
        debug_assert!(elem > 0, "ZST PooledVec never grows");
        assert!(
            std::mem::align_of::<T>() <= BLOCK_ALIGN,
            "PooledVec element alignment exceeds the pool block alignment"
        );
        let bytes = needed.checked_mul(elem).expect("capacity overflow");
        let block = checkout(bytes);
        let new_ptr = block.as_ptr().cast::<T>();
        // SAFETY: both regions are valid for `len` elements, disjoint (fresh
        // block), and correctly aligned (BLOCK_ALIGN >= align_of::<T>()).
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), new_ptr, self.len);
        }
        let old = self.block.take();
        self.cap = block.bytes() / elem;
        // SAFETY: `alloc` never returns null through `checkout`.
        self.ptr = unsafe { NonNull::new_unchecked(new_ptr) };
        self.block = Some(block);
        if let Some(old) = old {
            recycle(old);
        }
    }

    /// Appends `value`.
    pub fn push(&mut self, value: T) {
        if self.len == self.cap {
            self.grow_to(self.cap.max(1) + 1);
        }
        // SAFETY: len < cap, so the slot is in bounds and uninitialised.
        unsafe {
            std::ptr::write(self.ptr.as_ptr().add(self.len), value);
        }
        self.len += 1;
    }

    /// Shortens to `len` elements, dropping the tail. No-op if already
    /// shorter.
    pub fn truncate(&mut self, len: usize) {
        while self.len > len {
            self.len -= 1;
            // SAFETY: the element at `self.len` was initialised and is now
            // out of the live prefix.
            unsafe {
                std::ptr::drop_in_place(self.ptr.as_ptr().add(self.len));
            }
        }
    }

    /// Drops every element, keeping the block for reuse.
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: the first `len` elements are initialised.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: the first `len` elements are initialised and exclusively
        // borrowed.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Resizes to `new_len`, filling new slots with `f()`.
    pub fn resize_with(&mut self, new_len: usize, mut f: impl FnMut() -> T) {
        if new_len <= self.len {
            self.truncate(new_len);
            return;
        }
        self.reserve(new_len - self.len);
        while self.len < new_len {
            // SAFETY: len < cap after the reserve above.
            unsafe {
                std::ptr::write(self.ptr.as_ptr().add(self.len), f());
            }
            self.len += 1;
        }
    }
}

impl<T: Clone> PooledVec<T> {
    /// Resizes to `new_len`, filling new slots with clones of `value`.
    pub fn resize(&mut self, new_len: usize, value: T) {
        self.resize_with(new_len, || value.clone());
    }

    /// Appends clones of every element of `other`.
    pub fn extend_from_slice(&mut self, other: &[T]) {
        self.reserve(other.len());
        for value in other {
            // SAFETY: reserve guaranteed room for other.len() more writes.
            unsafe {
                std::ptr::write(self.ptr.as_ptr().add(self.len), value.clone());
            }
            self.len += 1;
        }
    }
}

impl<T> Drop for PooledVec<T> {
    fn drop(&mut self) {
        self.clear();
        if let Some(block) = self.block.take() {
            if std::thread::panicking() {
                // Unwinding: drop the block rather than shelving storage the
                // panicking code may have left inconsistent.
                discard(block);
            } else {
                recycle(block);
            }
        }
    }
}

impl<T> Default for PooledVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::ops::Deref for PooledVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> std::ops::DerefMut for PooledVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Clone> Clone for PooledVec<T> {
    fn clone(&self) -> Self {
        let mut out = PooledVec::with_capacity(self.len);
        out.extend_from_slice(self);
        out
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for PooledVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: PartialEq> PartialEq for PooledVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq> PartialEq<[T]> for PooledVec<T> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: PartialEq> PartialEq<Vec<T>> for PooledVec<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for PooledVec<T> {}

impl<T: Clone> From<&[T]> for PooledVec<T> {
    fn from(slice: &[T]) -> Self {
        let mut out = PooledVec::with_capacity(slice.len());
        out.extend_from_slice(slice);
        out
    }
}

impl<T> FromIterator<T> for PooledVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut out = PooledVec::with_capacity(iter.size_hint().0);
        for value in iter {
            out.push(value);
        }
        out
    }
}

impl<'a, T> IntoIterator for &'a PooledVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Serialize> Serialize for PooledVec<T> {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for PooledVec<T> {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::Error> {
        match v {
            serde::value::Value::Array(items) => {
                let mut out = PooledVec::with_capacity(items.len());
                for item in items {
                    out.push(T::from_value(item)?);
                }
                Ok(out)
            }
            other => Err(serde::value::Error::new(format!(
                "expected array, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_rounding_is_power_of_two_with_a_floor() {
        assert_eq!(class_bytes(1), 64);
        assert_eq!(class_bytes(64), 64);
        assert_eq!(class_bytes(65), 128);
        assert_eq!(class_bytes(1000), 1024);
        assert_eq!(class_bytes(1024), 1024);
        assert_eq!(class_bytes(1 << 20), 1 << 20);
        assert_eq!(class_bytes((1 << 20) + 1), 1 << 21);
    }

    #[test]
    fn oversize_requests_round_to_alignment_only() {
        let huge = (MIN_CLASS_BYTES << (NUM_CLASSES - 1)) + 1;
        let rounded = class_bytes(huge);
        assert!(rounded >= huge);
        assert_eq!(rounded % BLOCK_ALIGN, 0);
        assert!(rounded < huge + BLOCK_ALIGN);
    }

    /// A size class distinctive enough that concurrently running tests from
    /// other modules do not plausibly touch its shelf.
    const QUIET_CLASS: usize = 3 << 20; // rounds to 4 MiB

    #[test]
    fn recycle_then_checkout_reuses_the_same_block() {
        // Pointer identity rather than global counters: other tests in this
        // process mutate the shared stats concurrently, but nothing else
        // touches this distinctive class.
        let block = checkout(QUIET_CLASS);
        let bytes = block.bytes();
        let ptr = block.as_ptr() as usize;
        assert_eq!(bytes, class_bytes(QUIET_CLASS));
        recycle(block);

        let again = checkout(QUIET_CLASS);
        assert_eq!(again.bytes(), bytes);
        assert_eq!(
            again.as_ptr() as usize,
            ptr,
            "warm checkout must pop the shelved block"
        );
        recycle(again);
    }

    #[test]
    fn outstanding_stays_below_the_high_water_mark() {
        // Monotonic invariants only: the counters are process-global and
        // other tests mutate them concurrently. The strict zero-allocation
        // assertions live in the serial `alloc_steady_state` binary.
        let a = checkout(128);
        let b = checkout(4096);
        let during = stats();
        assert!(during.high_water_bytes >= during.outstanding_bytes);
        recycle(a);
        recycle(b);
    }

    #[test]
    fn pooled_vec_behaves_like_vec() {
        let mut v: PooledVec<u64> = PooledVec::new();
        assert!(v.is_empty());
        for i in 0..1000u64 {
            v.push(i * 3);
        }
        assert_eq!(v.len(), 1000);
        assert_eq!(v[999], 2997);
        assert_eq!(&v[..4], &[0, 3, 6, 9]);
        v.truncate(10);
        assert_eq!(v.len(), 10);
        v.clear();
        assert!(v.is_empty());
        assert!(v.capacity() >= 1000, "clear keeps the block");
        v.extend_from_slice(&[7, 8, 9]);
        assert_eq!(v.as_slice(), &[7, 8, 9]);
        v.resize(5, 1);
        assert_eq!(v.as_slice(), &[7, 8, 9, 1, 1]);
        let w = v.clone();
        assert_eq!(v, w);
    }

    #[test]
    fn pooled_vec_steady_state_reuses_one_block() {
        // A size class no other test in this binary uses, so the shelf we
        // observe is ours alone.
        const N: usize = 48_000; // 375 KiB of f64 → 512 KiB class
        let mut v: PooledVec<f64> = PooledVec::new();
        v.resize(N, 0.0);
        let cap = v.capacity();
        let ptr = v.as_slice().as_ptr() as usize;
        drop(v);

        // Steady state: drop + refill at the same size pops the same block.
        for round in 0..5 {
            let mut v: PooledVec<f64> = PooledVec::with_capacity(N);
            v.resize(N, round as f64);
            assert_eq!(v.capacity(), cap);
            assert_eq!(
                v.as_slice().as_ptr() as usize,
                ptr,
                "steady-state refills must reuse the shelved block"
            );
            assert_eq!(v[N - 1], round as f64);
        }
    }

    #[test]
    fn pooled_vec_drops_its_elements() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        DROPS.store(0, Ordering::Relaxed);
        let mut v: PooledVec<Counted> = PooledVec::new();
        for _ in 0..10 {
            v.push(Counted);
        }
        v.truncate(6);
        assert_eq!(DROPS.load(Ordering::Relaxed), 4);
        drop(v);
        assert_eq!(DROPS.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_sized_elements_never_touch_the_pool() {
        let mut v: PooledVec<()> = PooledVec::new();
        assert_eq!(v.capacity(), usize::MAX, "ZSTs start at infinite capacity");
        for _ in 0..100 {
            v.push(());
        }
        assert_eq!(v.len(), 100);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn panic_unwind_discards_instead_of_recycling() {
        // Use a distinctive class so the shelf observation is not confounded
        // by concurrent tests.
        const PANIC_CLASS: usize = 5 << 20; // rounds to 8 MiB
        let shelf_len = |class_request: usize| {
            let (class, _) = classify(class_request);
            SHELVES[class]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        };
        let shelved_before = shelf_len(PANIC_CLASS);
        let result = std::panic::catch_unwind(|| {
            let mut v: PooledVec<u8> = PooledVec::new();
            v.resize(PANIC_CLASS, 0);
            panic!("kernel panicked while holding pooled storage");
        });
        assert!(result.is_err());
        assert_eq!(
            shelf_len(PANIC_CLASS),
            shelved_before,
            "a panicking holder must not shelve its block"
        );
    }

    #[test]
    fn concurrent_checkout_hands_out_distinct_blocks() {
        use std::collections::HashSet;
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    let mut seen = Vec::new();
                    let mut held = Vec::new();
                    for _ in 0..64 {
                        let block = checkout(1024);
                        seen.push(block.as_ptr() as usize);
                        held.push(block);
                    }
                    for block in held {
                        recycle(block);
                    }
                    seen
                })
            })
            .collect();
        // Within each thread all 64 simultaneously-held blocks must be
        // distinct allocations.
        for handle in handles {
            let seen = handle.join().expect("checkout thread panicked");
            let unique: HashSet<usize> = seen.iter().copied().collect();
            assert_eq!(unique.len(), seen.len());
        }
    }

    #[test]
    fn trim_empties_the_shelves() {
        let block = checkout(QUIET_CLASS);
        recycle(block);
        trim();
        let (class, _) = classify(QUIET_CLASS);
        assert!(SHELVES[class]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty());
    }

    #[test]
    fn stats_snapshot_serialises() {
        let snapshot = stats();
        let value = snapshot.to_value();
        let back = PoolStats::from_value(&value).expect("roundtrip");
        assert_eq!(back.checkouts, snapshot.checkouts);
    }
}
