//! Lane-parity suite (DESIGN.md §14).
//!
//! The SIMD fast lane may reassociate reductions, but never beyond each
//! kernel's documented tolerance — and the deterministic lane must stay
//! byte-identical to the goldens no matter which lane flags or thread counts
//! are in play. Three layers are pinned here:
//!
//! 1. every registered lane kernel agrees between lanes at every ladder size
//!    (bitwise where the tolerance is 0.0);
//! 2. every workload runs identically under the default policy and an
//!    explicit `--lane deterministic`, and still verifies under `simd` and
//!    `auto`;
//! 3. the real binary emits byte-identical output for `--lane deterministic`
//!    across thread counts, and exits clean on the other lanes.

use science_kernels::simd::{lane_kernels, Lane, LanePolicy};
use science_kernels::workload;
use std::process::{Command, Output};

fn mojo_hpc(args: &[&str], threads: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mojo-hpc"))
        .args(args)
        .env("RAYON_NUM_THREADS", threads)
        .output()
        .expect("run mojo-hpc")
}

#[test]
fn lane_kernels_agree_within_their_documented_tolerances() {
    for kernel in lane_kernels() {
        for &size in kernel.sizes {
            let deterministic = (kernel.run)(Lane::Deterministic, size);
            let simd = (kernel.run)(Lane::Simd, size);
            if kernel.tolerance == 0.0 {
                assert_eq!(
                    deterministic.to_bits(),
                    simd.to_bits(),
                    "{} (size {size}): lanes must be bitwise identical, got {} vs {}",
                    kernel.name,
                    deterministic,
                    simd
                );
            } else {
                let rel = (deterministic - simd).abs() / deterministic.abs().max(1.0);
                assert!(
                    rel <= kernel.tolerance,
                    "{} (size {size}): relative lane divergence {rel:.3e} exceeds the \
                     documented {:.1e} (deterministic {deterministic} vs simd {simd})",
                    kernel.name,
                    kernel.tolerance
                );
            }
        }
    }
}

#[test]
fn workloads_run_identically_on_the_deterministic_lane_and_verify_on_the_rest() {
    for engine in workload::all() {
        let params = engine.default_params();
        let base = engine.run(&params).expect("default-policy run succeeds");
        let deterministic = engine
            .run_lane(&params, LanePolicy::Deterministic)
            .expect("deterministic-lane run succeeds");
        assert_eq!(
            base.measurements.as_slice(),
            deterministic.measurements.as_slice(),
            "{}: explicit --lane deterministic must reproduce the default rows",
            engine.name()
        );
        for policy in [LanePolicy::Simd, LanePolicy::Auto] {
            let lane = engine
                .run_lane(&params, policy)
                .expect("non-default lane run succeeds");
            assert_eq!(
                lane.measurements.len(),
                deterministic.measurements.len(),
                "{} ({policy}): lane changes the measurement shape",
                engine.name()
            );
            for (base_row, lane_row) in deterministic
                .measurements
                .iter()
                .zip(lane.measurements.iter())
            {
                assert_eq!(base_row.kernel, lane_row.kernel);
                // The verification class (passed/skipped) must not change
                // with the lane; the max-error detail inside may.
                assert_eq!(
                    base_row.verification.as_str().split('(').next(),
                    lane_row.verification.as_str().split('(').next(),
                    "{} ({policy}, kernel {}): lane changed the verification outcome",
                    engine.name(),
                    base_row.kernel
                );
            }
        }
    }
}

#[test]
fn composite_workloads_hold_their_documented_lane_tolerances() {
    use science_kernels::framestream::{accumulate_frames, ACC_INIT};
    use science_kernels::jacobi::{solve_host, JacobiConfig};

    // Jacobi: the sweeps are bitwise-identical on both lanes (same
    // expression, only unrolled), the convergence decision must not move,
    // and each iteration's reassociated norm stays within 1e-12 relative.
    let config = JacobiConfig::validation(12, 200);
    let det = solve_host(&config, Lane::Deterministic);
    let simd = solve_host(&config, Lane::Simd);
    assert_eq!(
        det.iters_run, simd.iters_run,
        "jacobi: the SIMD lane changed the convergence point"
    );
    assert_eq!(
        det.grid.as_slice(),
        simd.grid.as_slice(),
        "jacobi: lanes must produce bitwise-identical grids"
    );
    for (i, (a, b)) in det.residuals.iter().zip(simd.residuals.iter()).enumerate() {
        let rel = (a - b).abs() / a.abs().max(1e-300);
        assert!(
            rel <= 1e-12,
            "jacobi: residual {i} diverged between lanes by relative {rel:.3e}"
        );
    }

    // Framestream: the element-wise EMA fold cannot reassociate, so the
    // lanes are bitwise-identical (documented 0.0 tolerance).
    let mut det_acc = vec![ACC_INIT; 10_000];
    let mut simd_acc = vec![ACC_INIT; 10_000];
    accumulate_frames(&mut det_acc, 0..64, Lane::Deterministic);
    accumulate_frames(&mut simd_acc, 0..64, Lane::Simd);
    assert_eq!(
        det_acc, simd_acc,
        "framestream: lanes must produce bitwise-identical accumulators"
    );
}

#[test]
fn composite_cli_sweeps_are_byte_identical_across_thread_counts() {
    for (workload, sizes) in [("jacobi", "8,12"), ("framestream", "4096,16384")] {
        let base = mojo_hpc(&["sweep", workload, "--sizes", sizes], "1");
        assert_eq!(base.status.code(), Some(0), "sweep {workload} failed");
        for threads in ["1", "4"] {
            let lane = mojo_hpc(
                &[
                    "sweep",
                    workload,
                    "--sizes",
                    sizes,
                    "--lane",
                    "deterministic",
                ],
                threads,
            );
            assert_eq!(lane.status.code(), Some(0));
            assert_eq!(
                base.stdout, lane.stdout,
                "{workload}: --lane deterministic at {threads} thread(s) moved bytes"
            );
        }
        for lane in ["simd", "auto"] {
            let output = mojo_hpc(&["sweep", workload, "--sizes", sizes, "--lane", lane], "2");
            assert_eq!(
                output.status.code(),
                Some(0),
                "sweep {workload} --lane {lane} failed: {}",
                String::from_utf8_lossy(&output.stderr)
            );
        }
    }
}

#[test]
fn cli_lane_deterministic_is_byte_identical_across_thread_counts() {
    // One bandwidth experiment (fig4: BabelStream, includes the Dot
    // reduction) and one reduction-heavy experiment (table4: Hartree–Fock).
    for experiment in ["fig4", "table4"] {
        let base = mojo_hpc(&["run", experiment], "1");
        assert_eq!(base.status.code(), Some(0), "run {experiment} failed");
        for threads in ["1", "4"] {
            let lane = mojo_hpc(&["run", experiment, "--lane", "deterministic"], threads);
            assert_eq!(
                lane.status.code(),
                Some(0),
                "run {experiment} --lane deterministic failed at {threads} thread(s)"
            );
            assert_eq!(
                base.stdout, lane.stdout,
                "{experiment}: --lane deterministic at {threads} thread(s) \
                 moved bytes relative to the default run"
            );
        }
    }
}

#[test]
fn cli_simd_and_auto_lanes_run_clean() {
    for lane in ["simd", "auto"] {
        let output = mojo_hpc(&["run", "fig4", "--lane", lane], "1");
        assert_eq!(
            output.status.code(),
            Some(0),
            "run fig4 --lane {lane} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
}
