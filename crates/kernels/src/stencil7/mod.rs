//! Seven-point stencil (Laplacian) workload — paper Listing 2, Figure 3,
//! Table 2.
//!
//! The kernel applies the standard seven-point Laplacian to a cubic grid of
//! side `L`: every interior cell reads itself and its six face neighbours and
//! writes one output cell. It is the paper's canonical memory-bandwidth-bound
//! workload; its figure of merit is the effective bandwidth of Eq. (1).

mod config;
mod cost;
mod portable;
mod reference;
mod vendor;
pub mod workload;

pub use config::{functional_limit, StencilConfig, MAX_FUNCTIONAL_L, MAX_FUNCTIONAL_L_FP32};
pub use cost::stencil_cost;
pub use portable::{run_portable, run_portable_lane};
pub use reference::{initialize_grid, reference_laplacian};
pub use vendor::run_vendor;

use crate::common::WorkloadRun;
use crate::simd::{self, LanePolicy};
use gpu_sim::SimError;
use vendor_models::Platform;

/// Runs the stencil workload on a platform, dispatching to the portable or
/// vendor implementation according to the platform's backend, under the
/// process-wide lane policy.
pub fn run(platform: &Platform, config: &StencilConfig) -> Result<WorkloadRun, SimError> {
    run_lane(platform, config, simd::process_policy())
}

/// Runs the stencil workload under an explicit lane policy. The vendor
/// baselines have no host fast lane and ignore the policy.
pub fn run_lane(
    platform: &Platform,
    config: &StencilConfig,
    policy: LanePolicy,
) -> Result<WorkloadRun, SimError> {
    if platform.backend.is_portable() {
        run_portable_lane(platform, config, policy)
    } else {
        run_vendor(platform, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;
    use vendor_models::Backend;

    #[test]
    fn portable_and_vendor_paths_both_run_and_verify() {
        let config = StencilConfig::validation(24, Precision::Fp64);
        for platform in [
            Platform::portable_h100(),
            Platform::cuda_h100(false),
            Platform::portable_mi300a(),
            Platform::hip_mi300a(false),
        ] {
            let run = run(&platform, &config).unwrap();
            assert!(
                run.verification.is_verified(),
                "{} should verify",
                platform.label()
            );
            assert!(run.seconds() > 0.0);
        }
    }

    #[test]
    fn portable_is_slower_than_cuda_on_h100_and_matches_hip_on_mi300a() {
        // The headline result of Fig. 3: ~87 % of CUDA on the H100, parity
        // with HIP on the MI300A.
        let config = StencilConfig::paper(512, Precision::Fp64);
        let mojo_h100 = run(&Platform::portable_h100(), &config).unwrap();
        let cuda = run(&Platform::cuda_h100(false), &config).unwrap();
        let ratio = cuda.seconds() / mojo_h100.seconds();
        assert!(
            (ratio - 0.87).abs() < 0.03,
            "Mojo/CUDA bandwidth ratio should be ≈0.87, got {ratio}"
        );

        let mojo_mi = run(&Platform::portable_mi300a(), &config).unwrap();
        let hip = run(&Platform::hip_mi300a(false), &config).unwrap();
        let parity = hip.seconds() / mojo_mi.seconds();
        assert!(
            (parity - 1.0).abs() < 0.01,
            "Mojo/HIP should be at parity, got {parity}"
        );
    }

    #[test]
    fn fast_math_flag_does_not_change_a_memory_bound_kernel() {
        let config = StencilConfig::paper(512, Precision::Fp32);
        let plain = run(&Platform::cuda_h100(false), &config).unwrap();
        let ff = run(&Platform::cuda_h100(true), &config).unwrap();
        assert!((plain.seconds() - ff.seconds()).abs() / plain.seconds() < 1e-9);
    }

    #[test]
    fn backend_labels_flow_through() {
        let config = StencilConfig::validation(16, Precision::Fp32);
        let run = run(
            &Platform::new(gpu_spec::presets::mi300a(), Backend::HIP).unwrap(),
            &config,
        )
        .unwrap();
        assert_eq!(run.backend, "HIP");
        assert!(run.device.contains("MI300A"));
    }
}
