//! BabelStream workload — paper Listing 3, Figure 4, Table 3, Figure 5.
//!
//! Five memory-bandwidth-bound array kernels: Copy, Mul, Add, Triad and Dot.
//! The first four are trivially parallel one-element-per-thread kernels; Dot
//! performs a block-level shared-memory tree reduction followed by a host-side
//! sum of the per-block partials, exactly as in the paper's Listing 3.
//! The figure of merit is the effective bandwidth of Eq. (2).

mod config;
mod cost;
mod portable;
mod reference;
mod vendor;
pub mod workload;

pub use config::{BabelStreamConfig, INIT_A, INIT_B, INIT_C, PAPER_VECTOR_SIZE, SCALAR};
pub use cost::stream_cost;
pub use portable::{lane_kernel_key, run_portable, run_portable_lane};
pub use reference::{expected_values, output_array};
pub use vendor::run_vendor;

use crate::common::WorkloadRun;
use crate::simd::{self, LanePolicy};
use gpu_sim::SimError;
use vendor_models::kernel_class::StreamOp;
use vendor_models::Platform;

/// Runs one BabelStream operation on a platform, dispatching to the portable
/// or vendor implementation according to the backend, under the process-wide
/// lane policy.
pub fn run(
    platform: &Platform,
    op: StreamOp,
    config: &BabelStreamConfig,
) -> Result<WorkloadRun, SimError> {
    run_lane(platform, op, config, simd::process_policy())
}

/// Runs one BabelStream operation under an explicit lane policy. The vendor
/// baselines have no host fast lane and ignore the policy.
pub fn run_lane(
    platform: &Platform,
    op: StreamOp,
    config: &BabelStreamConfig,
    policy: LanePolicy,
) -> Result<WorkloadRun, SimError> {
    if platform.backend.is_portable() {
        run_portable_lane(platform, op, config, policy)
    } else {
        run_vendor(platform, op, config)
    }
}

/// Runs all five operations in presentation order.
pub fn run_all(
    platform: &Platform,
    config: &BabelStreamConfig,
) -> Result<Vec<WorkloadRun>, SimError> {
    StreamOp::ALL
        .iter()
        .map(|&op| run(platform, op, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;

    #[test]
    fn all_ops_verify_on_all_platforms() {
        let config = BabelStreamConfig::validation(1 << 14, Precision::Fp64);
        for platform in Platform::paper_platforms() {
            for run_result in run_all(&platform, &config).unwrap() {
                assert!(
                    run_result.verification.is_verified(),
                    "{} {} should verify",
                    platform.label(),
                    run_result.kernel
                );
            }
        }
    }

    #[test]
    fn mojo_beats_cuda_everywhere_except_dot() {
        // Fig. 4a / Table 3: Mojo is slightly faster than CUDA for Copy, Mul,
        // Add and Triad and clearly slower for Dot.
        let config = BabelStreamConfig::paper(Precision::Fp64);
        for op in StreamOp::ALL {
            let mojo = run(&Platform::portable_h100(), op, &config).unwrap();
            let cuda = run(&Platform::cuda_h100(false), op, &config).unwrap();
            let ratio = cuda.seconds() / mojo.seconds();
            if op == StreamOp::Dot {
                assert!(ratio < 0.85, "Dot: Mojo should lag CUDA, ratio {ratio}");
            } else {
                assert!(
                    ratio >= 0.999,
                    "{op}: Mojo should not lag CUDA, ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn mojo_matches_hip_on_mi300a() {
        let config = BabelStreamConfig::paper(Precision::Fp64);
        for op in StreamOp::ALL {
            let mojo = run(&Platform::portable_mi300a(), op, &config).unwrap();
            let hip = run(&Platform::hip_mi300a(false), op, &config).unwrap();
            let ratio = hip.seconds() / mojo.seconds();
            assert!(
                (ratio - 1.0).abs() < 0.02,
                "{op}: Mojo and HIP should match on MI300A, ratio {ratio}"
            );
        }
    }

    #[test]
    fn copy_duration_matches_table3() {
        // Table 3: Mojo Copy 0.202 ms, CUDA Copy 0.205 ms at n = 2^25 FP64.
        let config = BabelStreamConfig::paper(Precision::Fp64);
        let mojo = run(&Platform::portable_h100(), StreamOp::Copy, &config).unwrap();
        let cuda = run(&Platform::cuda_h100(false), StreamOp::Copy, &config).unwrap();
        assert!(
            (mojo.millis() - 0.202).abs() < 0.03,
            "Mojo copy {} ms",
            mojo.millis()
        );
        assert!(
            (cuda.millis() - 0.205).abs() < 0.03,
            "CUDA copy {} ms",
            cuda.millis()
        );
    }
}
