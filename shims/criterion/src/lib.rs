//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the bench targets use (`Criterion::default()`,
//! `sample_size`, `configure_from_args`, `benchmark_group`, `bench_function`,
//! `Bencher::iter`, `final_summary`) as a simple wall-clock harness: each
//! benchmark closure runs `sample_size` times and the mean/min are printed.
//! Passing `--test` (as `cargo test --benches` does) runs each benchmark once.

use std::time::Instant;

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Applies command-line configuration (only `--test` is recognised).
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.test_mode = true;
        }
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Prints the closing summary.
    pub fn final_summary(&self) {
        println!("criterion(shim): benchmarks complete");
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        let mut bencher = Bencher {
            samples,
            total_ns: 0,
            min_ns: u128::MAX,
            iterations: 0,
        };
        f(&mut bencher);
        if bencher.iterations > 0 {
            let mean = bencher.total_ns as f64 / bencher.iterations as f64;
            println!(
                "{}/{}: mean {:.3} ms, min {:.3} ms ({} iterations)",
                self.name,
                id,
                mean / 1e6,
                bencher.min_ns as f64 / 1e6,
                bencher.iterations
            );
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under measurement.
pub struct Bencher {
    samples: usize,
    total_ns: u128,
    min_ns: u128,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` `sample_size` times, recording wall-clock durations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed().as_nanos();
            self.total_ns += elapsed;
            self.min_ns = self.min_ns.min(elapsed);
            self.iterations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Criterion;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("unit");
            group.bench_function("count", |b| b.iter(|| ran += 1));
            group.finish();
        }
        assert_eq!(ran, 2);
        c.final_summary();
    }
}
