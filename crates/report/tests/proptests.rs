//! Property-based tests for the shard protocol's parsing and merge
//! invariants: `--shard` specs, shard/host manifests, and the tiling
//! validation that keeps a dispatcher retry/re-shard from ever corrupting a
//! merged report.

use experiment_report::dispatch::{HostEntry, HostManifest};
use experiment_report::shard::{
    merge_run, ShardDocument, ShardManifest, ShardPoolCounters, ShardSpec,
};
use experiment_report::ExperimentReport;
use proptest::prelude::*;

/// A synthetic item label (merge fuzz never runs real experiments).
fn label(i: u64) -> String {
    format!("item{i}")
}

/// A synthetic report whose id matches its manifest label, the invariant
/// `merge_run` checks per item.
fn report_for(item: &str) -> ExperimentReport {
    let mut report = ExperimentReport::new(item, format!("synthetic {item}"));
    report.push_line(format!("row of {item}"));
    report
}

/// One shard document covering `range` of `total` synthetic items.
fn doc(shard: u64, shards: u64, start: u64, count: u64, total: u64) -> ShardDocument {
    let items: Vec<String> = (start..start + count).map(label).collect();
    ShardDocument {
        manifest: ShardManifest {
            command: "run".to_string(),
            shard,
            shards,
            start,
            count,
            total,
            items: items.clone(),
            workload: None,
            params: None,
            pool: None,
        },
        reports: items.iter().map(|item| report_for(item)).collect(),
    }
}

proptest! {
    // Cap the per-property case count so the tier-1 suite stays fast and
    // deterministic; override with PROPTEST_CASES for deeper soak runs.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse ∘ display is the identity on every valid shard spec.
    fn shard_spec_parse_display_round_trips(total in 1u64..10_000, pick in 0u64..10_000) {
        let spec = ShardSpec { index: pick % total, total };
        let parsed = ShardSpec::parse(&spec.to_string()).unwrap();
        prop_assert_eq!(parsed, spec);
        prop_assert_eq!(parsed.to_string(), spec.to_string());
    }

    /// Out-of-range and zero-total specs are rejected however they are
    /// spelled; the error names the flag.
    fn shard_spec_rejects_out_of_range(index in 0u64..10_000, extra in 0u64..100) {
        let total = index.saturating_sub(extra).min(index); // total <= index
        let err = ShardSpec::parse(&format!("{index}/{total}")).unwrap_err();
        prop_assert!(err.contains("--shard"), "{}", err);
        prop_assert!(ShardSpec::parse(&format!("{index}")).is_err());
        prop_assert!(ShardSpec::parse(&format!("{index}/")).is_err());
        prop_assert!(ShardSpec::parse(&format!("/{index}")).is_err());
        prop_assert!(ShardSpec::parse(&format!("{index}/x")).is_err());
        prop_assert!(ShardSpec::parse(&format!("-{index}/{index}")).is_err());
    }

    /// The partition function tiles any work list completely and in order,
    /// whatever the shard count.
    fn shard_ranges_tile_exactly(len in 0usize..500, total in 1u64..64) {
        let mut covered = Vec::new();
        for index in 0..total {
            let range = ShardSpec { index, total }.range(len);
            prop_assert!(range.start <= range.end && range.end <= len);
            covered.extend(range);
        }
        prop_assert_eq!(covered, (0..len).collect::<Vec<_>>());
    }

    /// Shard manifests survive the JSON round trip byte-for-byte, with and
    /// without the optional sweep and pool fields.
    fn shard_manifest_round_trips(
        shard in 0u64..64, extra_shards in 0u64..64,
        start in 0u64..1000, count in 0u64..20, extra_total in 0u64..1000,
        with_sweep in 0u32..2, with_pool in 0u32..2,
        checkouts in 0u64..1_000_000, hits in 0u64..1_000_000,
    ) {
        let manifest = ShardManifest {
            command: if with_sweep == 1 { "sweep" } else { "run" }.to_string(),
            shard,
            shards: shard + 1 + extra_shards,
            start,
            count,
            total: start + count + extra_total,
            items: (start..start + count).map(label).collect(),
            workload: (with_sweep == 1).then(|| "stencil".to_string()),
            params: (with_sweep == 1).then(|| format!("n={start}")),
            pool: (with_pool == 1).then(|| ShardPoolCounters {
                checkouts,
                hits: hits.min(checkouts),
                misses: checkouts - hits.min(checkouts),
                recycled_bytes: hits * 64,
                fresh_bytes: (checkouts - hits.min(checkouts)) * 64,
                high_water_bytes: checkouts * 64,
            }),
        };
        let value = manifest.to_json_value();
        let parsed = ShardManifest::from_json_value(&value).unwrap();
        prop_assert_eq!(&parsed, &manifest);
        prop_assert_eq!(
            serde_json::to_string_pretty(&parsed.to_json_value()).unwrap(),
            serde_json::to_string_pretty(&value).unwrap()
        );
    }

    /// Host manifests survive the JSON round trip, whatever the host count,
    /// slot spread and template arity.
    fn host_manifest_round_trips(
        hosts in 1usize..12, slots in 1u64..64, template_len in 1usize..6,
    ) {
        let manifest = HostManifest {
            template: (0..template_len)
                .map(|i| if i == 0 { "run{shard}".to_string() } else { format!("arg{i}") })
                .collect(),
            hosts: (0..hosts)
                .map(|i| HostEntry {
                    name: format!("node-{i}"),
                    slots: 1 + (slots + i as u64) % 64,
                })
                .collect(),
        };
        let parsed = HostManifest::parse(&manifest.to_json_pretty()).unwrap();
        prop_assert_eq!(&parsed, &manifest);
        prop_assert_eq!(parsed.to_json_pretty(), manifest.to_json_pretty());
    }

    /// Malformed host manifests (zero slots, duplicate or empty names) are
    /// rejected wherever the bad entry sits.
    fn host_manifest_rejects_bad_entries(hosts in 1usize..8, bad in 0usize..8) {
        let bad = bad % hosts;
        let zero_slots = HostManifest {
            template: vec!["{exe}".to_string()],
            hosts: (0..hosts)
                .map(|i| HostEntry {
                    name: format!("node-{i}"),
                    slots: if i == bad { 0 } else { 2 },
                })
                .collect(),
        };
        prop_assert!(HostManifest::parse(&zero_slots.to_json_pretty()).is_err());
        if hosts > 1 {
            let duplicated = HostManifest {
                template: vec!["{exe}".to_string()],
                hosts: (0..hosts)
                    .map(|i| HostEntry {
                        name: format!("node-{}", if i == bad { (bad + 1) % hosts } else { i }),
                        slots: 2,
                    })
                    .collect(),
            };
            prop_assert!(HostManifest::parse(&duplicated.to_json_pretty()).is_err());
        }
    }

    /// A clean two-shard tiling merges to exactly the expected labels; the
    /// same set with shard 1's range shifted (gap or overlap) is rejected.
    fn merge_rejects_gap_and_overlap_tilings(
        total in 2u64..24, cut in 1u64..24, shift in 1i64..6, gap in 0u32..2,
    ) {
        let cut = cut.min(total - 1);
        let expected: Vec<String> = (0..total).map(label).collect();
        let clean = vec![
            doc(0, 2, 0, cut, total),
            doc(1, 2, cut, total - cut, total),
        ];
        let merged = merge_run(&clean, &expected).unwrap();
        prop_assert_eq!(merged.len() as u64, total);

        // Shift shard 1's start: + opens a gap, - overlaps shard 0.
        let shift = if gap == 1 { shift } else { -shift };
        let shifted_start = cut as i64 + shift;
        if shifted_start >= 0 && (shifted_start as u64) <= total {
            let shifted_start = shifted_start as u64;
            let broken = vec![
                doc(0, 2, 0, cut, total),
                doc(1, 2, shifted_start, total - shifted_start, total),
            ];
            prop_assert!(merge_run(&broken, &expected).is_err());
        }
    }

    /// A shard that duplicates one of its neighbour's labels (re-shard gone
    /// wrong) is rejected even when the counts line up.
    fn merge_rejects_duplicated_labels(total in 2u64..24, cut in 1u64..24, dup in 0u64..24) {
        let cut = cut.min(total - 1);
        let expected: Vec<String> = (0..total).map(label).collect();
        let mut second = doc(1, 2, cut, total - cut, total);
        // Overwrite one of shard 1's labels with a label shard 0 owns.
        let victim = (dup % (total - cut)) as usize;
        let stolen = label(dup % cut);
        second.manifest.items[victim] = stolen.clone();
        second.reports[victim] = report_for(&stolen);
        let docs = vec![doc(0, 2, 0, cut, total), second];
        prop_assert!(merge_run(&docs, &expected).is_err());
    }
}
