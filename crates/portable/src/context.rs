//! `DeviceContext`: the host-side entry point of the portable model.
//!
//! Mirrors Mojo's `gpu.host.DeviceContext` (paper Listing 1): the context owns
//! a device, creates buffers on it, enqueues kernel launches, and
//! synchronises. Because the simulator executes kernels eagerly,
//! `synchronize()` is a semantic no-op kept for API fidelity — host code reads
//! results only after calling it, exactly as it must on real hardware.

use gpu_sim::memory::{DeviceBuffer, DeviceScalar};
use gpu_sim::{launch_flat, CoopKernel, CoopLaunch, Device, LaunchConfig, SimError, ThreadCtx};
use gpu_spec::GpuSpec;
use std::sync::atomic::{AtomicU64, Ordering};

/// The host-side handle to a simulated GPU.
#[derive(Debug)]
pub struct DeviceContext {
    device: Device,
    launches: AtomicU64,
}

impl DeviceContext {
    /// Creates a context for a device described by `spec`.
    pub fn new(spec: GpuSpec) -> Self {
        DeviceContext {
            device: Device::new(spec),
            launches: AtomicU64::new(0),
        }
    }

    /// Creates a context over an existing simulated device.
    pub fn from_device(device: Device) -> Self {
        DeviceContext {
            device,
            launches: AtomicU64::new(0),
        }
    }

    /// The simulated device behind this context.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The hardware description of the device.
    pub fn spec(&self) -> &GpuSpec {
        self.device.spec()
    }

    /// Number of kernels launched through this context so far.
    pub fn launch_count(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }

    /// Allocates a zero-initialised device buffer of `len` elements,
    /// mirroring `ctx.enqueue_create_buffer[dtype](len)`.
    pub fn enqueue_create_buffer<T: DeviceScalar>(
        &self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, SimError> {
        self.device.alloc::<T>(len)
    }

    /// Allocates a device buffer and fills it from host data.
    pub fn enqueue_create_buffer_from<T: DeviceScalar>(
        &self,
        data: &[T],
    ) -> Result<DeviceBuffer<T>, SimError> {
        self.device.alloc_from_host(data)
    }

    /// Launches a flat (barrier-free) kernel, mirroring
    /// `ctx.enqueue_function[kernel](args, grid_dim=…, block_dim=…)`.
    ///
    /// The closure is invoked once per simulated thread with its
    /// [`ThreadCtx`]; captured tensors/buffers provide the kernel arguments.
    pub fn enqueue_function<F>(&self, config: LaunchConfig, kernel: F) -> Result<(), SimError>
    where
        F: Fn(ThreadCtx) + Sync,
    {
        config.validate(self.device.spec())?;
        self.launches.fetch_add(1, Ordering::Relaxed);
        launch_flat(&config, kernel);
        Ok(())
    }

    /// Launches a cooperative kernel that uses block shared memory and
    /// barriers (see [`CoopKernel`]).
    pub fn enqueue_cooperative<K: CoopKernel>(
        &self,
        config: LaunchConfig,
        kernel: &K,
    ) -> Result<(), SimError> {
        config.validate(self.device.spec())?;
        self.launches.fetch_add(1, Ordering::Relaxed);
        CoopLaunch::run(&config, kernel);
        Ok(())
    }

    /// Waits for all enqueued work to finish. Execution is eager in the
    /// simulator, so this only exists to keep host code structured the way it
    /// must be for real devices.
    pub fn synchronize(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use crate::tensor::LayoutTensor;
    use gpu_spec::presets;

    #[test]
    fn listing1_fill_one() {
        // Mirrors the paper's Listing 1 end-to-end.
        const NX: usize = 1024;
        const BLOCK_SIZE: u32 = 256;
        let ctx = DeviceContext::new(presets::test_device());
        let d_u = ctx.enqueue_create_buffer::<f32>(NX).unwrap();
        let u_tensor = LayoutTensor::new(d_u, Layout::row_major_1d(NX)).unwrap();

        let t = u_tensor.clone();
        ctx.enqueue_function(LaunchConfig::cover_1d(NX as u64, BLOCK_SIZE), move |c| {
            let tid = c.global_x() as usize;
            if tid < NX {
                t.set(tid, 1.0);
            }
        })
        .unwrap();
        ctx.synchronize();

        assert!(u_tensor.to_host().iter().all(|&v| v == 1.0));
        assert_eq!(ctx.launch_count(), 1);
    }

    #[test]
    fn create_buffer_from_host_data() {
        let ctx = DeviceContext::new(presets::test_device());
        let buf = ctx.enqueue_create_buffer_from(&[1.0f64, 2.0, 3.0]).unwrap();
        assert_eq!(buf.copy_to_host(), vec![1.0, 2.0, 3.0]);
        assert!(ctx.device().allocated_bytes() > 0);
        assert_eq!(ctx.spec().vendor, gpu_spec::Vendor::Generic);
    }

    #[test]
    fn invalid_launch_is_rejected_and_not_counted() {
        let ctx = DeviceContext::new(presets::test_device());
        let res = ctx.enqueue_function(LaunchConfig::new(1u32, 4096u32), |_c| {});
        assert!(res.is_err());
        assert_eq!(ctx.launch_count(), 0);
    }

    #[test]
    fn out_of_memory_propagates() {
        let ctx = DeviceContext::new(presets::test_device());
        let elems = (ctx.spec().memory_bytes / 8 + 1) as usize;
        assert!(ctx.enqueue_create_buffer::<f64>(elems).is_err());
    }

    #[test]
    fn multiple_launches_are_counted() {
        let ctx = DeviceContext::new(presets::test_device());
        for _ in 0..3 {
            ctx.enqueue_function(LaunchConfig::cover_1d(128, 64), |_c| {})
                .unwrap();
        }
        assert_eq!(ctx.launch_count(), 3);
    }
}
