//! Portable (Mojo-style) seven-point stencil implementation.
//!
//! A direct transcription of the paper's Listing 2: the kernel receives two
//! `LayoutTensor`s (`f` mutable, `u` read-only) and the inverse-square
//! coefficients, computes its `(i, j, k)` cell from the thread/block indices
//! and updates interior cells only. The same source runs on every simulated
//! device — that single-source property is exactly what the paper evaluates.

use super::config::StencilConfig;
use super::cost::stencil_cost;
use crate::cache;
use crate::common::{compare_with_reference, Verification, WorkloadRun};
use crate::real::Real;
use crate::simd::{self, Lane, LanePolicy};
use gpu_sim::{istr, istr_fmt, SimError};
use portable_kernel::prelude::*;
use vendor_models::{heuristics, KernelClass, Platform};

/// The portable stencil kernel body (paper Listing 2): updates one cell of
/// `f` from `u` if the cell is interior.
#[allow(clippy::too_many_arguments)]
#[inline]
fn laplacian_kernel<T: Real>(
    t: ThreadCtx,
    f: &LayoutTensor<T>,
    u: &LayoutTensor<T>,
    nx: usize,
    ny: usize,
    nz: usize,
    invhx2: T,
    invhy2: T,
    invhz2: T,
    invhxyz2: T,
) {
    let k = t.global_x() as usize;
    let j = t.global_y() as usize;
    let i = t.global_z() as usize;
    if i > 0 && i < nx - 1 && j > 0 && j < ny - 1 && k > 0 && k < nz - 1 {
        let value = u.get3(i, j, k) * invhxyz2
            + (u.get3(i - 1, j, k) + u.get3(i + 1, j, k)) * invhx2
            + (u.get3(i, j - 1, k) + u.get3(i, j + 1, k)) * invhy2
            + (u.get3(i, j, k - 1) + u.get3(i, j, k + 1)) * invhz2;
        f.set3(i, j, k, value);
    }
}

/// Runs the portable stencil on `platform` under the process-wide lane
/// policy, returning the full run record.
pub fn run_portable(platform: &Platform, config: &StencilConfig) -> Result<WorkloadRun, SimError> {
    run_portable_lane(platform, config, simd::process_policy())
}

/// Runs the portable stencil under an explicit lane policy. The lane picks
/// the host verification scan; both scans return bit-identical results
/// (the per-element comparison is order-independent), so stencil rows are
/// byte-identical on every lane.
pub fn run_portable_lane(
    platform: &Platform,
    config: &StencilConfig,
    policy: LanePolicy,
) -> Result<WorkloadRun, SimError> {
    let cost = stencil_cost(config);
    let class = KernelClass::Stencil7 {
        precision: config.precision,
    };
    let profile = platform.execution_profile(&class);
    let timing = cache::timing_model(platform).estimate(&cost, &profile);
    let lane = simd::resolve(policy, simd::KERNEL_STENCIL7, config.l as u64);

    let verification = if config.should_execute() {
        match config.precision {
            gpu_spec::Precision::Fp32 => execute::<f32>(platform, config, lane)?,
            gpu_spec::Precision::Fp64 => execute::<f64>(platform, config, lane)?,
        }
    } else {
        Verification::Skipped {
            reason: istr_fmt(format_args!(
                "L = {} exceeds the functional-execution limit; cost model only",
                config.l
            )),
        }
    };

    Ok(WorkloadRun {
        backend: profile.backend.clone(),
        device: istr(&platform.spec.name),
        kernel: istr("laplacian"),
        cost,
        profile,
        timing,
        verification,
    })
}

fn execute<T: Real + cache::StencilGridCache>(
    platform: &Platform,
    config: &StencilConfig,
    lane: Lane,
) -> Result<Verification, SimError> {
    let l = config.l;
    let layout = Layout::row_major_3d(l, l, l);
    let (invhx2, invhy2, invhz2, invhxyz2) = config.coefficients();

    let u_host = T::cached_stencil_grid(config);

    let ctx = DeviceContext::from_device(cache::device(platform));
    let d_u = ctx.enqueue_create_buffer_from(&u_host)?;
    let d_f = ctx.enqueue_create_buffer::<T>(l * l * l)?;
    let u_tensor = LayoutTensor::new(d_u, layout)?;
    let f_tensor = LayoutTensor::new(d_f, layout)?;

    let launch = heuristics::stencil_launch(l as u32, config.block_x);
    let (f_k, u_k) = (f_tensor.clone(), u_tensor.clone());
    let (cx, cy, cz, cc) = (
        T::from_f64(invhx2),
        T::from_f64(invhy2),
        T::from_f64(invhz2),
        T::from_f64(invhxyz2),
    );
    ctx.enqueue_function(launch, move |t| {
        laplacian_kernel(t, &f_k, &u_k, l, l, l, cx, cy, cz, cc);
    })?;
    ctx.synchronize();

    // The reference is computed from the full-precision grid in f64
    // arithmetic; the tolerance accounts for the difference.
    let expected = cache::stencil_reference(config);
    let mut actual: PooledVec<T> = PooledVec::new();
    f_tensor.to_host_into(&mut actual);
    let compared = match lane {
        Lane::Deterministic => compare_with_reference(&actual, &expected, T::tolerance()),
        Lane::Simd => simd::compare_with_reference_unrolled(&actual, &expected, T::tolerance()),
    };
    match compared {
        Ok(max_abs_error) => Ok(Verification::Passed { max_abs_error }),
        Err(msg) => Err(SimError::InvalidParameter(format!(
            "stencil verification failed: {msg}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;

    #[test]
    fn portable_stencil_matches_reference_fp64() {
        let config = StencilConfig::validation(32, Precision::Fp64);
        let run = run_portable(&Platform::portable_h100(), &config).unwrap();
        match run.verification {
            Verification::Passed { max_abs_error } => assert!(max_abs_error < 1e-6),
            other => panic!("expected verification, got {other:?}"),
        }
    }

    #[test]
    fn portable_stencil_matches_reference_fp32() {
        let config = StencilConfig::validation(24, Precision::Fp32);
        let run = run_portable(&Platform::portable_mi300a(), &config).unwrap();
        assert!(run.verification.is_verified());
    }

    #[test]
    fn large_problems_skip_functional_execution() {
        let config = StencilConfig::paper(512, Precision::Fp64);
        let run = run_portable(&Platform::portable_h100(), &config).unwrap();
        assert!(!run.verification.is_verified());
        assert!(run.millis() > 0.1, "512³ stencil should take ~1 ms");
    }

    #[test]
    fn duration_is_close_to_table2_for_fp64_l512() {
        // Table 2: Mojo FP64 L=512 duration 1.10 ms on the H100.
        let config = StencilConfig::paper(512, Precision::Fp64);
        let run = run_portable(&Platform::portable_h100(), &config).unwrap();
        assert!(
            (run.millis() - 1.10).abs() < 0.2,
            "expected ≈1.10 ms, got {:.3} ms",
            run.millis()
        );
    }
}
