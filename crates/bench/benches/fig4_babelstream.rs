//! Bench target for Figure 4 — BabelStream bandwidth on both devices.

use criterion::Criterion;
use experiment_report::ExperimentId;
use gpu_spec::Precision;
use science_kernels::babelstream::{self, BabelStreamConfig};
use vendor_models::kernel_class::StreamOp;
use vendor_models::Platform;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_babelstream");
    // Functional execution of each portable kernel at 2^20 elements.
    let config = BabelStreamConfig::validation(1 << 20, Precision::Fp64);
    for op in StreamOp::ALL {
        group.bench_function(format!("portable_{}", op.label()), |b| {
            let platform = Platform::portable_mi300a();
            b.iter(|| babelstream::run(&platform, op, &config).unwrap())
        });
    }
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Fig4);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
