//! Effective bandwidth of the seven-point stencil — the paper's Eq. (1).
//!
//! For a cubic grid of side `L` and element size `sizeof(T)`:
//!
//! ```text
//! fetch_size_effective = (L³ − 8 − 12(L−2)) · sizeof(T)
//! write_size_effective = (L−2)³ · sizeof(T)
//! bandwidth_effective  = (fetch + write) / kernel_time
//! ```
//!
//! The fetch term discounts the 8 corner and 12·(L−2) edge cells that the
//! interior-only stencil never reads; the write term covers exactly the
//! interior cells.

use gpu_spec::Precision;

/// Effective fetched bytes for a seven-point stencil step on an `l`³ grid.
pub fn stencil_fetch_bytes(l: u64, precision: Precision) -> u64 {
    let cells = l * l * l - 8 - 12 * (l - 2);
    cells * precision.size_of() as u64
}

/// Effective written bytes for a seven-point stencil step on an `l`³ grid.
pub fn stencil_write_bytes(l: u64, precision: Precision) -> u64 {
    let interior = (l - 2).pow(3);
    interior * precision.size_of() as u64
}

/// Effective bandwidth in GB/s (decimal) for one stencil step that took
/// `kernel_time_s` seconds — Eq. (1).
pub fn stencil_bandwidth_gbs(l: u64, precision: Precision, kernel_time_s: f64) -> f64 {
    assert!(kernel_time_s > 0.0, "kernel time must be positive");
    let bytes = (stencil_fetch_bytes(l, precision) + stencil_write_bytes(l, precision)) as f64;
    bytes / kernel_time_s / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_and_write_sizes_follow_eq1() {
        // L = 512, FP64: fetch = (512³ − 8 − 12·510)·8, write = 510³·8.
        let l = 512u64;
        assert_eq!(
            stencil_fetch_bytes(l, Precision::Fp64),
            (l * l * l - 8 - 12 * 510) * 8
        );
        assert_eq!(stencil_write_bytes(l, Precision::Fp64), 510u64.pow(3) * 8);
        // FP32 is exactly half the bytes.
        assert_eq!(
            stencil_fetch_bytes(l, Precision::Fp32) * 2,
            stencil_fetch_bytes(l, Precision::Fp64)
        );
    }

    #[test]
    fn bandwidth_is_bytes_over_time() {
        let l = 512u64;
        let time = 1e-3;
        let expected = (stencil_fetch_bytes(l, Precision::Fp64)
            + stencil_write_bytes(l, Precision::Fp64)) as f64
            / time
            / 1e9;
        let got = stencil_bandwidth_gbs(l, Precision::Fp64, time);
        assert!((got - expected).abs() < 1e-9);
        // ~2.11 GB in 1 ms ≈ 2110 GB/s.
        assert!(got > 2000.0 && got < 2300.0);
    }

    #[test]
    fn halving_time_doubles_bandwidth() {
        let a = stencil_bandwidth_gbs(1024, Precision::Fp32, 2e-3);
        let b = stencil_bandwidth_gbs(1024, Precision::Fp32, 1e-3);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_time_panics() {
        stencil_bandwidth_gbs(64, Precision::Fp32, 0.0);
    }
}
