//! Offline stand-in for `rayon`.
//!
//! Implements the slice of rayon this workspace uses — `into_par_iter()` over
//! integer ranges (`for_each`, `map().collect()`) and `par_chunks_mut` — with
//! scoped OS threads. Work is distributed over `available_parallelism` worker
//! threads pulling batches from an atomic counter; on single-core hosts the
//! implementation degenerates to an inline loop with no thread overhead.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The rayon-style glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSliceMut};
}

fn worker_count(len: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(len.max(1))
}

/// Runs `f(i)` for every `i in 0..len`, distributing indices over workers.
fn parallel_indexed<F: Fn(usize) + Sync>(len: usize, f: F) {
    let workers = worker_count(len);
    if workers <= 1 {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let batch = (len / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(batch, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                for i in start..(start + batch).min(len) {
                    f(i);
                }
            });
        }
    });
}

/// Computes `f(i)` for every `i in 0..len` and returns the results in order.
fn parallel_collect<R: Send, F: Fn(usize) -> R + Sync>(len: usize, f: F) -> Vec<R> {
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    {
        struct Slots<R>(*mut Option<R>);
        // SAFETY: each index is written by exactly one worker invocation.
        unsafe impl<R: Send> Sync for Slots<R> {}
        let slots_ptr = Slots(slots.as_mut_ptr());
        let slots_ref = &slots_ptr;
        parallel_indexed(len, move |i| {
            // SAFETY: `i < len` and every index is visited exactly once, so
            // writes are disjoint; the Vec outlives the scoped threads.
            unsafe { *slots_ref.0.add(i) = Some(f(i)) };
        });
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("parallel_collect slot not filled"))
        .collect()
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// The operations this shim's parallel iterators support.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Consumes the iterator, invoking `f` on every element in parallel.
    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F);

    /// Maps every element through `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync + Send>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }
}

/// Integer types usable as parallel range bounds.
pub trait RangeInt: Copy + Send + Sync {
    /// Number of elements between `start` and `end` (0 if inverted).
    fn span(start: Self, end: Self) -> usize;
    /// `start + offset`.
    fn offset(self, offset: usize) -> Self;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn span(start: Self, end: Self) -> usize {
                if end > start { (end - start) as usize } else { 0 }
            }
            fn offset(self, offset: usize) -> Self {
                self + offset as $t
            }
        }
    )*};
}

impl_range_int!(i32, i64, u32, u64, usize);

/// A parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: Range<T>,
}

impl<T: RangeInt> IntoParallelIterator for Range<T> {
    type Item = T;
    type Iter = RangeIter<T>;
    fn into_par_iter(self) -> RangeIter<T> {
        RangeIter { range: self }
    }
}

impl<T: RangeInt> ParallelIterator for RangeIter<T> {
    type Item = T;
    fn for_each<F: Fn(T) + Sync + Send>(self, f: F) {
        let start = self.range.start;
        let len = T::span(start, self.range.end);
        parallel_indexed(len, |i| f(start.offset(i)));
    }
}

impl<T: RangeInt> RangeIter<T> {
    fn len(&self) -> usize {
        T::span(self.range.start, self.range.end)
    }

    fn get(&self, i: usize) -> T {
        self.range.start.offset(i)
    }
}

impl<T: RangeInt, F> Map<RangeIter<T>, F> {
    /// Collects the mapped results in element order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
        C: FromIndexedResults<R>,
    {
        let len = self.base.len();
        let base = &self.base;
        let f = &self.f;
        C::from_results(parallel_collect(len, move |i| f(base.get(i))))
    }
}

/// A mapped parallel iterator.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I: ParallelIterator, R: Send, F: Fn(I::Item) -> R + Sync + Send> ParallelIterator
    for Map<I, F>
{
    type Item = R;
    fn for_each<G: Fn(R) + Sync + Send>(self, g: G) {
        let f = self.f;
        self.base.for_each(move |item| g(f(item)));
    }
}

/// Collection types constructible from in-order parallel results.
pub trait FromIndexedResults<R> {
    /// Builds the collection from ordered results.
    fn from_results(results: Vec<R>) -> Self;
}

impl<R> FromIndexedResults<R> for Vec<R> {
    fn from_results(results: Vec<R>) -> Self {
        results
    }
}

/// Parallel operations on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of `size` elements processed in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        ChunksMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> EnumeratedChunks<'a, T> {
        EnumeratedChunks {
            chunks: self.chunks,
        }
    }

    /// Invokes `f` on every chunk in parallel.
    pub fn for_each<F: Fn(&'a mut [T]) + Sync + Send>(self, f: F) {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel chunk iterator.
pub struct EnumeratedChunks<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> EnumeratedChunks<'a, T> {
    /// Invokes `f` on every `(index, chunk)` pair in parallel. Chunks are
    /// distributed round-robin over the worker threads by ownership, so no
    /// unsynchronised sharing is needed.
    pub fn for_each<F: Fn((usize, &'a mut [T])) + Sync + Send>(self, f: F) {
        let workers = worker_count(self.chunks.len());
        if workers <= 1 {
            for pair in self.chunks.into_iter().enumerate() {
                f(pair);
            }
            return;
        }
        let mut queues: Vec<Vec<(usize, &'a mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, chunk) in self.chunks.into_iter().enumerate() {
            queues[i % workers].push((i, chunk));
        }
        let f = &f;
        std::thread::scope(|scope| {
            for queue in queues {
                scope.spawn(move || {
                    for pair in queue {
                        f(pair);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn range_for_each_visits_everything_once() {
        let n = 10_000u64;
        let sum = AtomicU64::new(0);
        (0..n).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0..1000u64).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn par_chunks_mut_covers_the_slice() {
        let mut data = vec![0u32; 1037];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[64], 2);
    }
}
