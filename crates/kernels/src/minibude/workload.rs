//! The `minibude` scenario: the `fasten` docking drivers behind the
//! [`Workload`] interface.

use super::config::DEFAULT_EXECUTED_POSES;
use super::MiniBudeConfig;
use crate::workload::{
    check_int_range, paper_platform_pairs, Measurement, ParamSpec, Params, Workload, WorkloadError,
    WorkloadOutput,
};
use gpu_sim::PooledVec;
use hpc_metrics::{minibude_gflops, MiniBudeSizes};

/// The synthetic-deck seed every preset shares (the deck shape, not its
/// contents, is what the paper's figures depend on).
pub const DECK_SEED: u64 = 0x00b0de;

/// Decodes a validated parameter assignment into a driver configuration.
/// Functional execution covers `DEFAULT_EXECUTED_POSES` poses (rounded to
/// a whole number of work-items) with the cost model extrapolating to the
/// full pose count, exactly as [`MiniBudeConfig::paper`] does.
pub fn config(params: &Params) -> Result<MiniBudeConfig, WorkloadError> {
    Ok(MiniBudeConfig {
        ppwi: params.int("ppwi") as u32,
        wg: params.int("wg") as u32,
        natlig: params.int("natlig") as usize,
        natpro: params.int("natpro") as usize,
        nposes: params.int("poses") as usize,
        executed_poses: DEFAULT_EXECUTED_POSES,
        seed: DECK_SEED,
    }
    .normalised())
}

/// The miniBUDE workload (paper Figures 6–7).
pub struct MiniBudeWorkload;

impl Workload for MiniBudeWorkload {
    fn name(&self) -> &'static str {
        "minibude"
    }

    fn description(&self) -> &'static str {
        "miniBUDE fasten docking kernel, bm1-shaped deck (compute bound, Eq. 3)"
    }

    fn fom_label(&self) -> &'static str {
        "gflops"
    }

    fn size_param(&self) -> &'static str {
        "ppwi"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::int("ppwi", 8, "poses per work-item (the paper sweeps 1..128)"),
            ParamSpec::int("wg", 64, "work-group (thread block) size"),
            ParamSpec::int("poses", 65_536, "total pose count"),
            ParamSpec::int("natlig", 26, "ligand atom count"),
            ParamSpec::int("natpro", 938, "protein atom count"),
        ]
    }

    fn bench_sizes(&self) -> &'static [u64] {
        &[1, 4, 16]
    }

    fn validate(&self, params: &Params) -> Result<(), WorkloadError> {
        // Raw u64 bounds *before* the decoder's u32/usize casts, so
        // out-of-range values are rejected instead of truncated; the
        // ceilings keep the FLOP product (poses × natlig × natpro × …)
        // far inside u64.
        check_int_range(params, "ppwi", 1, 1024)?;
        check_int_range(params, "wg", 1, 1024)?;
        check_int_range(params, "poses", 1, 1 << 30)?;
        check_int_range(params, "natlig", 1, 1 << 16)?;
        check_int_range(params, "natpro", 1, 1 << 20)?;
        if params.int("poses") < params.int("ppwi") {
            return Err(WorkloadError::new("poses must be at least ppwi"));
        }
        Ok(())
    }

    fn run_lane(
        &self,
        params: &Params,
        policy: crate::simd::LanePolicy,
    ) -> Result<WorkloadOutput, WorkloadError> {
        self.validate(params)?;
        let config = config(params)?;
        let sizes = MiniBudeSizes {
            nligands: config.natlig as u64,
            nproteins: config.natpro as u64,
            poses: config.nposes as u64,
            ppwi: config.ppwi as u64,
        };
        let mut measurements = PooledVec::new();
        for platform in paper_platform_pairs() {
            let run = super::run_lane(platform, &config, policy)?;
            let fom = minibude_gflops(&sizes, run.seconds());
            measurements.push(Measurement::from_run(&run, fom));
        }
        Ok(WorkloadOutput {
            params: params.clone(),
            measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_the_paper_deck_shape_by_default() {
        let config = config(&MiniBudeWorkload.default_params()).unwrap();
        let paper = MiniBudeConfig::paper(8, 64);
        assert_eq!(config, paper);
    }

    #[test]
    fn validation_rejects_degenerate_decks() {
        for bad in ["ppwi=0", "wg=0", "wg=2048", "natlig=0", "poses=4,ppwi=8"] {
            let mut params = MiniBudeWorkload.default_params();
            params.apply_encoding(bad).unwrap();
            assert!(MiniBudeWorkload.validate(&params).is_err(), "{bad}");
        }
    }

    #[test]
    fn values_beyond_u32_are_rejected_before_the_decoder_truncates_them() {
        // 2^32 + 8 would truncate to ppwi=8 in the u32 cast and then run —
        // with every report row mislabeled as the huge value. Both validate
        // and run must refuse it instead.
        let mut params = MiniBudeWorkload.default_params();
        params.apply_encoding("ppwi=4294967304").unwrap();
        assert!(MiniBudeWorkload.validate(&params).is_err());
        assert!(MiniBudeWorkload.run(&params).is_err());
    }

    #[test]
    fn runs_and_verifies_a_reduced_deck() {
        let mut params = MiniBudeWorkload.default_params();
        params
            .apply_encoding("ppwi=4,wg=8,poses=128,natlig=8,natpro=64")
            .unwrap();
        let output = MiniBudeWorkload.run(&params).unwrap();
        assert_eq!(output.measurements.len(), 4);
        for m in &output.measurements {
            assert_eq!(m.kernel, "fasten");
            assert!(m.fom > 0.0);
            assert!(m.verification.starts_with("passed("), "{}", m.verification);
        }
    }
}
