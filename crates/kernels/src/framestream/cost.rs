//! Analytic launch cost of a full frame-stream batch.

use super::config::FrameStreamConfig;
use gpu_sim::stats::{AccessPattern, FlopCounts};
use gpu_sim::KernelCost;
use gpu_spec::Precision;
use hpc_metrics::framestream_traffic_bytes;
use vendor_models::heuristics;

/// Builds the aggregate cost of streaming `frames` frames of `n` elements
/// through the EMA accumulator. Each frame reads the accumulator and the
/// frame buffer once and writes the accumulator once (Triad-shaped traffic,
/// Eq. 2 with three arrays); each element folds with one multiplication and
/// one FMA.
pub fn framestream_cost(config: &FrameStreamConfig) -> KernelCost {
    let elem = Precision::Fp64.size_of() as u64;
    let n = config.n as u64;
    let frames = config.frames as u64;
    let launch = heuristics::stream_launch(n);

    let total = framestream_traffic_bytes(n, frames);
    let write = frames * n * elem;
    let fetch = total - write;

    KernelCost::builder(
        "framestream",
        Precision::Fp64,
        launch,
        AccessPattern::Stream,
    )
    .dram_traffic(fetch, write)
    .flops(FlopCounts {
        muls: frames * n, // acc × BETA
        fmas: frames * n, // + ALPHA × frame
        ..Default::default()
    })
    .loads_stores_per_thread(2.0, 1.0)
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_matches_the_metric_helper_and_scales_with_frames() {
        let one = framestream_cost(&FrameStreamConfig::paper(16_384, 1));
        assert_eq!(one.total_bytes(), framestream_traffic_bytes(16_384, 1));
        assert_eq!(one.total_bytes(), 16_384 * 3 * 8);
        let many = framestream_cost(&FrameStreamConfig::paper(16_384, 64));
        assert_eq!(many.total_bytes(), 64 * one.total_bytes());
        assert_eq!(many.flops.total(), 64 * one.flops.total());
    }

    #[test]
    fn launch_covers_one_frame() {
        let cost = framestream_cost(&FrameStreamConfig::paper(16_384, 64));
        assert!(cost.launch.total_threads() >= 16_384);
        assert_eq!(cost.loads_per_thread, 2.0);
    }

    #[test]
    fn stream_stays_memory_bound() {
        let cost = framestream_cost(&FrameStreamConfig::paper(1 << 16, 256));
        assert!(
            cost.arithmetic_intensity_dram() < 1.0,
            "frame streaming must sit on the bandwidth roof, ai = {}",
            cost.arithmetic_intensity_dram()
        );
    }
}
