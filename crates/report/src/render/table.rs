//! A small fixed-width ASCII table renderer for the paper's tables.

/// A console table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        AsciiTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(ncols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:<width$}", cell, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = AsciiTable::new(["kernel", "Mojo", "CUDA"]);
        t.push_row(["Duration (ms)", "1.10", "0.96"]);
        t.push_row(["Registers", "24", "21"]);
        let s = t.render();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("kernel"));
        assert!(lines[2].contains("1.10"));
        // Columns align: "Mojo" column starts at the same byte offset in every row.
        let col = lines[0].find("Mojo").unwrap();
        assert_eq!(&lines[2][col..col + 4], "1.10");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = AsciiTable::new(["a", "b", "c"]);
        t.push_row(["1"]);
        assert!(t.render().lines().count() == 3);
    }
}
