//! Golden-file regression suite.
//!
//! `tests/golden/` commits the CSV output of `mojo-hpc run --all`, and
//! `tests/golden/json/` the JSON documents of `run --all --format json`.
//! These tests regenerate the full report through the real binary and assert
//! the output is **byte-identical** to the committed files — at the default
//! thread count and with `RAYON_NUM_THREADS=1` — so any change to the
//! timing model, the kernels, the executor or the CSV/JSON rendering that
//! moves a single byte of the paper's tables fails loudly. Regenerate the
//! goldens with `mojo-hpc run --all --out tests/golden` (CSV) and
//! `mojo-hpc run --all --format json --out tests/golden/json` when a change
//! is intended.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Fresh scratch directory under the target tree.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("golden-scratch")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `mojo-hpc run --all --out <dir>` (plus any extra flags) and returns
/// its stdout.
fn run_all_with(out: &Path, threads: Option<&str>, extra: &[&str]) -> String {
    let mut command = Command::new(env!("CARGO_BIN_EXE_mojo-hpc"));
    command.args(["run", "--all", "--out"]).arg(out).args(extra);
    match threads {
        Some(n) => command.env("RAYON_NUM_THREADS", n),
        None => command.env_remove("RAYON_NUM_THREADS"),
    };
    let output = command.output().expect("run mojo-hpc");
    assert!(
        output.status.success(),
        "mojo-hpc run --all failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("stdout is UTF-8")
}

/// Runs `mojo-hpc run --all --out <dir>` and returns its stdout.
fn run_all(out: &Path, threads: Option<&str>) -> String {
    run_all_with(out, threads, &[])
}

fn csv_names(dir: &Path) -> BTreeSet<String> {
    std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|entry| entry.ok())
        .filter(|entry| entry.path().extension().is_some_and(|ext| ext == "csv"))
        .filter_map(|entry| entry.file_name().into_string().ok())
        .collect()
}

/// Asserts every golden CSV exists in `generated` with identical bytes, and
/// that no unexpected CSVs appeared.
fn assert_matches_golden(generated: &Path) {
    let golden = golden_dir();
    let golden_names = csv_names(&golden);
    assert!(
        !golden_names.is_empty(),
        "no golden files committed under {}",
        golden.display()
    );
    assert_eq!(
        csv_names(generated),
        golden_names,
        "generated CSV set differs from the committed goldens"
    );
    for name in &golden_names {
        let expected = std::fs::read(golden.join(name)).expect("read golden");
        let actual = std::fs::read(generated.join(name)).expect("read generated");
        assert!(
            actual == expected,
            "{name} differs from the committed golden (regenerate with \
             `mojo-hpc run --all --out tests/golden` if the change is intended)"
        );
    }
}

#[test]
fn run_all_matches_the_committed_goldens_at_default_threads() {
    let out = scratch_dir("default");
    let stdout = run_all(&out, None);
    // Every experiment renders under its registry caption — this pins
    // `ExperimentId::title()` to the titles the builders actually set.
    for id in mojo_hpc::report::ExperimentId::ALL {
        let banner = format!("=== {} — {} ===", id.as_str(), id.title());
        assert!(stdout.contains(&banner), "stdout missing banner: {banner}");
    }
    assert_matches_golden(&out);
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn run_all_is_byte_identical_at_one_thread() {
    let out = scratch_dir("serial");
    let serial_stdout = run_all(&out, Some("1"));
    assert_matches_golden(&out);
    // The console rendering is part of the determinism contract too.
    let out2 = scratch_dir("wide");
    let wide_stdout = run_all(&out2, None);
    assert_eq!(
        serial_stdout, wide_stdout,
        "stdout differs between 1 thread and the default pool"
    );
    std::fs::remove_dir_all(&out).ok();
    std::fs::remove_dir_all(&out2).ok();
}

/// Asserts every committed golden JSON document exists in `generated` with
/// identical bytes, and that no unexpected documents appeared.
fn assert_matches_json_golden(generated: &Path) {
    let golden = golden_dir().join("json");
    let names: BTreeSet<String> = std::fs::read_dir(&golden)
        .unwrap_or_else(|e| panic!("read {}: {e}", golden.display()))
        .filter_map(|entry| entry.ok())
        .filter(|entry| entry.path().extension().is_some_and(|ext| ext == "json"))
        .filter_map(|entry| entry.file_name().into_string().ok())
        .collect();
    assert_eq!(
        names.len(),
        mojo_hpc::report::ExperimentId::ALL.len(),
        "one committed JSON golden per experiment"
    );
    let generated_names: BTreeSet<String> = std::fs::read_dir(generated)
        .unwrap_or_else(|e| panic!("read {}: {e}", generated.display()))
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .collect();
    assert_eq!(
        generated_names, names,
        "generated JSON set differs from the committed goldens"
    );
    for name in &names {
        let expected = std::fs::read(golden.join(name)).expect("read golden");
        let actual = std::fs::read(generated.join(name)).expect("read generated");
        assert!(
            actual == expected,
            "{name} differs from the committed golden (regenerate with \
             `mojo-hpc run --all --format json --out tests/golden/json` if \
             the change is intended)"
        );
    }
}

#[test]
fn run_all_json_is_byte_identical_across_thread_counts_and_matches_goldens() {
    let out = scratch_dir("json-default");
    let stdout = run_all_with(&out, None, &["--format", "json"]);
    // The stdout payload is one JSON array covering every experiment.
    assert!(stdout.starts_with('['), "json stdout should be an array");
    for id in mojo_hpc::report::ExperimentId::ALL {
        assert!(
            stdout.contains(&format!("\"id\": \"{}\"", id.as_str())),
            "stdout missing {id}"
        );
    }
    assert_matches_json_golden(&out);

    let out_serial = scratch_dir("json-serial");
    let serial_stdout = run_all_with(&out_serial, Some("1"), &["--format", "json"]);
    assert_eq!(
        stdout, serial_stdout,
        "json stdout differs between 1 thread and the default pool"
    );
    assert_matches_json_golden(&out_serial);

    std::fs::remove_dir_all(&out).ok();
    std::fs::remove_dir_all(&out_serial).ok();
}

/// The committed sweep goldens for the §15 composite workloads: the exact
/// CLI invocation that regenerates each fixture pair.
const SWEEP_GOLDENS: [(&str, &[&str]); 2] = [
    (
        "sweep_jacobi",
        &["sweep", "jacobi", "--sizes", "8,12,16", "iters=200"],
    ),
    (
        "sweep_framestream",
        &["sweep", "framestream", "--sizes", "4096,16384", "frames=32"],
    ),
];

/// Runs one sweep invocation in both formats and asserts the CSV and JSON
/// artefacts are byte-identical to `tests/golden/sweep/`.
fn assert_sweep_matches_golden(tag: &str, id: &str, args: &[&str], threads: Option<&str>) {
    let golden = golden_dir().join("sweep");
    let out = scratch_dir(tag);
    for format in ["csv", "json"] {
        let mut command = Command::new(env!("CARGO_BIN_EXE_mojo-hpc"));
        command
            .args(args)
            .args(["--format", format, "--out"])
            .arg(&out);
        match threads {
            Some(n) => command.env("RAYON_NUM_THREADS", n),
            None => command.env_remove("RAYON_NUM_THREADS"),
        };
        let output = command.output().expect("run mojo-hpc sweep");
        assert!(
            output.status.success(),
            "{id} sweep failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    for name in [format!("{id}_sweep.csv"), format!("{id}.json")] {
        let expected = std::fs::read(golden.join(&name)).expect("read sweep golden");
        let actual = std::fs::read(out.join(&name)).expect("read generated sweep file");
        assert!(
            actual == expected,
            "{name} differs from the committed golden (regenerate \
             tests/golden/sweep/ with the invocation in SWEEP_GOLDENS if the \
             change is intended)"
        );
    }
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn composite_sweeps_match_the_committed_goldens_at_default_threads() {
    for (id, args) in SWEEP_GOLDENS {
        assert_sweep_matches_golden(&format!("{id}-default"), id, args, None);
    }
}

#[test]
fn composite_sweeps_are_byte_identical_at_one_thread() {
    for (id, args) in SWEEP_GOLDENS {
        assert_sweep_matches_golden(&format!("{id}-serial"), id, args, Some("1"));
    }
}

#[test]
fn the_binary_diff_subcommand_agrees_the_goldens_match() {
    let out = scratch_dir("diff");
    run_all(&out, None);
    let status = Command::new(env!("CARGO_BIN_EXE_mojo-hpc"))
        .arg("diff")
        .arg(golden_dir())
        .arg(&out)
        .status()
        .expect("run mojo-hpc diff");
    assert_eq!(status.code(), Some(0));
    std::fs::remove_dir_all(&out).ok();
}
