//! Property-based tests for the simulator's core invariants.

use gpu_sim::stats::{AccessPattern, FlopCounts, KernelCost};
use gpu_sim::{launch_flat, Dim3, ExecutionProfile, LaunchConfig, TimingModel, UnsafeSlice};
use gpu_spec::{presets, Precision};
use proptest::prelude::*;

proptest! {
    // Cap the per-property case count so the tier-1 suite stays fast and
    // deterministic; override with PROPTEST_CASES for deeper soak runs.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Linearising and delinearising a Dim3 index is a bijection.
    fn dim3_linearisation_round_trips(x in 1u32..32, y in 1u32..16, z in 1u32..8, pick in 0u64..4096) {
        let dim = Dim3::new(x, y, z);
        let linear = pick % dim.total();
        let (i, j, k) = dim.delinearize(linear);
        prop_assert_eq!(dim.linearize(i, j, k), linear);
        prop_assert!(i < x && j < y && k < z);
    }

    /// cover_1d always launches at least `n` threads but never a whole extra block more.
    fn cover_1d_is_tight(n in 1u64..5_000_000, block in 1u32..1024) {
        let cfg = LaunchConfig::cover_1d(n, block);
        prop_assert!(cfg.total_threads() >= n);
        prop_assert!(cfg.total_threads() - n < u64::from(block));
    }

    /// Every simulated thread runs exactly once regardless of launch shape.
    fn flat_executor_touches_each_global_id_once(
        blocks in 1u32..24, threads in 1u32..96,
    ) {
        let cfg = LaunchConfig::new(blocks, threads);
        let total = cfg.total_threads() as usize;
        let mut hits = vec![0u32; total];
        {
            let slice = UnsafeSlice::new(&mut hits);
            launch_flat(&cfg, |ctx| {
                let id = ctx.global_x() as usize;
                slice.write(id, slice.read(id) + 1);
            });
        }
        prop_assert!(hits.iter().all(|&h| h == 1));
    }

    /// Timing is monotone in traffic: strictly more bytes never runs faster.
    fn timing_is_monotone_in_bytes(
        bytes_a in 1u64..1_000_000_000u64,
        extra in 1u64..1_000_000_000u64,
        eff in 0.05f64..1.0,
    ) {
        let model = TimingModel::new(presets::h100_nvl());
        let mut profile = ExecutionProfile::ideal("prop");
        profile.mem_efficiency = eff;
        let cost = |bytes: u64| KernelCost::builder(
            "prop",
            Precision::Fp64,
            LaunchConfig::cover_1d(1024, 256),
            AccessPattern::Stream,
        )
        .dram_traffic(bytes / 2, bytes / 2)
        .build();
        let t_a = model.estimate(&cost(bytes_a), &profile).seconds;
        let t_b = model.estimate(&cost(bytes_a + extra), &profile).seconds;
        prop_assert!(t_b >= t_a);
    }

    /// Lowering any efficiency never makes a kernel faster, and fast-math
    /// (cheaper transcendentals) never makes it slower.
    fn timing_is_monotone_in_efficiencies(
        mem_eff in 0.1f64..1.0,
        comp_eff in 0.1f64..1.0,
        sfu in 1.0f64..64.0,
        flops in 1u64..2_000_000_000u64,
    ) {
        let model = TimingModel::new(presets::mi300a());
        let cost = KernelCost::builder(
            "prop",
            Precision::Fp32,
            LaunchConfig::cover_1d(1 << 16, 256),
            AccessPattern::ComputeTiled,
        )
        .dram_traffic(1 << 20, 1 << 20)
        .flops(FlopCounts { fmas: flops / 2, transcendentals: flops / 10, ..Default::default() })
        .build();
        let mut base = ExecutionProfile::ideal("base");
        base.mem_efficiency = mem_eff;
        base.compute_efficiency = comp_eff;
        base.sfu_cost_flops = sfu;

        let mut slower = base.clone();
        slower.compute_efficiency = comp_eff * 0.5;
        prop_assert!(model.estimate(&cost, &slower).seconds >= model.estimate(&cost, &base).seconds);

        let mut fast_math = base.clone();
        fast_math.sfu_cost_flops = 1.0;
        prop_assert!(model.estimate(&cost, &fast_math).seconds <= model.estimate(&cost, &base).seconds);
    }

    /// FlopCounts::combine is commutative and scale distributes over totals.
    fn flop_counts_algebra(
        a in 0u64..1_000_000, m in 0u64..1_000_000, f in 0u64..1_000_000,
        t in 0u64..1_000_000, factor in 1u64..1000,
    ) {
        let x = FlopCounts { adds: a, muls: m, fmas: f, transcendentals: t, ..Default::default() };
        let y = FlopCounts { adds: m, muls: t, fmas: a, transcendentals: f, ..Default::default() };
        prop_assert_eq!(x.combine(&y), y.combine(&x));
        prop_assert_eq!(x.scale(factor).total(), x.total() * factor);
    }
}
