//! NCU-style profiling reports.
//!
//! Tables 2 and 3 of the paper are produced with NVIDIA Nsight Compute and
//! report, per kernel and per programming model: duration, compute (SM) and
//! memory throughput percentages, arithmetic intensity and achieved FLOP/s at
//! the L1/L2/device levels, registers per thread, and global load/store
//! counts. The simulator has no hardware counters, but every one of those
//! rows is derivable from the launch cost, the backend execution profile and
//! the simulated duration — which is what [`ProfileReport`] does.

use crate::intern::IStr;
use crate::isa::InstructionMix;
use crate::pool::PoolStats;
use crate::stats::KernelCost;
use crate::timing::{ExecutionProfile, LaunchTiming};
use gpu_spec::GpuSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// NCU reports the utilisation of the busiest pipe among several (ALU, FMA,
/// LSU, address). The simulator tracks only arithmetic issue time, so the
/// reported "Compute SM %" is scaled by this factor to account for the pipes
/// it does not model separately. Calibrated once against the CUDA stencil row
/// of the paper's Table 2 and then held fixed for every kernel and backend.
const PIPE_REPORT_FACTOR: f64 = 3.5;

/// A profiling report for one kernel launch on one backend, mirroring the
/// rows of the paper's Tables 2–3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Backend label ("Mojo", "CUDA", "HIP"). Interned: reports are derived
    /// per launch and cloning the label must not allocate.
    pub backend: IStr,
    /// Kernel name. Interned for the same reason.
    pub kernel: IStr,
    /// Kernel duration in milliseconds.
    pub duration_ms: f64,
    /// Compute (SM) throughput percentage.
    pub compute_sm_pct: f64,
    /// Memory throughput percentage.
    pub memory_pct: f64,
    /// Arithmetic intensity at the L1 level (FLOP/byte).
    pub l1_ai: f64,
    /// Arithmetic intensity at the L2 level (FLOP/byte).
    pub l2_ai: f64,
    /// Arithmetic intensity at the device-memory level (FLOP/byte).
    pub l3_ai: f64,
    /// Achieved floating-point performance (FLOP/s).
    pub perf_flops: f64,
    /// Registers allocated per thread.
    pub registers: u32,
    /// Global load instructions per thread.
    pub load_global: f64,
    /// Global store instructions per thread.
    pub store_global: f64,
    /// Achieved device-memory bandwidth in GB/s.
    pub achieved_bandwidth_gbs: f64,
}

impl ProfileReport {
    /// Builds a report from the launch cost, the backend profile, the
    /// simulated timing and the device description.
    pub fn derive(
        spec: &GpuSpec,
        cost: &KernelCost,
        profile: &ExecutionProfile,
        timing: &LaunchTiming,
    ) -> Self {
        let duration_s = timing.seconds.max(1e-12);
        let achieved_bw = cost.total_bytes() as f64 / duration_s;
        let memory_pct = 100.0 * achieved_bw / spec.peak_bandwidth_bytes_per_s();

        // Issue-time model for the compute pipes: warp-instructions divided by
        // the device's aggregate issue rate (4 schedulers per SM at the base
        // clock), scaled by PIPE_REPORT_FACTOR (see its doc comment).
        let mix = InstructionMix::derive(cost, profile);
        let warps = cost.launch.total_threads() as f64 / f64::from(spec.topology.simt_width);
        // The backend's issue overhead inflates the whole instruction stream
        // (extra moves, predication, spills), not just the address arithmetic
        // the mix itemises.
        let warp_instructions = warps * mix.total() * profile.issue_overhead;
        let issue_rate =
            f64::from(spec.topology.num_compute_units) * 4.0 * spec.topology.clock_ghz * 1e9;
        let issue_time = warp_instructions / issue_rate;
        let compute_sm_pct = (100.0 * issue_time * PIPE_REPORT_FACTOR / duration_s).min(98.0);

        let perf_flops = cost.flops.total() as f64 / duration_s;

        ProfileReport {
            backend: profile.backend.clone(),
            kernel: cost.kernel_name.clone(),
            duration_ms: timing.millis(),
            compute_sm_pct,
            memory_pct: memory_pct.min(98.0),
            l1_ai: cost.arithmetic_intensity_l1(),
            l2_ai: cost.arithmetic_intensity_l2(),
            l3_ai: cost.arithmetic_intensity_dram(),
            perf_flops,
            registers: profile.registers_per_thread,
            load_global: cost.loads_per_thread,
            store_global: cost.stores_per_thread,
            achieved_bandwidth_gbs: achieved_bw / 1e9,
        }
    }

    /// A `(arithmetic intensity, achieved FLOP/s)` point for the roofline plot
    /// (Fig. 2 of the paper), using device-level intensity.
    pub fn roofline_point(&self) -> (f64, f64) {
        (self.l3_ai, self.perf_flops)
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} / {}", self.backend, self.kernel)?;
        writeln!(f, "  Duration (ms)        {:>10.3}", self.duration_ms)?;
        writeln!(f, "  Compute SM (%)       {:>10.1}", self.compute_sm_pct)?;
        writeln!(f, "  Memory (%)           {:>10.1}", self.memory_pct)?;
        writeln!(f, "  L1 ai (FLOP/byte)    {:>10.2}", self.l1_ai)?;
        writeln!(f, "  L2 ai (FLOP/byte)    {:>10.2}", self.l2_ai)?;
        writeln!(f, "  L3 ai (FLOP/byte)    {:>10.2}", self.l3_ai)?;
        writeln!(f, "  Perf (FLOP/s)        {:>10.3e}", self.perf_flops)?;
        writeln!(f, "  Registers            {:>10}", self.registers)?;
        writeln!(f, "  Load Global (LDG)    {:>10.1}", self.load_global)?;
        write!(f, "  Store Global (STG)   {:>10.1}", self.store_global)
    }
}

/// Memory-system telemetry for one run window, derived from the process-wide
/// buffer pool's counters. NCU has no analogue for this table — it describes
/// the *simulator's* allocator behaviour (how much of the working set was
/// recycled versus freshly mapped), which is the steady-state contract the
/// memory architecture is built around.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Pool counter deltas over the observed window.
    pub pool: PoolStats,
}

impl MemoryReport {
    /// Snapshots the pool counters; subtract two snapshots with [`Self::since`]
    /// to report on a window.
    pub fn capture() -> Self {
        MemoryReport {
            pool: crate::pool::stats(),
        }
    }

    /// The telemetry accumulated between `earlier` and `self`.
    pub fn since(&self, earlier: &MemoryReport) -> Self {
        MemoryReport {
            pool: self.pool.since(&earlier.pool),
        }
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pool")?;
        writeln!(f, "  Checkouts            {:>10}", self.pool.checkouts)?;
        writeln!(f, "  Shelf hits           {:>10}", self.pool.hits)?;
        writeln!(f, "  Shelf misses         {:>10}", self.pool.misses)?;
        writeln!(
            f,
            "  Hit rate (%)         {:>10.1}",
            100.0 * self.pool.hit_rate()
        )?;
        writeln!(f, "  Recycled bytes       {:>10}", self.pool.recycled_bytes)?;
        writeln!(f, "  Fresh bytes          {:>10}", self.pool.fresh_bytes)?;
        write!(
            f,
            "  High water bytes     {:>10}",
            self.pool.high_water_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::LaunchConfig;
    use crate::stats::{AccessPattern, FlopCounts};
    use crate::timing::TimingModel;
    use gpu_spec::{presets, Precision};

    /// Cost of the L=512 FP64 seven-point stencil (paper Table 2 left half).
    fn stencil_cost() -> KernelCost {
        let l: u64 = 512;
        let elem = 8u64;
        let fetch = (l * l * l - 8 - 12 * (l - 2)) * elem;
        let write = (l - 2).pow(3) * elem;
        let interior = (l - 2).pow(3);
        KernelCost::builder(
            "laplacian",
            Precision::Fp64,
            LaunchConfig::new((512u32, 512u32, 1u32), (512u32, 1u32, 1u32)),
            AccessPattern::Stencil3D,
        )
        .dram_traffic(fetch, write)
        .l1_bytes(interior * 8 * elem) // 7 reads + 1 write per interior cell at L1
        .l2_bytes(interior * 4 * elem)
        .flops(FlopCounts {
            adds: interior * 6,
            muls: interior * 4,
            ..Default::default()
        })
        .loads_stores_per_thread(7.0, 1.0)
        .build()
    }

    fn cuda_like() -> ExecutionProfile {
        let mut p = ExecutionProfile::ideal("CUDA");
        p.registers_per_thread = 21;
        p.mem_efficiency = 0.56;
        p.issue_overhead = 1.0;
        p.constant_loads_per_thread = 3;
        p
    }

    fn mojo_like() -> ExecutionProfile {
        let mut p = ExecutionProfile::ideal("Mojo");
        p.registers_per_thread = 24;
        p.mem_efficiency = 0.49;
        p.issue_overhead = 1.6;
        p.constant_loads_per_thread = 1;
        p
    }

    #[test]
    fn stencil_report_reproduces_table2_shape() {
        let spec = presets::h100_nvl();
        let model = TimingModel::new(spec.clone());
        let cost = stencil_cost();

        let cuda = cuda_like();
        let mojo = mojo_like();
        let t_cuda = model.estimate(&cost, &cuda);
        let t_mojo = model.estimate(&cost, &mojo);
        let r_cuda = ProfileReport::derive(&spec, &cost, &cuda, &t_cuda);
        let r_mojo = ProfileReport::derive(&spec, &cost, &mojo, &t_mojo);

        // Table 2 shape: Mojo is slower, uses more registers, has a *higher*
        // Compute SM % and a *lower* Memory %, identical LDG/STG, and the same
        // arithmetic intensities.
        assert!(r_mojo.duration_ms > r_cuda.duration_ms);
        assert!(r_mojo.registers > r_cuda.registers);
        assert!(r_mojo.compute_sm_pct > r_cuda.compute_sm_pct);
        assert!(r_mojo.memory_pct < r_cuda.memory_pct);
        assert_eq!(r_mojo.load_global, r_cuda.load_global);
        assert_eq!(r_mojo.store_global, r_cuda.store_global);
        assert!((r_mojo.l1_ai - r_cuda.l1_ai).abs() < 1e-12);

        // Intensities must be ordered L1 < L2 < L3 as in the paper.
        assert!(r_cuda.l1_ai < r_cuda.l2_ai);
        assert!(r_cuda.l2_ai < r_cuda.l3_ai);

        // CUDA's duration should land in the vicinity of the paper's 0.96 ms.
        assert!(
            r_cuda.duration_ms > 0.7 && r_cuda.duration_ms < 1.3,
            "CUDA stencil duration {} ms out of expected range",
            r_cuda.duration_ms
        );

        // Compute SM percentages in a plausible NCU range.
        assert!(r_cuda.compute_sm_pct > 20.0 && r_cuda.compute_sm_pct < 75.0);
        assert!(r_mojo.compute_sm_pct > r_cuda.compute_sm_pct);
    }

    #[test]
    fn roofline_point_uses_dram_intensity() {
        let spec = presets::h100_nvl();
        let model = TimingModel::new(spec.clone());
        let cost = stencil_cost();
        let profile = cuda_like();
        let timing = model.estimate(&cost, &profile);
        let report = ProfileReport::derive(&spec, &cost, &profile, &timing);
        let (ai, flops) = report.roofline_point();
        assert!((ai - cost.arithmetic_intensity_dram()).abs() < 1e-12);
        assert!(flops > 0.0);
        // A memory-bound stencil must sit below the device roofline.
        assert!(flops <= spec.roofline_flops(ai, Precision::Fp64) * 1.05);
    }

    #[test]
    fn percentages_are_capped() {
        let spec = presets::test_device();
        let model = TimingModel::new(spec.clone());
        let cost = stencil_cost();
        let mut profile = ExecutionProfile::ideal("ideal");
        profile.mem_efficiency = 1.0;
        let timing = model.estimate(&cost, &profile);
        let report = ProfileReport::derive(&spec, &cost, &profile, &timing);
        assert!(report.memory_pct <= 98.0);
        assert!(report.compute_sm_pct <= 98.0);
    }

    #[test]
    fn display_contains_all_rows() {
        let spec = presets::h100_nvl();
        let model = TimingModel::new(spec.clone());
        let cost = stencil_cost();
        let profile = cuda_like();
        let timing = model.estimate(&cost, &profile);
        let report = ProfileReport::derive(&spec, &cost, &profile, &timing);
        let s = report.to_string();
        for needle in [
            "Duration",
            "Compute SM",
            "Memory",
            "L1 ai",
            "Registers",
            "Load Global",
            "Store Global",
        ] {
            assert!(s.contains(needle), "missing row {needle}");
        }
    }

    #[test]
    fn memory_report_windows_subtract_counters() {
        let before = MemoryReport::capture();
        // Force at least one pool checkout so the window is non-trivial.
        let v: crate::pool::PooledVec<u8> = crate::pool::PooledVec::with_capacity(1 << 14);
        drop(v);
        let delta = MemoryReport::capture().since(&before);
        assert!(delta.pool.checkouts >= 1);
        let rendered = delta.to_string();
        for needle in ["Checkouts", "Hit rate", "Recycled bytes", "High water"] {
            assert!(rendered.contains(needle), "missing row {needle}");
        }
    }
}
