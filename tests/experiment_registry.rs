//! Integration test: every experiment in the registry runs end-to-end and
//! produces console output plus CSV data.

use mojo_hpc::report::{run_experiment, ExperimentId};

#[test]
fn every_registered_experiment_produces_output() {
    // fig3/fig6/fig7/table5 are exercised by their own unit tests and by the
    // bench harness; here we spot-check a representative subset end-to-end so
    // the integration test stays fast in debug builds.
    for id in [
        ExperimentId::Table1,
        ExperimentId::Fig2,
        ExperimentId::Table2,
        ExperimentId::Fig4,
        ExperimentId::Table3,
        ExperimentId::Fig5,
        ExperimentId::Table4,
    ] {
        let report = run_experiment(id);
        assert_eq!(report.id, id.as_str());
        assert!(!report.text.trim().is_empty(), "{id} produced no text");
        assert!(!report.tables.is_empty(), "{id} produced no CSV tables");
        for (_, table) in &report.tables {
            assert!(!table.rows.is_empty(), "{id} CSV has no rows");
        }
    }
}

#[test]
fn experiment_csv_files_land_in_the_experiments_directory() {
    let report = run_experiment(ExperimentId::Table1);
    let paths = report.write_csv_files().expect("write CSVs");
    assert!(!paths.is_empty());
    for path in paths {
        assert!(path.exists());
        assert!(path.to_string_lossy().contains("experiments"));
    }
}
