//! Fault-tolerant shard dispatcher: supervised worker execution above the
//! shard/merge protocol (DESIGN.md §12).
//!
//! `crate::shard` defines *what* a worker computes (`--shard I/N`, one JSON
//! shard document on stdout) and how documents merge byte-identically.
//! This module owns *how workers run*: it supersedes the bare
//! spawn-and-wait fan-out with a supervision loop that keeps a fleet of
//! launchers busy and survives individual worker failures without
//! corrupting the merged result.
//!
//! The pieces:
//!
//! * [`Launcher`] — a pluggable way of turning one [`WorkerTask`] into a
//!   spawned process. [`LocalLauncher`] runs worker subprocesses of an
//!   executable on this host (the default); [`TemplateLauncher`] expands a
//!   command template from a [`HostManifest`] (`ssh {host} -- {exe} …` for
//!   cluster dispatch, or any argv — `cat shard_{shard}.json` replays
//!   pre-computed documents); [`slurm_job_array_script`] generates a
//!   SLURM-style job-array batch file instead of running anything.
//! * [`DispatchPolicy`] — per-worker wall-clock timeout, bounded retry with
//!   exponential backoff and deterministic jitter, and straggler
//!   speculation.
//! * [`dispatch`] — the engine: launch every shard, capture stdout/stderr,
//!   reap workers that exceed the timeout, retry failures (re-sharding the
//!   dead worker's range onto the healthiest launcher with a free slot),
//!   and optionally launch speculative duplicates of the slowest
//!   outstanding shard — first completion wins, the loser is killed.
//!
//! Failure handling is all-or-nothing: if any shard exhausts its attempt
//! budget the whole dispatch fails with an error naming each failed shard,
//! its attempt count and the tail of its captured stderr, plus the ranges
//! that *did* complete — and the coordinator writes no output files. The
//! merged result can never silently degrade, because the
//! [`ShardDocument`] tiling invariants reject overlapping or missing
//! ranges regardless of which attempt produced each document.

use crate::chaos;
use crate::report::{json_array, json_field, json_opt_field, json_str, json_u64};
use crate::shard::ShardDocument;
use serde::value::Value;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Version tag of the host-manifest schema.
pub const HOST_MANIFEST_SCHEMA: u64 = 1;

/// How many trailing stderr lines a failure report quotes per attempt.
pub const STDERR_TAIL_LINES: usize = 10;

/// Floor on the straggler threshold: a shard is never speculated before it
/// has run at least this long, however fast its siblings were.
const SPECULATE_FLOOR: Duration = Duration::from_millis(200);

/// Supervision loop poll interval.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// One shard's worth of work: the arguments a worker needs to compute shard
/// `shard` of `shards` (the `--shard I/N` flag is already part of `args`).
#[derive(Debug, Clone)]
pub struct WorkerTask {
    /// The shard index this task computes (the document must match it).
    pub shard: u64,
    /// Total shard count of the partition.
    pub shards: u64,
    /// Worker argv, excluding the program itself.
    pub args: Vec<String>,
}

/// A pluggable way of running one worker attempt.
///
/// Implementations only build the [`Command`]; the dispatcher owns
/// supervision (capture, timeout, retry, speculation) uniformly across
/// launcher kinds.
pub trait Launcher {
    /// Human-readable name used in diagnostics (`local`, `ssh node-a`).
    fn describe(&self) -> String;
    /// How many workers may run concurrently through this launcher.
    fn slots(&self) -> usize;
    /// Builds the command executing one worker attempt of `task`.
    fn command(&self, task: &WorkerTask) -> Command;
}

/// Runs worker subprocesses of an executable on this host.
#[derive(Debug, Clone)]
pub struct LocalLauncher {
    exe: PathBuf,
    slots: usize,
}

impl LocalLauncher {
    /// A launcher spawning `exe` with `slots` concurrent workers.
    pub fn new(exe: impl Into<PathBuf>, slots: usize) -> LocalLauncher {
        LocalLauncher {
            exe: exe.into(),
            slots: slots.max(1),
        }
    }

    /// A launcher re-invoking the current executable — the coordinator's
    /// default, guaranteeing workers speak the same schema.
    pub fn current_exe(slots: usize) -> Result<LocalLauncher, String> {
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot locate the current executable: {e}"))?;
        Ok(LocalLauncher::new(exe, slots))
    }
}

impl Launcher for LocalLauncher {
    fn describe(&self) -> String {
        "local".to_string()
    }

    fn slots(&self) -> usize {
        self.slots
    }

    fn command(&self, task: &WorkerTask) -> Command {
        let mut cmd = Command::new(&self.exe);
        cmd.args(&task.args);
        cmd
    }
}

/// One host entry of a [`HostManifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostEntry {
    /// Host name substituted for `{host}` in the command template.
    pub name: String,
    /// Concurrent worker slots on this host.
    pub slots: u64,
}

/// A JSON host-manifest file driving the template launcher and the SLURM
/// generator: a command template plus the hosts (and their slot counts) the
/// dispatcher may place workers on.
///
/// ```json
/// {
///   "schema": 1,
///   "template": ["ssh", "{host}", "--", "mojo-hpc"],
///   "hosts": [
///     { "name": "node-a", "slots": 2 },
///     { "name": "node-b", "slots": 4 }
///   ]
/// }
/// ```
///
/// Template placeholders: `{host}` (the host entry's name), `{exe}` (the
/// coordinator's own executable path), `{shard}` and `{shards}` (the
/// task's indices). The worker's own arguments are appended after the
/// expanded template — unless the template mentions `{shard}`, in which
/// case the template is taken as the complete command (the replay shape:
/// `["cat", "shard_{shard}.json"]`). When `template` is absent the SSH
/// default `["ssh", "{host}", "--", "{exe}"]` applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostManifest {
    /// Command template (argv prefix, or the whole argv with `{shard}`).
    pub template: Vec<String>,
    /// The dispatchable hosts, each with a slot budget.
    pub hosts: Vec<HostEntry>,
}

/// The default command template when a manifest omits `template`.
pub const DEFAULT_TEMPLATE: [&str; 4] = ["ssh", "{host}", "--", "{exe}"];

impl HostManifest {
    /// The manifest as a JSON value tree.
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("schema".to_string(), Value::U64(HOST_MANIFEST_SCHEMA)),
            (
                "template".to_string(),
                Value::Array(self.template.iter().cloned().map(Value::Str).collect()),
            ),
            (
                "hosts".to_string(),
                Value::Array(
                    self.hosts
                        .iter()
                        .map(|h| {
                            Value::Object(vec![
                                ("name".to_string(), Value::Str(h.name.clone())),
                                ("slots".to_string(), Value::U64(h.slots)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The manifest as pretty-printed JSON text (trailing newline included).
    pub fn to_json_pretty(&self) -> String {
        let mut json =
            serde_json::to_string_pretty(&self.to_json_value()).expect("manifest serialises");
        json.push('\n');
        json
    }

    /// Parses a manifest back from its JSON value tree, validating it.
    pub fn from_json_value(value: &Value) -> Result<HostManifest, String> {
        let schema = json_u64(json_field(value, "schema")?)?;
        if schema != HOST_MANIFEST_SCHEMA {
            return Err(format!(
                "unsupported host manifest schema {schema} (this binary speaks \
                 {HOST_MANIFEST_SCHEMA})"
            ));
        }
        let template = match json_opt_field(value, "template") {
            None | Some(Value::Null) => DEFAULT_TEMPLATE.iter().map(|s| s.to_string()).collect(),
            Some(other) => json_array(other)?
                .iter()
                .map(|item| Ok(json_str(item)?.to_string()))
                .collect::<Result<_, String>>()?,
        };
        let hosts = json_array(json_field(value, "hosts")?)?
            .iter()
            .map(|entry| {
                Ok(HostEntry {
                    name: json_str(json_field(entry, "name")?)?.to_string(),
                    slots: json_u64(json_field(entry, "slots")?)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let manifest = HostManifest { template, hosts };
        manifest.validate()?;
        Ok(manifest)
    }

    /// Parses a manifest from JSON text.
    pub fn parse(text: &str) -> Result<HostManifest, String> {
        let value: Value = serde_json::from_str(text)
            .map_err(|e| format!("host manifest is not valid JSON: {e}"))?;
        HostManifest::from_json_value(&value)
    }

    /// Loads a manifest file.
    pub fn load(path: &Path) -> Result<HostManifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read host manifest {}: {e}", path.display()))?;
        HostManifest::parse(&text).map_err(|e| format!("host manifest {}: {e}", path.display()))
    }

    /// Writes the manifest as a JSON file.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json_pretty())
    }

    /// Checks the structural invariants: a non-empty template, at least one
    /// host, every host named uniquely with at least one slot.
    pub fn validate(&self) -> Result<(), String> {
        if self.template.is_empty() {
            return Err("host manifest: the command template must not be empty".to_string());
        }
        if self.hosts.is_empty() {
            return Err("host manifest: at least one host is required".to_string());
        }
        for (i, host) in self.hosts.iter().enumerate() {
            if host.name.is_empty() {
                return Err(format!("host manifest: host {i} has an empty name"));
            }
            if host.slots == 0 {
                return Err(format!(
                    "host manifest: host '{}' has 0 slots (need at least 1)",
                    host.name
                ));
            }
            if self.hosts[..i].iter().any(|h| h.name == host.name) {
                return Err(format!(
                    "host manifest: host '{}' appears more than once",
                    host.name
                ));
            }
        }
        Ok(())
    }

    /// Builds one [`TemplateLauncher`] per host, resolving `{exe}` against
    /// the current executable.
    pub fn launchers(&self) -> Result<Vec<Box<dyn Launcher>>, String> {
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot locate the current executable: {e}"))?;
        self.validate()?;
        Ok(self
            .hosts
            .iter()
            .map(|host| {
                Box::new(TemplateLauncher {
                    host: host.name.clone(),
                    slots: host.slots as usize,
                    template: self.template.clone(),
                    exe: exe.clone(),
                }) as Box<dyn Launcher>
            })
            .collect())
    }
}

/// Runs workers through an expanded command template — one launcher per
/// manifest host. See [`HostManifest`] for the template grammar.
#[derive(Debug, Clone)]
pub struct TemplateLauncher {
    host: String,
    slots: usize,
    template: Vec<String>,
    exe: PathBuf,
}

impl TemplateLauncher {
    /// Expands the template into the full argv for `task`.
    fn argv(&self, task: &WorkerTask) -> Vec<String> {
        let exe = self.exe.display().to_string();
        let complete = self.template.iter().any(|el| el.contains("{shard}"));
        let mut argv: Vec<String> = self
            .template
            .iter()
            .map(|el| {
                el.replace("{host}", &self.host)
                    .replace("{exe}", &exe)
                    .replace("{shard}", &task.shard.to_string())
                    .replace("{shards}", &task.shards.to_string())
            })
            .collect();
        if !complete {
            argv.extend(task.args.iter().cloned());
        }
        argv
    }
}

impl Launcher for TemplateLauncher {
    fn describe(&self) -> String {
        format!("host {}", self.host)
    }

    fn slots(&self) -> usize {
        self.slots
    }

    fn command(&self, task: &WorkerTask) -> Command {
        let argv = self.argv(task);
        let mut cmd = Command::new(&argv[0]);
        cmd.args(&argv[1..]);
        cmd
    }
}

/// Quotes one argument for a POSIX shell script.
fn shell_quote(arg: &str) -> String {
    let safe = |c: char| c.is_ascii_alphanumeric() || "-_./=,:".contains(c);
    if !arg.is_empty() && arg.chars().all(safe) {
        arg.to_string()
    } else {
        format!("'{}'", arg.replace('\'', "'\\''"))
    }
}

/// Generates a SLURM-style job-array batch script running `workers` shard
/// workers of `program base_args… --shard $SLURM_ARRAY_TASK_ID/workers`,
/// each redirecting its shard document to `shard_<index>.json`.
///
/// `manifest` optionally pins the node list (`#SBATCH --nodelist`). The
/// script is a generator artifact — the dispatcher never submits it; merge
/// the collected documents with a replay manifest (template
/// `["cat", "shard_{shard}.json"]`), as the script's header comments
/// describe.
pub fn slurm_job_array_script(
    program: &str,
    base_args: &[String],
    workers: u64,
    manifest: Option<&HostManifest>,
) -> String {
    let mut command: Vec<String> = vec![program.to_string()];
    command.extend(base_args.iter().cloned());
    let command: String = command
        .iter()
        .map(|arg| shell_quote(arg))
        .collect::<Vec<_>>()
        .join(" ");
    let mut script = String::new();
    script.push_str("#!/bin/bash\n");
    script.push_str(&format!(
        "# Generated by `mojo-hpc shard … --launcher slurm`: one array task per\n\
         # shard, {workers} shard(s) total. Submit with `sbatch <this file>`.\n\
         # Each task writes its shard document to shard_<index>.json. Collect the\n\
         # files onto one host and merge them byte-identically with a replay\n\
         # manifest (README \"Cluster dispatch\"):\n\
         #   {{ \"schema\": 1, \"template\": [\"cat\", \"shard_{{shard}}.json\"],\n\
         #     \"hosts\": [{{\"name\": \"replay\", \"slots\": {workers}}}] }}\n"
    ));
    script.push_str("#SBATCH --job-name=mojo-hpc-shard\n");
    script.push_str(&format!("#SBATCH --array=0-{}\n", workers - 1));
    script.push_str("#SBATCH --output=shard_%a.err\n");
    if let Some(manifest) = manifest {
        let nodes: Vec<&str> = manifest.hosts.iter().map(|h| h.name.as_str()).collect();
        script.push_str(&format!("#SBATCH --nodelist={}\n", nodes.join(",")));
    }
    script.push_str("set -euo pipefail\n");
    script.push_str(&format!(
        "exec {command} --shard \"${{SLURM_ARRAY_TASK_ID}}/{workers}\" \
         > \"shard_${{SLURM_ARRAY_TASK_ID}}.json\"\n"
    ));
    script
}

/// Retry, timeout and speculation policy of one dispatch.
#[derive(Debug, Clone)]
pub struct DispatchPolicy {
    /// Maximum attempts per shard before the dispatch fails (0 is
    /// normalised to 1: a single attempt, no retry — the degraded lane that
    /// still reports which ranges completed).
    pub max_attempts: u32,
    /// Per-attempt wall-clock timeout; a worker exceeding it is killed and
    /// the attempt counts as failed.
    pub timeout: Option<Duration>,
    /// Launch speculative duplicates of straggling shards (first completion
    /// wins, the loser is reaped).
    pub speculate: bool,
    /// First retry delay; doubles per failure (exponential backoff).
    pub backoff_base: Duration,
    /// Upper bound on the backoff delay.
    pub backoff_cap: Duration,
}

impl Default for DispatchPolicy {
    fn default() -> Self {
        DispatchPolicy {
            max_attempts: 3,
            timeout: None,
            speculate: false,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

impl DispatchPolicy {
    /// A single attempt per shard, no timeout, no speculation — the policy
    /// [`crate::shard::run_workers`] keeps for backward compatibility.
    pub fn no_retry() -> DispatchPolicy {
        DispatchPolicy {
            max_attempts: 1,
            ..DispatchPolicy::default()
        }
    }

    /// The effective attempt budget (`max_attempts` with 0 meaning 1).
    pub fn attempt_budget(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// The delay before retrying after `failures` failed attempts:
    /// exponential backoff from [`backoff_base`](Self::backoff_base) with
    /// deterministic ±25% jitter (hashed from the shard and failure count,
    /// so concurrent retries do not stampede in lockstep), capped at
    /// [`backoff_cap`](Self::backoff_cap).
    pub fn backoff(&self, shard: u64, failures: u32) -> Duration {
        let doublings = failures.saturating_sub(1).min(16);
        let base = self
            .backoff_base
            .saturating_mul(1u32 << doublings)
            .min(self.backoff_cap);
        // Deterministic jitter in [0.75, 1.25): an FNV-1a hash of
        // (shard, failures) mapped onto the factor range.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in shard.to_le_bytes().iter().chain(&failures.to_le_bytes()) {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let jitter = 0.75 + (h >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        base.mul_f64(jitter)
    }
}

/// Counters describing what one dispatch did, reported on stderr by the
/// coordinator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchSummary {
    /// Worker attempts launched in total.
    pub attempts: u64,
    /// Attempts beyond the first per shard that were retries of a failure.
    pub retries: u64,
    /// Speculative duplicate attempts launched.
    pub speculative: u64,
    /// Attempts killed for exceeding the wall-clock timeout.
    pub timeouts: u64,
    /// Losing attempts killed after their shard completed elsewhere.
    pub reaped: u64,
}

impl DispatchSummary {
    /// One-line rendering for the coordinator's stderr diagnostics.
    pub fn render(&self) -> String {
        format!(
            "{} attempt(s), {} retried, {} speculative, {} timed out, {} reaped",
            self.attempts, self.retries, self.speculative, self.timeouts, self.reaped
        )
    }
}

/// One failed attempt's record: what happened and what the worker said.
#[derive(Debug, Clone)]
struct FailureRecord {
    attempt: u32,
    launcher: String,
    error: String,
    stderr_tail: Vec<String>,
}

/// A running worker attempt under supervision.
struct Active {
    task: usize,
    attempt: u32,
    launcher: usize,
    speculative: bool,
    child: Child,
    started: Instant,
    deadline: Option<Instant>,
    stdout: Option<JoinHandle<Vec<u8>>>,
    stderr: Option<JoinHandle<Vec<u8>>>,
}

impl Active {
    /// Joins the pipe-drain threads and returns (stdout, stderr) bytes.
    fn collect_output(&mut self) -> (Vec<u8>, Vec<u8>) {
        let stdout = self
            .stdout
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or_default();
        let stderr = self
            .stderr
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or_default();
        (stdout, stderr)
    }

    /// Kills the child (ignoring already-dead errors), reaps it, joins the
    /// drain threads, and returns whatever the worker managed to print.
    /// Every kill path goes through here so a killed attempt can never leave
    /// a zombie process or a leaked drain thread behind — and never loses
    /// the diagnostics the worker wrote before dying.
    fn kill_and_collect(&mut self) -> (Vec<u8>, Vec<u8>) {
        self.child.kill().ok();
        self.child.wait().ok();
        self.collect_output()
    }
}

impl Drop for Active {
    /// Backstop: an attempt dropped on an unexpected path (e.g. a panic
    /// unwinding through the engine) is still killed, reaped, and its drain
    /// threads joined. On every normal path `collect_output` has already
    /// taken both handles and this is a no-op.
    fn drop(&mut self) {
        if self.stdout.is_some() || self.stderr.is_some() {
            self.child.kill().ok();
            self.child.wait().ok();
            self.collect_output();
        }
    }
}

/// Supervision state of one task.
#[derive(Debug)]
struct TaskState {
    /// Completed successfully: the winning document.
    doc: Option<ShardDocument>,
    /// How long the winning attempt ran (straggler baseline).
    duration: Option<Duration>,
    /// Every failed attempt so far.
    failures: Vec<FailureRecord>,
    /// Attempts launched so far (sets the next attempt number).
    launched: u32,
    /// When the next retry may launch (`None` = not awaiting launch).
    ready_at: Option<Instant>,
    /// Attempt budget exhausted; the dispatch will fail.
    exhausted: bool,
    /// Launcher of the most recent failure (retries prefer a different one).
    last_launcher: Option<usize>,
}

/// Drains one pipe to a byte buffer on a helper thread, so a chatty worker
/// can never deadlock against a full pipe while the supervisor polls.
fn drain<R: Read + Send + 'static>(pipe: Option<R>) -> Option<JoinHandle<Vec<u8>>> {
    pipe.map(|mut pipe| {
        std::thread::spawn(move || {
            let mut buf = Vec::new();
            pipe.read_to_end(&mut buf).ok();
            buf
        })
    })
}

/// The last [`STDERR_TAIL_LINES`] lines of a worker's captured stderr.
fn stderr_tail(bytes: &[u8]) -> Vec<String> {
    let text = String::from_utf8_lossy(bytes);
    let lines: Vec<&str> = text.lines().collect();
    lines
        .iter()
        .skip(lines.len().saturating_sub(STDERR_TAIL_LINES))
        .map(|l| l.to_string())
        .collect()
}

/// The dispatch engine. Runs every task to completion (or exhaustion)
/// across `launchers` under `policy`, returning the shard documents in task
/// order plus the attempt accounting.
///
/// On failure the error names every exhausted shard with its attempt count
/// and stderr tail, and lists the ranges that completed — the caller
/// reports it and exits nonzero without writing partial output.
pub fn dispatch(
    launchers: &[Box<dyn Launcher>],
    tasks: &[WorkerTask],
    policy: &DispatchPolicy,
) -> Result<(Vec<ShardDocument>, DispatchSummary), String> {
    if launchers.is_empty() {
        return Err("dispatch: no launchers configured".to_string());
    }
    if tasks.is_empty() {
        return Err("dispatch: no tasks to run".to_string());
    }
    let mut engine = Engine {
        launchers,
        tasks,
        policy,
        states: tasks
            .iter()
            .map(|_| TaskState {
                doc: None,
                duration: None,
                failures: Vec::new(),
                launched: 0,
                ready_at: Some(Instant::now()),
                exhausted: false,
                last_launcher: None,
            })
            .collect(),
        active: Vec::new(),
        launcher_failures: vec![0u64; launchers.len()],
        summary: DispatchSummary::default(),
        winner_stderr: vec![None; tasks.len()],
    };
    engine.run()
}

/// Internal supervision state of one [`dispatch`] call.
struct Engine<'a> {
    launchers: &'a [Box<dyn Launcher>],
    tasks: &'a [WorkerTask],
    policy: &'a DispatchPolicy,
    states: Vec<TaskState>,
    active: Vec<Active>,
    /// Failures attributed to each launcher (health signal: retries prefer
    /// the launcher with the fewest).
    launcher_failures: Vec<u64>,
    summary: DispatchSummary,
    /// The winning attempt's captured stderr per task, relayed after the
    /// dispatch so diagnostics stay visible exactly once.
    winner_stderr: Vec<Option<Vec<u8>>>,
}

impl Engine<'_> {
    fn run(&mut self) -> Result<(Vec<ShardDocument>, DispatchSummary), String> {
        loop {
            self.launch_ready();
            if self.policy.speculate {
                self.launch_speculative();
            }
            self.poll_active();
            let all_settled = self.states.iter().all(|s| s.doc.is_some() || s.exhausted);
            if all_settled && self.active.is_empty() {
                break;
            }
            // An exhausted task means the dispatch will fail; pending
            // retries of other tasks are pointless work, but in-flight
            // attempts still drain so "completed before failure" is maximal.
            if self.states.iter().any(|s| s.exhausted) && self.active.is_empty() {
                break;
            }
            std::thread::sleep(POLL_INTERVAL);
        }
        self.finish()
    }

    /// Number of active attempts currently placed on `launcher`.
    fn active_on(&self, launcher: usize) -> usize {
        self.active
            .iter()
            .filter(|a| a.launcher == launcher)
            .count()
    }

    /// Picks the launcher for the next attempt of `task`: a free slot,
    /// preferring (in order) not the launcher that just failed the task,
    /// fewest recorded failures (health), fewest active workers.
    fn pick_launcher(&self, task: usize) -> Option<usize> {
        let avoid = self.states[task].last_launcher;
        (0..self.launchers.len())
            .filter(|&l| self.active_on(l) < self.launchers[l].slots())
            .min_by_key(|&l| {
                (
                    (Some(l) == avoid && self.launchers.len() > 1) as u64,
                    self.launcher_failures[l],
                    self.active_on(l) as u64,
                    l as u64,
                )
            })
    }

    /// Spawns one attempt of `task` on `launcher`. A spawn error is
    /// recorded as a failed attempt (the launcher may be dead — retries
    /// will prefer its peers).
    fn launch(&mut self, task: usize, launcher: usize, speculative: bool) {
        let state = &mut self.states[task];
        let attempt = state.launched + 1;
        state.launched = attempt;
        state.ready_at = None;
        self.summary.attempts += 1;
        if speculative {
            self.summary.speculative += 1;
        } else if state.failures.len() as u32 == attempt - 1 && attempt > 1 {
            self.summary.retries += 1;
        }
        let spec = &self.tasks[task];
        let mut cmd = self.launchers[launcher].command(spec);
        cmd.stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .stdin(Stdio::null())
            .env(chaos::ATTEMPT_ENV, attempt.to_string());
        match cmd.spawn() {
            Ok(mut child) => {
                let stdout = drain(child.stdout.take());
                let stderr = drain(child.stderr.take());
                let started = Instant::now();
                self.active.push(Active {
                    task,
                    attempt,
                    launcher,
                    speculative,
                    child,
                    started,
                    deadline: self.policy.timeout.map(|t| started + t),
                    stdout,
                    stderr,
                });
            }
            Err(e) => {
                // No worker ran, so there is no captured stderr; synthesise
                // a tail naming the launcher and OS error so exhausted-retry
                // reports stay uniform across the exit/timeout/spawn paths.
                let tail = vec![format!(
                    "(no worker output: spawn through launcher '{}' failed: {e})",
                    self.launchers[launcher].describe()
                )];
                self.record_failure(
                    task,
                    attempt,
                    launcher,
                    format!("failed to spawn worker: {e}"),
                    tail,
                );
            }
        }
    }

    /// Launches every pending task whose backoff delay has elapsed and for
    /// which a slot is free.
    fn launch_ready(&mut self) {
        let failing = self.states.iter().any(|s| s.exhausted);
        let now = Instant::now();
        for task in 0..self.states.len() {
            let ready = match self.states[task].ready_at {
                Some(at) => at <= now,
                None => false,
            };
            if !ready || failing {
                continue;
            }
            if let Some(launcher) = self.pick_launcher(task) {
                self.launch(task, launcher, false);
            }
        }
    }

    /// Launches a speculative duplicate of the slowest outstanding shard
    /// once every other shard is done or running: the straggler must have
    /// run at least twice the median completed duration (and the
    /// [`SPECULATE_FLOOR`]), have exactly one active attempt, and a free
    /// slot must exist — preferably on a different launcher.
    fn launch_speculative(&mut self) {
        let pending = self
            .states
            .iter()
            .any(|s| s.ready_at.is_some() || s.exhausted);
        if pending {
            return;
        }
        let mut done: Vec<Duration> = self.states.iter().filter_map(|s| s.duration).collect();
        if done.is_empty() {
            return;
        }
        done.sort();
        let median = done[done.len() / 2];
        let threshold = (median * 2).max(SPECULATE_FLOOR);
        let now = Instant::now();
        // The slowest straggler with a single active attempt.
        let straggler = self
            .active
            .iter()
            .filter(|a| {
                !a.speculative
                    && self.states[a.task].doc.is_none()
                    && now.duration_since(a.started) > threshold
                    && self.active.iter().filter(|b| b.task == a.task).count() == 1
            })
            .max_by_key(|a| now.duration_since(a.started));
        let Some((task, running_on)) = straggler.map(|a| (a.task, a.launcher)) else {
            return;
        };
        if self.states[task].launched > self.policy.attempt_budget() {
            // Never burn more than one attempt beyond the budget on
            // speculation; the straggler may still finish on its own.
            return;
        }
        let choice = (0..self.launchers.len())
            .filter(|&l| self.active_on(l) < self.launchers[l].slots())
            .min_by_key(|&l| {
                (
                    (l == running_on && self.launchers.len() > 1) as u64,
                    self.launcher_failures[l],
                    self.active_on(l) as u64,
                    l as u64,
                )
            });
        if let Some(launcher) = choice {
            self.launch(task, launcher, true);
        }
    }

    /// Records one failed attempt and schedules the retry (or marks the
    /// task exhausted once the budget is spent and nothing else is still
    /// trying).
    fn record_failure(
        &mut self,
        task: usize,
        attempt: u32,
        launcher: usize,
        error: String,
        stderr_tail_lines: Vec<String>,
    ) {
        self.launcher_failures[launcher] += 1;
        let still_running = self.active.iter().any(|a| a.task == task);
        // Relay the failure (and the attempt's stderr tail) live, in attempt
        // order: a retried-and-recovered run would otherwise swallow the
        // failed attempt's diagnostics entirely — the final failure report
        // only renders when the whole dispatch fails.
        let spec = &self.tasks[task];
        eprintln!(
            "dispatch: shard {}/{} attempt {attempt} [{}] failed: {error}",
            spec.shard,
            spec.shards,
            self.launchers[launcher].describe()
        );
        for line in &stderr_tail_lines {
            eprintln!("dispatch:   stderr: {line}");
        }
        let state = &mut self.states[task];
        state.failures.push(FailureRecord {
            attempt,
            launcher: self.launchers[launcher].describe(),
            error,
            stderr_tail: stderr_tail_lines,
        });
        state.last_launcher = Some(launcher);
        if state.doc.is_some() || still_running {
            // The shard completed elsewhere, or another attempt is still in
            // flight — nothing to schedule.
            return;
        }
        let failures = state.failures.len() as u32;
        if failures >= self.policy.attempt_budget() {
            state.exhausted = true;
            state.ready_at = None;
        } else {
            state.ready_at =
                Some(Instant::now() + self.policy.backoff(self.tasks[task].shard, failures));
        }
    }

    /// Handles one finished attempt: validate the document on success, or
    /// record the failure.
    fn settle(&mut self, mut attempt: Active, status: std::process::ExitStatus) {
        let (stdout, stderr) = attempt.collect_output();
        let task = attempt.task;
        if self.states[task].doc.is_some() {
            // A duplicate finishing after the winner: drop it quietly.
            self.summary.reaped += 1;
            return;
        }
        let outcome = if !status.success() {
            Err(format!("worker exited with {status}"))
        } else {
            match std::str::from_utf8(&stdout) {
                Err(_) => Err("worker stdout is not UTF-8".to_string()),
                Ok(text) => ShardDocument::parse(text).and_then(|doc| {
                    if doc.manifest.shard != self.tasks[task].shard {
                        Err(format!(
                            "worker returned a document for shard {} (expected {})",
                            doc.manifest.shard, self.tasks[task].shard
                        ))
                    } else {
                        Ok(doc)
                    }
                }),
            }
        };
        match outcome {
            Ok(doc) => {
                let state = &mut self.states[task];
                state.doc = Some(doc);
                state.duration = Some(attempt.started.elapsed());
                state.ready_at = None;
                self.winner_stderr[task] = Some(stderr);
                // Reap every other attempt of the now-complete task.
                let mut reaped = Vec::new();
                let mut keep = Vec::with_capacity(self.active.len());
                for active in self.active.drain(..) {
                    if active.task == task {
                        reaped.push(active);
                    } else {
                        keep.push(active);
                    }
                }
                self.active = keep;
                for mut loser in reaped {
                    loser.kill_and_collect();
                    self.summary.reaped += 1;
                }
            }
            Err(error) => {
                self.record_failure(
                    task,
                    attempt.attempt,
                    attempt.launcher,
                    error,
                    stderr_tail(&stderr),
                );
            }
        }
    }

    /// Polls every active attempt: settle the finished, kill the timed out.
    fn poll_active(&mut self) {
        let now = Instant::now();
        let mut index = 0;
        while index < self.active.len() {
            match self.active[index].child.try_wait() {
                Ok(Some(status)) => {
                    let attempt = self.active.swap_remove(index);
                    self.settle(attempt, status);
                    continue;
                }
                Ok(None) => {
                    let timed_out = self.active[index]
                        .deadline
                        .is_some_and(|deadline| now >= deadline);
                    if timed_out {
                        let mut attempt = self.active.swap_remove(index);
                        // The drain threads already hold whatever the hung
                        // worker printed; pass the real tail, not an empty
                        // one — a killed worker's last words are exactly
                        // what the operator needs.
                        let (_stdout, stderr) = attempt.kill_and_collect();
                        self.summary.timeouts += 1;
                        let elapsed = attempt.started.elapsed().as_secs_f64();
                        self.record_failure(
                            attempt.task,
                            attempt.attempt,
                            attempt.launcher,
                            format!("worker timed out after {elapsed:.1} s (killed)"),
                            stderr_tail(&stderr),
                        );
                        continue;
                    }
                }
                Err(e) => {
                    let mut attempt = self.active.swap_remove(index);
                    let (_stdout, stderr) = attempt.kill_and_collect();
                    self.record_failure(
                        attempt.task,
                        attempt.attempt,
                        attempt.launcher,
                        format!("failed to poll worker: {e}"),
                        stderr_tail(&stderr),
                    );
                    continue;
                }
            }
            index += 1;
        }
    }

    /// Builds the final result: documents in task order on success, or the
    /// full failure report.
    fn finish(&mut self) -> Result<(Vec<ShardDocument>, DispatchSummary), String> {
        for mut orphan in self.active.drain(..) {
            orphan.kill_and_collect();
            self.summary.reaped += 1;
        }
        if self.states.iter().all(|s| s.doc.is_some()) {
            // Relay each winner's stderr exactly once, in shard order, so
            // worker diagnostics stay visible to the coordinator's caller.
            for stderr in self.winner_stderr.iter().flatten() {
                if !stderr.is_empty() {
                    eprint!("{}", String::from_utf8_lossy(stderr));
                }
            }
            let docs = self
                .states
                .iter_mut()
                .map(|s| s.doc.take().expect("all tasks settled"))
                .collect();
            return Ok((docs, self.summary));
        }
        Err(self.failure_report())
    }

    /// The multi-line error naming every failed shard (attempts, errors,
    /// stderr tails) and the ranges that completed before the failure.
    fn failure_report(&self) -> String {
        let mut lines = Vec::new();
        let failed = self.states.iter().filter(|s| s.doc.is_none()).count();
        lines.push(format!(
            "dispatch failed: {failed} of {} shard(s) did not complete",
            self.states.len()
        ));
        for (task, state) in self.states.iter().enumerate() {
            if state.doc.is_some() {
                continue;
            }
            let spec = &self.tasks[task];
            let name = format!("shard {}/{}", spec.shard, spec.shards);
            let last = state
                .failures
                .last()
                .map(|f| f.error.clone())
                .unwrap_or_else(|| "never attempted".to_string());
            lines.push(format!(
                "{name}: failed after {} attempt(s); last error: {last}",
                state.failures.len().max(1)
            ));
            for failure in &state.failures {
                lines.push(format!(
                    "{name}: attempt {} [{}]: {}",
                    failure.attempt, failure.launcher, failure.error
                ));
                if !failure.stderr_tail.is_empty() {
                    lines.push(format!(
                        "{name}:   stderr tail (last {} line(s)):",
                        failure.stderr_tail.len()
                    ));
                    for line in &failure.stderr_tail {
                        lines.push(format!("{name}:     {line}"));
                    }
                }
            }
        }
        let completed: Vec<String> = self
            .states
            .iter()
            .enumerate()
            .filter_map(|(task, state)| {
                state.doc.as_ref().map(|doc| {
                    let spec = &self.tasks[task];
                    format!(
                        "shard {}/{} (items {}..{})",
                        spec.shard,
                        spec.shards,
                        doc.manifest.start,
                        doc.manifest.start + doc.manifest.count
                    )
                })
            })
            .collect();
        if completed.is_empty() {
            lines.push("completed before failure: none".to_string());
        } else {
            lines.push(format!(
                "completed before failure: {}",
                completed.join(", ")
            ));
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> HostManifest {
        HostManifest {
            template: vec!["ssh".into(), "{host}".into(), "--".into(), "{exe}".into()],
            hosts: vec![
                HostEntry {
                    name: "node-a".into(),
                    slots: 2,
                },
                HostEntry {
                    name: "node-b".into(),
                    slots: 4,
                },
            ],
        }
    }

    #[test]
    fn host_manifests_round_trip_through_json() {
        let manifest = manifest();
        let parsed = HostManifest::parse(&manifest.to_json_pretty()).unwrap();
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.to_json_pretty(), manifest.to_json_pretty());
    }

    #[test]
    fn host_manifests_default_the_ssh_template() {
        let parsed =
            HostManifest::parse("{\"schema\": 1, \"hosts\": [{\"name\": \"n1\", \"slots\": 1}]}")
                .unwrap();
        assert_eq!(
            parsed.template,
            DEFAULT_TEMPLATE
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn host_manifests_reject_structural_violations() {
        let err = |text: &str| HostManifest::parse(text).expect_err(text);
        assert!(err("{\"schema\": 2, \"hosts\": []}").contains("schema"));
        assert!(err("{\"schema\": 1, \"hosts\": []}").contains("at least one host"));
        assert!(
            err("{\"schema\": 1, \"hosts\": [{\"name\": \"a\", \"slots\": 0}]}")
                .contains("0 slots")
        );
        assert!(
            err("{\"schema\": 1, \"hosts\": [{\"name\": \"\", \"slots\": 1}]}")
                .contains("empty name")
        );
        assert!(err(
            "{\"schema\": 1, \"hosts\": [{\"name\": \"a\", \"slots\": 1}, \
             {\"name\": \"a\", \"slots\": 2}]}"
        )
        .contains("more than once"));
        assert!(err("{\"schema\": 1, \"template\": [], \"hosts\": \
                     [{\"name\": \"a\", \"slots\": 1}]}")
        .contains("template"));
        assert!(err("not json").contains("JSON"));
    }

    #[test]
    fn template_launchers_expand_placeholders_and_append_args() {
        let task = WorkerTask {
            shard: 1,
            shards: 3,
            args: vec!["run".into(), "--all".into(), "--shard".into(), "1/3".into()],
        };
        let launcher = TemplateLauncher {
            host: "node-a".into(),
            slots: 2,
            template: vec!["ssh".into(), "{host}".into(), "--".into(), "{exe}".into()],
            exe: PathBuf::from("/opt/mojo-hpc"),
        };
        assert_eq!(
            launcher.argv(&task),
            vec![
                "ssh",
                "node-a",
                "--",
                "/opt/mojo-hpc",
                "run",
                "--all",
                "--shard",
                "1/3"
            ]
        );
        // A template mentioning {shard} is the complete command (replay).
        let replay = TemplateLauncher {
            host: "replay".into(),
            slots: 1,
            template: vec!["cat".into(), "shard_{shard}.json".into()],
            exe: PathBuf::from("/opt/mojo-hpc"),
        };
        assert_eq!(replay.argv(&task), vec!["cat", "shard_1.json"]);
    }

    #[test]
    fn slurm_scripts_cover_every_shard_with_quoted_args() {
        let args: Vec<String> = ["run", "--all", "--format", "json", "it has spaces"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let script = slurm_job_array_script("mojo-hpc", &args, 3, Some(&manifest()));
        assert!(script.starts_with("#!/bin/bash\n"), "{script}");
        assert!(script.contains("#SBATCH --array=0-2"), "{script}");
        assert!(
            script.contains("#SBATCH --nodelist=node-a,node-b"),
            "{script}"
        );
        assert!(script.contains("'it has spaces'"), "{script}");
        assert!(
            script.contains("--shard \"${SLURM_ARRAY_TASK_ID}/3\""),
            "{script}"
        );
        assert!(
            script.contains("> \"shard_${SLURM_ARRAY_TASK_ID}.json\""),
            "{script}"
        );
        // Without a manifest there is no nodelist pin.
        let bare = slurm_job_array_script("mojo-hpc", &args, 2, None);
        assert!(!bare.contains("--nodelist"), "{bare}");
        assert!(bare.contains("#SBATCH --array=0-1"), "{bare}");
    }

    #[test]
    fn shell_quoting_escapes_the_awkward_cases() {
        assert_eq!(shell_quote("plain-arg_1.0"), "plain-arg_1.0");
        assert_eq!(shell_quote("a b"), "'a b'");
        assert_eq!(shell_quote(""), "''");
        assert_eq!(shell_quote("it's"), "'it'\\''s'");
        assert_eq!(shell_quote("$HOME"), "'$HOME'");
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let policy = DispatchPolicy::default();
        let base = policy.backoff_base.as_secs_f64();
        for failures in 1..6u32 {
            let delay = policy.backoff(2, failures).as_secs_f64();
            let nominal = base * f64::from(1u32 << (failures - 1));
            let nominal = nominal.min(policy.backoff_cap.as_secs_f64());
            assert!(
                delay >= nominal * 0.75 && delay <= nominal * 1.25,
                "failures={failures}: delay {delay} outside jitter band of {nominal}"
            );
        }
        // Deterministic: the same (shard, failures) always backs off equally.
        assert_eq!(policy.backoff(2, 3), policy.backoff(2, 3));
        // The cap bounds arbitrarily deep retry chains (31+ doublings must
        // not overflow Duration arithmetic).
        assert!(policy.backoff(0, 40) <= policy.backoff_cap.mul_f64(1.25));
    }

    #[test]
    fn attempt_budget_normalises_zero_to_one() {
        let mut policy = DispatchPolicy {
            max_attempts: 0,
            ..DispatchPolicy::default()
        };
        assert_eq!(policy.attempt_budget(), 1);
        policy.max_attempts = 4;
        assert_eq!(policy.attempt_budget(), 4);
        assert_eq!(DispatchPolicy::no_retry().attempt_budget(), 1);
    }

    #[test]
    fn stderr_tails_keep_the_last_lines_only() {
        let text: String = (0..25).map(|i| format!("line {i}\n")).collect();
        let tail = stderr_tail(text.as_bytes());
        assert_eq!(tail.len(), STDERR_TAIL_LINES);
        assert_eq!(tail.first().unwrap(), "line 15");
        assert_eq!(tail.last().unwrap(), "line 24");
        assert!(stderr_tail(b"").is_empty());
    }

    #[test]
    fn dispatch_rejects_empty_configurations() {
        let launchers: Vec<Box<dyn Launcher>> = vec![];
        let tasks = [WorkerTask {
            shard: 0,
            shards: 1,
            args: vec![],
        }];
        assert!(dispatch(&launchers, &tasks, &DispatchPolicy::default()).is_err());
        let launchers: Vec<Box<dyn Launcher>> = vec![Box::new(LocalLauncher::new("/bin/true", 1))];
        assert!(dispatch(&launchers, &[], &DispatchPolicy::default()).is_err());
    }

    #[test]
    fn dispatch_reports_spawn_failures_with_attempts_and_completed_ranges() {
        // A launcher pointing at a nonexistent binary: every attempt fails
        // to spawn, the budget is spent, and the report names the shard.
        let launchers: Vec<Box<dyn Launcher>> =
            vec![Box::new(LocalLauncher::new("/nonexistent/mojo-worker", 2))];
        let tasks = [WorkerTask {
            shard: 0,
            shards: 1,
            args: vec![],
        }];
        let policy = DispatchPolicy {
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            ..DispatchPolicy::default()
        };
        let err = dispatch(&launchers, &tasks, &policy).expect_err("spawn failures must fail");
        assert!(err.contains("shard 0/1"), "{err}");
        assert!(err.contains("2 attempt(s)"), "{err}");
        assert!(err.contains("failed to spawn"), "{err}");
        assert!(err.contains("completed before failure: none"), "{err}");
    }
}
