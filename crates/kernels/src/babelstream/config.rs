//! BabelStream run configuration.

use gpu_spec::Precision;
use serde::{Deserialize, Serialize};

/// Vector sizes above which the host driver skips functional execution in
/// unoptimised builds would be painful; the paper's 2^25-element vectors are
/// still executed functionally when `validate` is set because the operations
/// are linear-time.
pub const PAPER_VECTOR_SIZE: usize = 1 << 25;

/// Standard BabelStream initial values.
pub const INIT_A: f64 = 0.1;
/// Standard BabelStream initial values.
pub const INIT_B: f64 = 0.2;
/// Standard BabelStream initial values.
pub const INIT_C: f64 = 0.0;
/// Standard BabelStream scalar.
pub const SCALAR: f64 = 0.4;

/// Configuration of a BabelStream experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BabelStreamConfig {
    /// Vector length (the paper uses 2^25 = 33,554,432).
    pub n: usize,
    /// Arithmetic precision.
    pub precision: Precision,
    /// Whether to execute functionally and validate against the expected
    /// closed-form values.
    pub validate: bool,
}

impl BabelStreamConfig {
    /// The paper's configuration: 2^25 elements. Functional execution is
    /// disabled by default at this size (the timing model does not need it);
    /// enable it explicitly with [`BabelStreamConfig::with_validation`].
    pub fn paper(precision: Precision) -> Self {
        BabelStreamConfig {
            n: PAPER_VECTOR_SIZE,
            precision,
            validate: false,
        }
    }

    /// A smaller configuration that always executes and validates.
    pub fn validation(n: usize, precision: Precision) -> Self {
        BabelStreamConfig {
            n,
            precision,
            validate: true,
        }
    }

    /// Returns a copy with functional execution enabled.
    pub fn with_validation(mut self) -> Self {
        self.validate = true;
        self
    }

    /// Size of one array in bytes.
    pub fn array_bytes(&self) -> u64 {
        self.n as u64 * self.precision.size_of() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_uses_2_pow_25() {
        let c = BabelStreamConfig::paper(Precision::Fp64);
        assert_eq!(c.n, 33_554_432);
        assert_eq!(c.array_bytes(), 33_554_432 * 8);
        assert!(!c.validate);
        assert!(c.with_validation().validate);
    }

    #[test]
    fn validation_config() {
        let c = BabelStreamConfig::validation(1024, Precision::Fp32);
        assert!(c.validate);
        assert_eq!(c.array_bytes(), 4096);
    }

    #[test]
    fn standard_initial_values() {
        assert_eq!(INIT_A, 0.1);
        assert_eq!(INIT_B, 0.2);
        assert_eq!(INIT_C, 0.0);
        assert_eq!(SCALAR, 0.4);
    }
}
