//! Bench target for Figure 7 — miniBUDE GFLOP/s vs PPWI on the MI300A.

use criterion::{Criterion, Throughput};
use experiment_report::ExperimentId;
use science_kernels::minibude::{self, MiniBudeConfig};
use vendor_models::Platform;

fn bench(c: &mut Criterion) {
    let pool_before = bench::pool_snapshot();
    let mut group = c.benchmark_group("fig7_minibude");
    // The HIP-style baseline's functional execution path.
    for wg in [8u32, 64] {
        let platform = Platform::hip_mi300a(true);
        let config = MiniBudeConfig::validation(4, wg);
        // Poses executed per driver run, matching the fig6 twin so the JSON
        // records expose comparable pose rates across the two devices.
        group.throughput(Throughput::Elements(config.executed_poses as u64));
        group.bench_function(format!("hip_fasten_wg{wg}"), |b| {
            b.iter(|| minibude::run(&platform, &config).unwrap())
        });
    }
    bench::record_pool_counters(&mut group, &pool_before);
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Fig7);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
