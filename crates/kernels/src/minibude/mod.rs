//! miniBUDE `fasten` workload — paper Listing 4, Figures 6–7.
//!
//! miniBUDE is the proxy for the Bristol University Docking Engine: for each
//! of tens of thousands of candidate poses of a ligand molecule, the `fasten`
//! kernel rotates and translates the ligand, then accumulates an interaction
//! energy over every (ligand atom, protein atom) pair. It is compute bound
//! and highly sensitive to fast-math, which is exactly the gap the paper
//! observes for the portable backend. The figure of merit is GFLOP/s, Eq. (3).
//!
//! The paper uses the `bm1` benchmark deck (26 ligand atoms, 938 protein
//! atoms, 65,536 poses). The original deck ships as binary data files with the
//! miniBUDE distribution; this reproduction generates a synthetic deck with
//! identical dimensions and physically plausible parameter ranges (see
//! [`Deck`]), which preserves the arithmetic characteristics the paper
//! measures — the operation mix does not depend on the particular molecule.

mod config;
mod cost;
mod deck;
mod portable;
mod reference;
mod vendor;
pub mod workload;

pub use config::MiniBudeConfig;
pub use cost::fasten_cost;
pub use deck::{Atom, Deck, ForceFieldParam};
pub use portable::{run_portable, run_portable_lane};
pub use reference::{pair_energy, pose_energy, reference_energies, transform_point, HALF};
pub use vendor::run_vendor;

use crate::common::WorkloadRun;
use crate::simd::{self, LanePolicy};
use gpu_sim::SimError;
use vendor_models::Platform;

/// Runs the fasten workload on a platform, dispatching on the backend, under
/// the process-wide lane policy.
pub fn run(platform: &Platform, config: &MiniBudeConfig) -> Result<WorkloadRun, SimError> {
    run_lane(platform, config, simd::process_policy())
}

/// Runs the fasten workload under an explicit lane policy. The vendor
/// baselines have no host fast lane and ignore the policy.
pub fn run_lane(
    platform: &Platform,
    config: &MiniBudeConfig,
    policy: LanePolicy,
) -> Result<WorkloadRun, SimError> {
    if platform.backend.is_portable() {
        run_portable_lane(platform, config, policy)
    } else {
        run_vendor(platform, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_and_vendor_verify_against_the_reference() {
        let config = MiniBudeConfig::validation(4, 8);
        for platform in [
            Platform::portable_h100(),
            Platform::cuda_h100(true),
            Platform::portable_mi300a(),
            Platform::hip_mi300a(false),
        ] {
            let run = run(&platform, &config).unwrap();
            assert!(
                run.verification.is_verified(),
                "{} should verify",
                platform.label()
            );
        }
    }

    #[test]
    fn mojo_sits_between_cuda_with_and_without_fast_math_on_h100() {
        // Fig. 6: the portable backend lands between the CUDA fast-math and
        // non-fast-math baselines for most configurations.
        let config = MiniBudeConfig::paper(4, 64);
        let mojo = run(&Platform::portable_h100(), &config).unwrap();
        let cuda_ff = run(&Platform::cuda_h100(true), &config).unwrap();
        let cuda = run(&Platform::cuda_h100(false), &config).unwrap();
        assert!(
            cuda_ff.seconds() < mojo.seconds(),
            "fast-math CUDA must beat Mojo"
        );
        assert!(
            mojo.seconds() < cuda.seconds(),
            "Mojo must beat CUDA without fast-math"
        );
    }

    #[test]
    fn mojo_trails_both_hip_variants_on_mi300a() {
        // Fig. 7: Mojo underperforms both HIP variants on the MI300A.
        let config = MiniBudeConfig::paper(8, 64);
        let mojo = run(&Platform::portable_mi300a(), &config).unwrap();
        let hip_ff = run(&Platform::hip_mi300a(true), &config).unwrap();
        let hip = run(&Platform::hip_mi300a(false), &config).unwrap();
        assert!(hip_ff.seconds() < mojo.seconds());
        assert!(hip.seconds() < mojo.seconds());
    }

    #[test]
    fn mojo_overtakes_cuda_fast_math_gap_narrows_at_small_wg() {
        // Fig. 6a: for wg = 8 the CUDA baseline loses ground and Mojo's
        // relative efficiency rises to ~0.82 (Table 5).
        let small = MiniBudeConfig::paper(8, 8);
        let large = MiniBudeConfig::paper(8, 64);
        let eff_small = run(&Platform::cuda_h100(true), &small).unwrap().seconds()
            / run(&Platform::portable_h100(), &small).unwrap().seconds();
        let eff_large = run(&Platform::cuda_h100(true), &large).unwrap().seconds()
            / run(&Platform::portable_h100(), &large).unwrap().seconds();
        assert!(
            eff_small > eff_large,
            "portable efficiency should be higher at wg=8 ({eff_small:.2} vs {eff_large:.2})"
        );
    }
}
