//! Runtime data-type descriptors, mirroring Mojo's `DType`.
//!
//! Mojo kernels name their element type through a compile-time `DType`
//! alias (`alias dtype = DType.float64`). The Rust analogue is the generic
//! parameter on buffers and tensors; [`DType`] exists for the places where a
//! runtime description is needed (experiment manifests, reports, CSV output).

use gpu_sim::memory::DeviceScalar;
use gpu_spec::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A runtime element-type descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE-754 float (`DType.float32`).
    Float32,
    /// 64-bit IEEE-754 float (`DType.float64`).
    Float64,
    /// 32-bit signed integer (`DType.int32`).
    Int32,
    /// 32-bit unsigned integer (`DType.uint32`).
    UInt32,
}

impl DType {
    /// The `DType` describing a compile-time scalar type.
    pub fn of<T: DeviceScalar>() -> Option<DType> {
        match (T::SIZE_BYTES, T::precision()) {
            (4, Some(Precision::Fp32)) => Some(DType::Float32),
            (8, Some(Precision::Fp64)) => Some(DType::Float64),
            _ => None,
        }
    }

    /// Size of one element in bytes.
    pub fn size_of(&self) -> usize {
        match self {
            DType::Float32 | DType::Int32 | DType::UInt32 => 4,
            DType::Float64 => 8,
        }
    }

    /// The floating-point precision this type corresponds to, if any.
    pub fn precision(&self) -> Option<Precision> {
        match self {
            DType::Float32 => Some(Precision::Fp32),
            DType::Float64 => Some(Precision::Fp64),
            _ => None,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Float32 => "float32",
            DType::Float64 => "float64",
            DType::Int32 => "int32",
            DType::UInt32 => "uint32",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_precisions() {
        assert_eq!(DType::Float32.size_of(), 4);
        assert_eq!(DType::Float64.size_of(), 8);
        assert_eq!(DType::Int32.size_of(), 4);
        assert_eq!(DType::Float32.precision(), Some(Precision::Fp32));
        assert_eq!(DType::Float64.precision(), Some(Precision::Fp64));
        assert_eq!(DType::Int32.precision(), None);
    }

    #[test]
    fn of_maps_rust_scalars() {
        assert_eq!(DType::of::<f32>(), Some(DType::Float32));
        assert_eq!(DType::of::<f64>(), Some(DType::Float64));
        assert_eq!(DType::of::<u64>(), None);
    }

    #[test]
    fn display_matches_mojo_names() {
        assert_eq!(DType::Float64.to_string(), "float64");
        assert_eq!(DType::UInt32.to_string(), "uint32");
    }
}
