//! Determinism and stress tests for the persistent work-stealing executor.
//!
//! The PR 2 refactor moved every kernel launch and the whole experiment
//! pipeline onto one process-wide thread pool. These tests pin down the
//! properties that refactor must preserve:
//!
//! * experiment output (console text and CSV bytes) is identical whether the
//!   pool runs wide or strictly serially (`RAYON_NUM_THREADS=1` is the same
//!   code path as the serial install used here);
//! * `rayon::join` works from *inside* a running kernel closure (nested
//!   fork-join on the pool);
//! * concurrent kernel launches from many host threads share the pool
//!   without interference.

use gpu_sim::{launch_flat, LaunchConfig, UnsafeSlice};
use mojo_hpc::report::{run_experiment, ExperimentId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Renders an experiment to one comparable byte string (console text plus
/// every CSV payload).
fn experiment_fingerprint(id: ExperimentId) -> String {
    let report = run_experiment(id);
    let mut out = report.render();
    for (name, table) in &report.tables {
        out.push_str(name);
        out.push('\n');
        out.push_str(&table.to_csv_string());
    }
    out
}

#[test]
fn experiment_output_is_identical_serial_vs_pooled() {
    // Representative mix: a pure cost-model figure, a functional-execution
    // figure and the atomics-heavy Hartree-Fock table.
    //
    // Whichever arm runs first also generates the workload inputs and warms
    // the process-global memo caches; the second arm reuses them, so within
    // one experiment only kernel execution and the pipeline differ between
    // the arms. The order therefore alternates across experiments: the
    // serial path generates Fig6's deck, the pooled path the others' inputs,
    // so both paths' input generation is exercised by this test.
    for (serial_first, id) in [
        (false, ExperimentId::Fig4),
        (true, ExperimentId::Fig6),
        (false, ExperimentId::Table4),
    ] {
        let serial_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let (serial, pooled) = if serial_first {
            let serial = serial_pool.install(|| experiment_fingerprint(id));
            (serial, experiment_fingerprint(id))
        } else {
            let pooled = experiment_fingerprint(id);
            (serial_pool.install(|| experiment_fingerprint(id)), pooled)
        };
        assert_eq!(
            pooled, serial,
            "{id}: output must not depend on the thread count"
        );
    }
}

#[test]
fn experiment_output_is_stable_across_repeated_runs() {
    let first = experiment_fingerprint(ExperimentId::Fig3);
    let second = experiment_fingerprint(ExperimentId::Fig3);
    assert_eq!(first, second, "repeated runs must be byte-identical");
}

#[test]
fn nested_join_inside_a_launch() {
    let cfg = LaunchConfig::new(8u32, 64u32);
    let total = cfg.total_threads() as usize;
    let mut out = vec![0u64; total];
    {
        let slice = UnsafeSlice::new(&mut out);
        launch_flat(&cfg, |ctx| {
            let i = ctx.global_x();
            // Fork-join from inside a simulated GPU thread: both halves land
            // on the same pool the launch itself runs on.
            let (a, b) = rayon::join(|| i * 3, || i * 4);
            slice.write(i as usize, a + b);
        });
    }
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i as u64 * 7);
    }
}

#[test]
fn deeply_nested_joins_converge() {
    fn sum(range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        if span <= 64 {
            return range.sum();
        }
        let mid = range.start + span / 2;
        let (a, b) = rayon::join(|| sum(range.start..mid), || sum(mid..range.end));
        a + b
    }
    assert_eq!(sum(0..100_000), 100_000 * 99_999 / 2);
}

#[test]
fn concurrent_launches_from_multiple_host_threads() {
    const HOSTS: usize = 4;
    const N: usize = 1 << 14;
    let counters: Vec<AtomicU64> = (0..HOSTS).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for (host, counter) in counters.iter().enumerate() {
            scope.spawn(move || {
                let cfg = LaunchConfig::cover_1d(N as u64, 128);
                launch_flat(&cfg, |ctx| {
                    let i = ctx.global_x() as usize;
                    if i < N {
                        // Every simulated thread contributes host+1 exactly once.
                        counter.fetch_add(host as u64 + 1, Ordering::Relaxed);
                    }
                });
            });
        }
    });
    for (host, counter) in counters.iter().enumerate() {
        assert_eq!(
            counter.load(Ordering::Relaxed),
            (N as u64) * (host as u64 + 1),
            "host thread {host} lost or duplicated simulated threads"
        );
    }
}

#[test]
fn concurrent_experiments_from_multiple_host_threads_match_serial() {
    // Two host threads regenerate different experiments while the main
    // thread regenerates a third; all must match their serial fingerprints.
    let expected_fig5 = experiment_fingerprint(ExperimentId::Fig5);
    let expected_t2 = experiment_fingerprint(ExperimentId::Table2);
    let expected_t3 = experiment_fingerprint(ExperimentId::Table3);
    std::thread::scope(|scope| {
        let a = scope.spawn(|| experiment_fingerprint(ExperimentId::Fig5));
        let b = scope.spawn(|| experiment_fingerprint(ExperimentId::Table2));
        let c = experiment_fingerprint(ExperimentId::Table3);
        assert_eq!(a.join().unwrap(), expected_fig5);
        assert_eq!(b.join().unwrap(), expected_t2);
        assert_eq!(c, expected_t3);
    });
}
