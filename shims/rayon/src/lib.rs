//! Offline stand-in for `rayon`.
//!
//! Implements the slice of rayon this workspace uses — `into_par_iter()` over
//! integer ranges, [`par_iter()`](ParallelSlice::par_iter) over borrowed
//! slices (`for_each`, `map().collect()`, the deterministic
//! [`reduce`](IndexedParallelIterator::reduce) /
//! [`fold`](IndexedParallelIterator::fold) lanes), `par_chunks_mut`,
//! [`join`], and `ThreadPoolBuilder::install` for single-threaded runs — on
//! top of a **persistent work-stealing thread pool** ([`pool`]). Workers are
//! spawned once per process and kept alive; every parallel region is split
//! into per-worker deque segments with batch stealing, so a kernel launch
//! costs a queue push rather than a round of `std::thread::spawn`/`join`.
//! `RAYON_NUM_THREADS` overrides the worker count; with one hardware thread
//! (or `RAYON_NUM_THREADS=1`) everything degenerates to inline loops with no
//! thread overhead.

use std::ops::Range;
use std::sync::Mutex;

pub mod pool;

pub use pool::{current_num_threads, join};

/// The rayon-style glob import.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the one configuration the
/// workspace needs: a serial (one-thread) pool for determinism tests.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default (global pool) settings.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Requests a specific thread count (`1` gives strictly serial scopes).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool handle. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A pool handle from [`ThreadPoolBuilder`]. With `num_threads(1)` its
/// `install` runs every nested parallel scope inline on the calling thread;
/// other counts delegate to the process-global pool (the shim does not build
/// additional worker sets).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's execution policy installed on the current
    /// thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        if self.num_threads == 1 {
            pool::run_serial(f)
        } else {
            f()
        }
    }
}

/// Runs `f(i)` for every `i in 0..len`, distributing index segments over the
/// persistent pool.
fn parallel_indexed<F: Fn(usize) + Sync>(len: usize, f: F) {
    pool::scope_indexed(len, &f);
}

/// A cell handing one indexed `&mut` chunk to exactly one pool task.
type ChunkCell<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;

/// Computes `f(i)` for every `i in 0..len` and returns the results in order.
///
/// Safe disjoint-chunk implementation: the output is split into
/// non-overlapping `&mut` chunks up front, each chunk is handed to exactly
/// one pool task through a take-once cell, and every task writes only its own
/// chunk — no raw-pointer aliasing anywhere.
fn parallel_collect<R: Send, F: Fn(usize) -> R + Sync>(len: usize, f: F) -> Vec<R> {
    // Serial scopes run inline: skip the per-chunk cells entirely.
    if current_num_threads() == 1 {
        return (0..len).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    let chunk_size = collect_chunk_size(len);
    {
        let chunks: Vec<ChunkCell<'_, Option<R>>> = slots
            .chunks_mut(chunk_size)
            .enumerate()
            .map(|pair| Mutex::new(Some(pair)))
            .collect();
        pool::scope_indexed(chunks.len(), &|task| {
            let taken = chunks[task]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take();
            let (chunk_index, chunk) = taken.expect("collect chunk taken twice");
            let base = chunk_index * chunk_size;
            for (offset, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(f(base + offset));
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("parallel_collect slot not filled"))
        .collect()
}

/// Chunk granularity for ordered collection: enough chunks to keep every
/// worker busy (and stealable), large enough to amortise the per-chunk cell.
fn collect_chunk_size(len: usize) -> usize {
    let tasks = current_num_threads() * 8;
    len.div_ceil(tasks.max(1)).max(1)
}

/// Fixed chunk width of the deterministic reduction lane.
///
/// The reduction lane splits its input into chunks of exactly this many
/// elements **regardless of the thread count**: each chunk is folded
/// left-to-right on one task, then the chunk partials are combined through a
/// fixed pairwise tree on the calling thread. Because neither the chunking
/// nor the combine order depends on scheduling, a floating-point reduction
/// returns the *bitwise-identical* result at any `RAYON_NUM_THREADS` —
/// including 1 — which is what lets the experiment pipeline promise
/// byte-identical output across thread counts.
pub const REDUCE_CHUNK: usize = 1024;

/// Deterministic fixed-chunk tree reduction of `map(0) ⊕ map(1) ⊕ … ⊕
/// map(len-1)` (seeded with `identity()` per chunk).
///
/// Grouping is a pure function of `len`: elements are folded left-to-right
/// within [`REDUCE_CHUNK`]-sized chunks and the chunk partials are combined
/// pairwise in index order, so the result is bitwise-stable across thread
/// counts even for non-associative operators like `f64` addition.
fn parallel_reduce<R, ID, M, OP>(len: usize, identity: &ID, map: &M, op: &OP) -> R
where
    R: Send,
    ID: Fn() -> R + Sync,
    M: Fn(usize) -> R + Sync,
    OP: Fn(R, R) -> R + Sync,
{
    if len == 0 {
        return identity();
    }
    if current_num_threads() == 1 {
        return serial_chunk_reduce(len, identity, &|acc, i| op(acc, map(i)), op);
    }
    let partials = chunk_partials(len, identity, &|acc, i| op(acc, map(i)));
    combine_pairwise(partials, op)
}

/// The serial lane shared by [`parallel_reduce`] and [`Fold::reduce`]: chunk
/// partials are computed inline and merged through the allocation-free
/// [`TreeCombiner`], so a warm reduction at one thread touches the global
/// allocator zero times while returning the bit-for-bit same result as the
/// pooled lane.
fn serial_chunk_reduce<R, ID, FO, OP>(len: usize, seed: &ID, fold_op: &FO, op: &OP) -> R
where
    ID: Fn() -> R,
    FO: Fn(R, usize) -> R,
    OP: Fn(R, R) -> R,
{
    let mut combiner = TreeCombiner::new();
    let mut start = 0;
    while start < len {
        let end = (start + REDUCE_CHUNK).min(len);
        let mut acc = seed();
        for i in start..end {
            acc = fold_op(acc, i);
        }
        combiner.push(acc, op);
        start = end;
    }
    combiner
        .finish(op)
        .expect("non-empty reduction lost its result")
}

/// An allocation-free combiner producing exactly the same association order as
/// [`combine_pairwise`]'s level-order tree.
///
/// Partials are pushed in index order into a binary counter: level `k` holds
/// the combined result of an aligned run of `2^k` consecutive partials, and
/// pushing partial `i` performs one merge per trailing one-bit of `i`. The
/// final sweep merges the surviving levels bottom-up with the earlier-index
/// group always on the left — which reproduces, operation for operation, the
/// pairing that the level-order tree performs (lower levels hold *later*
/// partials, so they are right operands). The stack is a fixed array: no heap.
struct TreeCombiner<R> {
    levels: [Option<R>; usize::BITS as usize],
    count: usize,
}

impl<R> TreeCombiner<R> {
    fn new() -> Self {
        TreeCombiner {
            levels: std::array::from_fn(|_| None),
            count: 0,
        }
    }

    /// Pushes the next in-order partial, merging completed power-of-two runs.
    fn push<OP: Fn(R, R) -> R>(&mut self, mut partial: R, op: &OP) {
        let mut level = 0;
        let mut mask = self.count;
        while mask & 1 == 1 {
            let left = self.levels[level].take().expect("combiner level vacant");
            partial = op(left, partial);
            mask >>= 1;
            level += 1;
        }
        self.levels[level] = Some(partial);
        self.count += 1;
    }

    /// Merges the surviving levels bottom-up (earlier-index group first) into
    /// the final result; `None` when nothing was pushed.
    fn finish<OP: Fn(R, R) -> R>(mut self, op: &OP) -> Option<R> {
        let mut acc: Option<R> = None;
        for level in 0..self.levels.len() {
            if let Some(left) = self.levels[level].take() {
                acc = Some(match acc {
                    Some(right) => op(left, right),
                    None => left,
                });
            }
        }
        acc
    }
}

/// The fixed-chunk partial accumulators both deterministic lanes share: one
/// accumulator per [`REDUCE_CHUNK`]-sized chunk, seeded with `seed()` and
/// folded left-to-right with `fold_op` over the chunk's positions. The
/// grouping is a pure function of `len`, which is what makes every lane
/// built on it bitwise-stable across thread counts.
fn chunk_partials<R, ID, FO>(len: usize, seed: &ID, fold_op: &FO) -> Vec<R>
where
    R: Send,
    ID: Fn() -> R + Sync,
    FO: Fn(R, usize) -> R + Sync,
{
    let nchunks = len.div_ceil(REDUCE_CHUNK);
    parallel_collect(nchunks, move |chunk| {
        let start = chunk * REDUCE_CHUNK;
        let end = (start + REDUCE_CHUNK).min(len);
        let mut acc = seed();
        for i in start..end {
            acc = fold_op(acc, i);
        }
        acc
    })
}

/// Combines in-order chunk partials through a fixed pairwise tree on the
/// calling thread. The tree shape depends only on the partial count, so the
/// combine order is identical at every thread count.
fn combine_pairwise<R, OP: Fn(R, R) -> R>(mut partials: Vec<R>, op: &OP) -> R {
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        let mut pairs = partials.into_iter();
        while let Some(a) = pairs.next() {
            match pairs.next() {
                Some(b) => next.push(op(a, b)),
                None => next.push(a),
            }
        }
        partials = next;
    }
    partials.pop().expect("non-empty reduction lost its result")
}

/// Independent accumulators of the SIMD-friendly inner fold
/// ([`IndexedParallelIterator::sum_unrolled`]). Four accumulators break the
/// floating-point add dependency chain far enough to keep one FMA port busy
/// per cycle without spilling registers on any mainstream x86-64/aarch64
/// core.
pub const SUM_LANES: usize = 4;

/// The multi-accumulator inner fold of one [`REDUCE_CHUNK`]-sized chunk:
/// element `start + t` lands in accumulator `t % SUM_LANES`, the tail (fewer
/// than [`SUM_LANES`] elements) folds into accumulator 0, and the lane
/// partials combine as `(a0 + a1) + (a2 + a3)`. The association is a pure
/// function of `(start, end)` — deterministic, just *different* from the
/// scalar left-to-right fold of the golden lane.
fn chunk_sum_unrolled<S, M>(start: usize, end: usize, map: &M) -> S
where
    S: ParallelSum,
    M: Fn(usize) -> S,
{
    let (mut a0, mut a1, mut a2, mut a3) = (S::zero(), S::zero(), S::zero(), S::zero());
    let mut i = start;
    while i + SUM_LANES <= end {
        a0 = S::add(a0, map(i));
        a1 = S::add(a1, map(i + 1));
        a2 = S::add(a2, map(i + 2));
        a3 = S::add(a3, map(i + 3));
        i += SUM_LANES;
    }
    while i < end {
        a0 = S::add(a0, map(i));
        i += 1;
    }
    S::add(S::add(a0, a1), S::add(a2, a3))
}

/// The SIMD fast-lane sum: [`REDUCE_CHUNK`]-sized chunk partials are computed
/// with the [`chunk_sum_unrolled`] multi-accumulator fold and combined through
/// the *same* fixed pairwise tree as the deterministic lane. Chunking, lane
/// assignment and the combine tree are all pure functions of `len`, so this
/// lane is also bitwise-stable across thread counts — it simply commits to a
/// different (ILP-friendly) association than [`parallel_reduce`].
fn parallel_sum_unrolled<S, M>(len: usize, map: &M) -> S
where
    S: ParallelSum,
    M: Fn(usize) -> S + Sync,
{
    if len == 0 {
        return S::zero();
    }
    if current_num_threads() == 1 {
        let mut combiner = TreeCombiner::new();
        let mut start = 0;
        while start < len {
            let end = (start + REDUCE_CHUNK).min(len);
            combiner.push(chunk_sum_unrolled(start, end, map), &S::add);
            start = end;
        }
        return combiner
            .finish(&S::add)
            .expect("non-empty reduction lost its result");
    }
    let nchunks = len.div_ceil(REDUCE_CHUNK);
    let partials = parallel_collect(nchunks, move |chunk| {
        let start = chunk * REDUCE_CHUNK;
        let end = (start + REDUCE_CHUNK).min(len);
        chunk_sum_unrolled(start, end, map)
    });
    combine_pairwise(partials, &S::add)
}

/// Types the deterministic [`sum`](Map::sum) lane can accumulate.
pub trait ParallelSum: Send {
    /// The additive identity.
    fn zero() -> Self;
    /// Adds two partials.
    fn add(a: Self, b: Self) -> Self;
}

macro_rules! impl_parallel_sum {
    ($($t:ty),*) => {$(
        impl ParallelSum for $t {
            fn zero() -> Self {
                0 as $t
            }
            fn add(a: Self, b: Self) -> Self {
                a + b
            }
        }
    )*};
}

impl_parallel_sum!(f32, f64, u32, u64, usize, i32, i64);

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// The operations this shim's parallel iterators support.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Consumes the iterator, invoking `f` on every element in parallel.
    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F);

    /// Maps every element through `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync + Send>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }
}

/// Integer types usable as parallel range bounds.
pub trait RangeInt: Copy + Send + Sync {
    /// Number of elements between `start` and `end` (0 if inverted).
    fn span(start: Self, end: Self) -> usize;
    /// `start + offset`.
    fn offset(self, offset: usize) -> Self;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn span(start: Self, end: Self) -> usize {
                if end > start { (end - start) as usize } else { 0 }
            }
            fn offset(self, offset: usize) -> Self {
                self + offset as $t
            }
        }
    )*};
}

impl_range_int!(i32, i64, u32, u64, usize);

/// A parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: Range<T>,
}

impl<T: RangeInt> IntoParallelIterator for Range<T> {
    type Item = T;
    type Iter = RangeIter<T>;
    fn into_par_iter(self) -> RangeIter<T> {
        RangeIter { range: self }
    }
}

impl<T: RangeInt> ParallelIterator for RangeIter<T> {
    type Item = T;
    fn for_each<F: Fn(T) + Sync + Send>(self, f: F) {
        let start = self.range.start;
        let len = T::span(start, self.range.end);
        parallel_indexed(len, |i| f(start.offset(i)));
    }
}

impl<T: RangeInt> IndexedParallelIterator for RangeIter<T> {
    fn len(&self) -> usize {
        T::span(self.range.start, self.range.end)
    }

    fn get(&self, i: usize) -> T {
        self.range.start.offset(i)
    }
}

/// Parallel iterators with random access by position: integer ranges,
/// borrowed slices, and `map`s of either. Random access is what lets the
/// deterministic lanes ([`collect`](Self::collect), [`reduce`](Self::reduce),
/// [`fold`](Self::fold), [`sum`](Self::sum)) split the input into
/// *position-fixed* chunks, so their grouping — and therefore their result,
/// bitwise — is independent of the thread count.
pub trait IndexedParallelIterator: ParallelIterator + Sync {
    /// Number of elements.
    fn len(&self) -> usize;

    /// The element at position `i` (`i < self.len()`).
    fn get(&self, i: usize) -> Self::Item;

    /// Whether the iterator is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collects the elements in position order.
    fn collect<C>(self) -> C
    where
        C: FromIndexedResults<Self::Item>,
    {
        let this = &self;
        C::from_results(parallel_collect(self.len(), move |i| this.get(i)))
    }

    /// Reduces the elements with `op`, seeding every chunk with `identity()`,
    /// through the deterministic fixed-chunk tree lane: the result is
    /// bitwise-identical at every thread count (see [`REDUCE_CHUNK`]). An
    /// empty iterator returns `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let this = &self;
        parallel_reduce(self.len(), &identity, &move |i| this.get(i), &op)
    }

    /// Sums the elements through the deterministic reduction lane
    /// ([`Self::reduce`] with the additive identity).
    fn sum<S>(self) -> S
    where
        S: ParallelSum,
        Self: IndexedParallelIterator<Item = S>,
    {
        self.reduce(S::zero, S::add)
    }

    /// Sums the elements through the SIMD fast lane: each
    /// [`REDUCE_CHUNK`]-sized chunk folds into [`SUM_LANES`] independent
    /// accumulators (breaking the floating-point dependency chain), and the
    /// chunk partials combine through the same fixed pairwise tree as
    /// [`Self::sum`]. Bitwise-stable across thread counts like the
    /// deterministic lane, but committed to a different association — callers
    /// that promise byte-identical golden output must stay on [`Self::sum`].
    fn sum_unrolled<S>(self) -> S
    where
        S: ParallelSum,
        Self: IndexedParallelIterator<Item = S>,
    {
        let this = &self;
        parallel_sum_unrolled(self.len(), &move |i| this.get(i))
    }

    /// Folds the elements into accumulators seeded with `identity()`, one per
    /// [`REDUCE_CHUNK`]-sized chunk, mirroring rayon's `fold`: the result is
    /// a [`Fold`] of per-chunk partials whose
    /// [`reduce`](Fold::reduce) combines them through the same fixed pairwise
    /// tree as [`Self::reduce`]. Chunking is a pure function of the length,
    /// so a `fold(..).reduce(..)` pipeline is bitwise-stable across thread
    /// counts even for non-associative accumulators.
    fn fold<R, ID, FO>(self, identity: ID, fold_op: FO) -> Fold<Self, ID, FO>
    where
        R: Send,
        ID: Fn() -> R + Sync,
        FO: Fn(R, Self::Item) -> R + Sync,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }
}

/// The deferred result of [`IndexedParallelIterator::fold`]: one accumulator
/// per fixed-width chunk, combined by [`Fold::reduce`].
pub struct Fold<I, ID, FO> {
    base: I,
    identity: ID,
    fold_op: FO,
}

impl<I, ID, FO> Fold<I, ID, FO> {
    /// Combines the per-chunk accumulators through the fixed pairwise tree.
    /// `identity()` is returned for an empty input (the chunk accumulators
    /// themselves are seeded by the `fold` identity), matching rayon's
    /// `fold(..).reduce(..)` semantics.
    pub fn reduce<R, RID, OP>(self, identity: RID, op: OP) -> R
    where
        I: IndexedParallelIterator,
        R: Send,
        ID: Fn() -> R + Sync,
        FO: Fn(R, I::Item) -> R + Sync,
        RID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let len = self.base.len();
        if len == 0 {
            return identity();
        }
        let base = &self.base;
        let fold_op = &self.fold_op;
        if current_num_threads() == 1 {
            return serial_chunk_reduce(
                len,
                &self.identity,
                &|acc, i| fold_op(acc, base.get(i)),
                &op,
            );
        }
        let partials = chunk_partials(len, &self.identity, &|acc, i| fold_op(acc, base.get(i)));
        combine_pairwise(partials, &op)
    }
}

/// Conversion of borrowed slices into parallel iterators (rayon's
/// `par_iter()` entry point for `&[T]`).
pub trait ParallelSlice<T: Sync> {
    /// Iterates the slice elements by reference in parallel.
    fn par_iter(&self) -> SliceIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
}

/// A parallel iterator over a borrowed slice.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn for_each<F: Fn(&'a T) + Sync + Send>(self, f: F) {
        let slice = self.slice;
        parallel_indexed(slice.len(), |i| f(&slice[i]));
    }
}

impl<'a, T: Sync> IndexedParallelIterator for SliceIter<'a, T> {
    fn len(&self) -> usize {
        self.slice.len()
    }

    fn get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// A mapped parallel iterator.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I: ParallelIterator, R: Send, F: Fn(I::Item) -> R + Sync + Send> ParallelIterator
    for Map<I, F>
{
    type Item = R;
    fn for_each<G: Fn(R) + Sync + Send>(self, g: G) {
        let f = self.f;
        self.base.for_each(move |item| g(f(item)));
    }
}

impl<I: IndexedParallelIterator, R: Send, F: Fn(I::Item) -> R + Sync + Send> IndexedParallelIterator
    for Map<I, F>
{
    fn len(&self) -> usize {
        self.base.len()
    }

    fn get(&self, i: usize) -> R {
        (self.f)(self.base.get(i))
    }
}

/// Collection types constructible from in-order parallel results.
pub trait FromIndexedResults<R> {
    /// Builds the collection from ordered results.
    fn from_results(results: Vec<R>) -> Self;
}

impl<R> FromIndexedResults<R> for Vec<R> {
    fn from_results(results: Vec<R>) -> Self {
        results
    }
}

/// Parallel operations on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of `size` elements processed in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        ChunksMut { slice: self, size }
    }
}

/// Parallel iterator over mutable chunks. Lazy: the slice is not split until
/// a consuming call, and serial scopes iterate `chunks_mut` directly without
/// allocating per-chunk cells.
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> EnumeratedChunks<'a, T> {
        EnumeratedChunks {
            slice: self.slice,
            size: self.size,
        }
    }

    /// Invokes `f` on every chunk in parallel.
    pub fn for_each<F: Fn(&'a mut [T]) + Sync + Send>(self, f: F) {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel chunk iterator.
pub struct EnumeratedChunks<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> EnumeratedChunks<'a, T> {
    /// Invokes `f` on every `(index, chunk)` pair in parallel. Each chunk is
    /// owned by exactly one pool task (moved out of a take-once cell), so the
    /// mutable borrows never alias.
    pub fn for_each<F: Fn((usize, &'a mut [T])) + Sync + Send>(self, f: F) {
        // Serial scopes run inline, splitting lazily: no cells, no heap.
        if current_num_threads() == 1 {
            for pair in self.slice.chunks_mut(self.size).enumerate() {
                f(pair);
            }
            return;
        }
        let cells: Vec<ChunkCell<'a, T>> = self
            .slice
            .chunks_mut(self.size)
            .enumerate()
            .map(|pair| Mutex::new(Some(pair)))
            .collect();
        pool::scope_indexed(cells.len(), &|i| {
            let taken = cells[i].lock().unwrap_or_else(|e| e.into_inner()).take();
            f(taken.expect("chunk taken twice"));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn range_for_each_visits_everything_once() {
        let n = 10_000u64;
        let sum = AtomicU64::new(0);
        (0..n).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0..1000u64).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn par_chunks_mut_covers_the_slice() {
        let mut data = vec![0u32; 1037];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[64], 2);
    }

    #[test]
    fn serial_install_matches_parallel_results() {
        let parallel: Vec<u64> = (0..512u64).into_par_iter().map(|i| i * i).collect();
        let serial: Vec<u64> = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| (0..512u64).into_par_iter().map(|i| i * i).collect());
        assert_eq!(parallel, serial);
    }

    #[test]
    fn sum_matches_the_serial_fold_for_integers() {
        let n = 100_003u64;
        let total: u64 = (0..n).into_par_iter().map(|i| i).sum();
        assert_eq!(total, n * (n - 1) / 2);
    }

    #[test]
    fn reduce_is_bitwise_stable_across_thread_counts() {
        // A sum whose result depends on association order: pooled and serial
        // execution must still agree bit-for-bit through the fixed-chunk tree.
        let f = |i: u64| 1.0f64 / (i as f64 + 1.0);
        let pooled: f64 = (0..50_000u64).into_par_iter().map(f).sum();
        let serial: f64 = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| (0..50_000u64).into_par_iter().map(f).sum());
        assert_eq!(pooled.to_bits(), serial.to_bits());
    }

    #[test]
    fn tree_combiner_reproduces_the_level_order_pairwise_tree() {
        // A textual operator exposes the exact association: any deviation in
        // pairing or operand order changes the string.
        let op = |a: String, b: String| format!("({a}+{b})");
        for n in 1..=64usize {
            let partials: Vec<String> = (0..n).map(|i| i.to_string()).collect();
            let expected = crate::combine_pairwise(partials.clone(), &op);
            let mut combiner = crate::TreeCombiner::new();
            for p in partials {
                combiner.push(p, &op);
            }
            let got = combiner.finish(&op).expect("non-empty combine");
            assert_eq!(got, expected, "combiner diverged from the tree at n={n}");
        }
    }

    #[test]
    fn reduce_is_bitwise_stable_at_chunk_boundaries() {
        let serial_pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let f = |i: u64| 1.0f64 / (i as f64 + 1.0);
        for &n in &[
            1u64,
            2,
            1023,
            1024,
            1025,
            3 * 1024,
            5 * 1024 + 17,
            11 * 1024 + 9,
            13 * 1024 + 1,
        ] {
            let pooled: f64 = (0..n).into_par_iter().map(f).sum();
            let serial: f64 = serial_pool.install(|| (0..n).into_par_iter().map(f).sum());
            assert_eq!(pooled.to_bits(), serial.to_bits(), "n={n}");
        }
    }

    #[test]
    fn reduce_handles_empty_and_single_element_ranges() {
        let empty: f64 = (0..0u64).into_par_iter().map(|_| 1.0).sum();
        assert_eq!(empty, 0.0);
        let single = (0..1u32)
            .into_par_iter()
            .map(|_| 41.0f64)
            .reduce(|| 1.0, |a, b| a + b);
        assert_eq!(single, 42.0);
    }

    #[test]
    fn reduce_computes_min_and_max() {
        let max = (0..10_000i64)
            .into_par_iter()
            .map(|i| ((i * 7919) % 10_007) as f64)
            .reduce(|| f64::NEG_INFINITY, f64::max);
        let expected = (0..10_000i64)
            .map(|i| ((i * 7919) % 10_007) as f64)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(max, expected);
    }

    #[test]
    fn sum_unrolled_matches_sum_exactly_for_integers() {
        let n = 100_003u64;
        let unrolled: u64 = (0..n).into_par_iter().map(|i| i).sum_unrolled();
        assert_eq!(unrolled, n * (n - 1) / 2);
        let empty: u64 = (0..0u64).into_par_iter().map(|i| i).sum_unrolled();
        assert_eq!(empty, 0);
    }

    #[test]
    fn sum_unrolled_is_bitwise_stable_across_thread_counts() {
        let serial_pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let f = |i: u64| 1.0f64 / (i as f64 + 1.0);
        for &n in &[1u64, 2, 3, 4, 5, 1023, 1024, 1025, 5 * 1024 + 17] {
            let pooled: f64 = (0..n).into_par_iter().map(f).sum_unrolled();
            let serial: f64 = serial_pool.install(|| (0..n).into_par_iter().map(f).sum_unrolled());
            assert_eq!(pooled.to_bits(), serial.to_bits(), "n={n}");
        }
    }

    #[test]
    fn sum_unrolled_stays_close_to_the_deterministic_lane() {
        // The fast lane commits to a different association, so the float
        // results may differ — but only by reassociation error.
        let f = |i: u64| 1.0f64 / (i as f64 + 1.0);
        let golden: f64 = (0..50_000u64).into_par_iter().map(f).sum();
        let fast: f64 = (0..50_000u64).into_par_iter().map(f).sum_unrolled();
        assert!((golden - fast).abs() / golden.abs() < 1e-12);
    }

    #[test]
    fn slice_par_iter_visits_by_reference_and_collects_in_order() {
        let data: Vec<u64> = (0..2048).collect();
        let sum = AtomicU64::new(0);
        data.par_iter().for_each(|&v| {
            sum.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 2048 * 2047 / 2);
        let doubled: Vec<u64> = data.par_iter().map(|&v| v * 2).collect();
        assert_eq!(doubled[1023], 2046);
        let total: u64 = data.par_iter().map(|&v| v).sum();
        assert_eq!(total, 2048 * 2047 / 2);
    }

    #[test]
    fn fold_reduce_is_bitwise_stable_across_thread_counts() {
        let data: Vec<f64> = (0..5000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let fold_sum = |slice: &[f64]| -> f64 {
            slice
                .par_iter()
                .fold(|| 0.0f64, |acc, &v| acc + v)
                .reduce(|| 0.0, |a, b| a + b)
        };
        let pooled = fold_sum(&data);
        let serial = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| fold_sum(&data));
        assert_eq!(pooled.to_bits(), serial.to_bits());
        // The fold lane chunks exactly like the reduce lane, so a fold-sum
        // equals a map-sum bitwise.
        let mapped: f64 = data.par_iter().map(|&v| v).sum();
        assert_eq!(pooled.to_bits(), mapped.to_bits());
    }

    #[test]
    fn fold_on_an_empty_input_returns_the_reduce_identity() {
        let empty: Vec<u64> = Vec::new();
        let count = empty
            .par_iter()
            .fold(|| 0u64, |acc, _| acc + 1)
            .reduce(|| 7u64, |a, b| a + b);
        assert_eq!(count, 7);
    }

    #[test]
    fn join_from_inside_a_parallel_region() {
        let total = AtomicU64::new(0);
        (0..64u64).into_par_iter().for_each(|i| {
            let (a, b) = crate::join(|| i * 2, || i * 3);
            total.fetch_add(a + b, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5 * 63 * 64 / 2);
    }
}
