//! Stencil scaling study: effective bandwidth across problem sizes,
//! precisions and devices (the workload behind the paper's Figure 3).
//!
//! Run with `cargo run --release --example stencil_scaling`.

use mojo_hpc::kernels::stencil7::{self, StencilConfig};
use mojo_hpc::metrics::{stencil_bandwidth_gbs, RunStats};
use mojo_hpc::spec::Precision;
use mojo_hpc::vendor::Platform;

fn main() {
    let platforms = [
        Platform::portable_h100(),
        Platform::cuda_h100(false),
        Platform::portable_mi300a(),
        Platform::hip_mi300a(false),
    ];
    println!(
        "{:<38} {:>6} {:>6} {:>12} {:>12} {:>10}",
        "platform", "L", "prec", "mean GB/s", "min GB/s", "cv %"
    );
    for platform in &platforms {
        for &l in &[128usize, 256, 512, 1024] {
            for precision in [Precision::Fp32, Precision::Fp64] {
                let config = StencilConfig::paper(l, precision);
                let run = stencil7::run(platform, &config).expect("stencil run");
                // 100 jittered measurements, first (warm-up) discarded inside.
                let samples = run.sample_durations(100, 0.035, 7);
                let stats = RunStats::from_samples(&samples);
                let mean_bw = stencil_bandwidth_gbs(l as u64, precision, stats.mean);
                let worst_bw = stencil_bandwidth_gbs(l as u64, precision, stats.max);
                println!(
                    "{:<38} {:>6} {:>6} {:>12.0} {:>12.0} {:>9.1}%",
                    platform.label(),
                    l,
                    precision.label(),
                    mean_bw,
                    worst_bw,
                    100.0 * stats.coefficient_of_variation()
                );
            }
        }
    }
    println!("\nThe H100 rows show the ~13-18% Mojo-vs-CUDA gap of Fig. 3a;");
    println!("the MI300A rows show the Mojo/HIP parity of Fig. 3b.");
}
