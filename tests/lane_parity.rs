//! Lane-parity suite (DESIGN.md §14).
//!
//! The SIMD fast lane may reassociate reductions, but never beyond each
//! kernel's documented tolerance — and the deterministic lane must stay
//! byte-identical to the goldens no matter which lane flags or thread counts
//! are in play. Three layers are pinned here:
//!
//! 1. every registered lane kernel agrees between lanes at every ladder size
//!    (bitwise where the tolerance is 0.0);
//! 2. every workload runs identically under the default policy and an
//!    explicit `--lane deterministic`, and still verifies under `simd` and
//!    `auto`;
//! 3. the real binary emits byte-identical output for `--lane deterministic`
//!    across thread counts, and exits clean on the other lanes.

use science_kernels::simd::{lane_kernels, Lane, LanePolicy};
use science_kernels::workload;
use std::process::{Command, Output};

fn mojo_hpc(args: &[&str], threads: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mojo-hpc"))
        .args(args)
        .env("RAYON_NUM_THREADS", threads)
        .output()
        .expect("run mojo-hpc")
}

#[test]
fn lane_kernels_agree_within_their_documented_tolerances() {
    for kernel in lane_kernels() {
        for &size in kernel.sizes {
            let deterministic = (kernel.run)(Lane::Deterministic, size);
            let simd = (kernel.run)(Lane::Simd, size);
            if kernel.tolerance == 0.0 {
                assert_eq!(
                    deterministic.to_bits(),
                    simd.to_bits(),
                    "{} (size {size}): lanes must be bitwise identical, got {} vs {}",
                    kernel.name,
                    deterministic,
                    simd
                );
            } else {
                let rel = (deterministic - simd).abs() / deterministic.abs().max(1.0);
                assert!(
                    rel <= kernel.tolerance,
                    "{} (size {size}): relative lane divergence {rel:.3e} exceeds the \
                     documented {:.1e} (deterministic {deterministic} vs simd {simd})",
                    kernel.name,
                    kernel.tolerance
                );
            }
        }
    }
}

#[test]
fn workloads_run_identically_on_the_deterministic_lane_and_verify_on_the_rest() {
    for engine in workload::all() {
        let params = engine.default_params();
        let base = engine.run(&params).expect("default-policy run succeeds");
        let deterministic = engine
            .run_lane(&params, LanePolicy::Deterministic)
            .expect("deterministic-lane run succeeds");
        assert_eq!(
            base.measurements.as_slice(),
            deterministic.measurements.as_slice(),
            "{}: explicit --lane deterministic must reproduce the default rows",
            engine.name()
        );
        for policy in [LanePolicy::Simd, LanePolicy::Auto] {
            let lane = engine
                .run_lane(&params, policy)
                .expect("non-default lane run succeeds");
            assert_eq!(
                lane.measurements.len(),
                deterministic.measurements.len(),
                "{} ({policy}): lane changes the measurement shape",
                engine.name()
            );
            for (base_row, lane_row) in deterministic
                .measurements
                .iter()
                .zip(lane.measurements.iter())
            {
                assert_eq!(base_row.kernel, lane_row.kernel);
                // The verification class (passed/skipped) must not change
                // with the lane; the max-error detail inside may.
                assert_eq!(
                    base_row.verification.as_str().split('(').next(),
                    lane_row.verification.as_str().split('(').next(),
                    "{} ({policy}, kernel {}): lane changed the verification outcome",
                    engine.name(),
                    base_row.kernel
                );
            }
        }
    }
}

#[test]
fn cli_lane_deterministic_is_byte_identical_across_thread_counts() {
    // One bandwidth experiment (fig4: BabelStream, includes the Dot
    // reduction) and one reduction-heavy experiment (table4: Hartree–Fock).
    for experiment in ["fig4", "table4"] {
        let base = mojo_hpc(&["run", experiment], "1");
        assert_eq!(base.status.code(), Some(0), "run {experiment} failed");
        for threads in ["1", "4"] {
            let lane = mojo_hpc(&["run", experiment, "--lane", "deterministic"], threads);
            assert_eq!(
                lane.status.code(),
                Some(0),
                "run {experiment} --lane deterministic failed at {threads} thread(s)"
            );
            assert_eq!(
                base.stdout, lane.stdout,
                "{experiment}: --lane deterministic at {threads} thread(s) \
                 moved bytes relative to the default run"
            );
        }
    }
}

#[test]
fn cli_simd_and_auto_lanes_run_clean() {
    for lane in ["simd", "auto"] {
        let output = mojo_hpc(&["run", "fig4", "--lane", lane], "1");
        assert_eq!(
            output.status.code(),
            Some(0),
            "run fig4 --lane {lane} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
}
