//! Console renderers for tables and figure series.

mod figure;
mod table;

pub use figure::Series;
pub use table::AsciiTable;
