//! Simulated device memory: a capacity-tracked pool of typed buffers.
//!
//! Mirrors the paper's memory model (Listing 1): the host creates a
//! `DeviceContext`, enqueues buffer creations, copies data in, launches
//! kernels over the buffers, and copies results back. Here [`Device`] plays
//! the role of the context's device and [`DeviceBuffer`] the role of a device
//! allocation. Buffers use GPU global-memory semantics: any simulated thread
//! may read or write any element without synchronisation (see
//! [`crate::slice::UnsafeSlice`] for the safety contract).
//!
//! Backing storage is drawn from the process-wide size-classed buffer pool
//! ([`crate::pool`], DESIGN.md §11) and returned on drop, so repeated
//! launches that allocate the same buffer shapes stop touching the global
//! allocator after the first (warm-up) launch. Device-side accounting is
//! unaffected: `allocated_bytes` tracks the *logical* request, and the peak
//! footprint is exposed as [`Device::high_water_bytes`].

use crate::atomics;
use crate::error::{SimError, SimResult};
use crate::pool::{self, PooledVec};
use gpu_spec::{GpuSpec, Precision};
use parking_lot::Mutex;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Scalar element types that can live in simulated device memory.
pub trait DeviceScalar:
    Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static
{
    /// Size of one element in bytes.
    const SIZE_BYTES: usize;
    /// The floating-point precision this type corresponds to, if any.
    fn precision() -> Option<Precision>;
}

impl DeviceScalar for f32 {
    const SIZE_BYTES: usize = 4;
    fn precision() -> Option<Precision> {
        Some(Precision::Fp32)
    }
}

impl DeviceScalar for f64 {
    const SIZE_BYTES: usize = 8;
    fn precision() -> Option<Precision> {
        Some(Precision::Fp64)
    }
}

impl DeviceScalar for i32 {
    const SIZE_BYTES: usize = 4;
    fn precision() -> Option<Precision> {
        None
    }
}

impl DeviceScalar for u32 {
    const SIZE_BYTES: usize = 4;
    fn precision() -> Option<Precision> {
        None
    }
}

impl DeviceScalar for u64 {
    const SIZE_BYTES: usize = 8;
    fn precision() -> Option<Precision> {
        None
    }
}

/// Device-memory accounting: the live footprint and its peak.
#[derive(Debug, Default, Clone, Copy)]
struct MemUsage {
    allocated: u64,
    high_water: u64,
}

#[derive(Debug)]
struct DeviceInner {
    spec: GpuSpec,
    usage: Mutex<MemUsage>,
}

/// A simulated GPU device: owns the hardware description and tracks how much
/// of the device memory is currently allocated.
#[derive(Clone, Debug)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl Device {
    /// Creates a device from a hardware description.
    pub fn new(spec: GpuSpec) -> Self {
        Device {
            inner: Arc::new(DeviceInner {
                spec,
                usage: Mutex::new(MemUsage::default()),
            }),
        }
    }

    /// The hardware description this device simulates.
    pub fn spec(&self) -> &GpuSpec {
        &self.inner.spec
    }

    /// Bytes of device memory currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.inner.usage.lock().allocated
    }

    /// Peak of [`allocated_bytes`](Self::allocated_bytes) over the device's
    /// lifetime. Under pooled steady-state reuse this stays flat while the
    /// current footprint returns to zero between launches.
    pub fn high_water_bytes(&self) -> u64 {
        self.inner.usage.lock().high_water
    }

    /// Bytes of device memory still available.
    pub fn available_bytes(&self) -> u64 {
        self.inner.spec.memory_bytes - self.allocated_bytes()
    }

    /// Allocates an uninitialised (zero-filled) buffer of `len` elements,
    /// mirroring `ctx.enqueue_create_buffer[dtype](len)`.
    ///
    /// Backing storage comes from the size-classed pool: a warm repeat of the
    /// same allocation shape reuses a shelved block instead of allocating.
    pub fn alloc<T: DeviceScalar>(&self, len: usize) -> SimResult<DeviceBuffer<T>> {
        let bytes = (len * T::SIZE_BYTES) as u64;
        {
            let mut usage = self.inner.usage.lock();
            let available = self.inner.spec.memory_bytes - usage.allocated;
            if bytes > available {
                return Err(SimError::OutOfMemory {
                    requested: bytes,
                    available,
                });
            }
            usage.allocated += bytes;
            usage.high_water = usage.high_water.max(usage.allocated);
        }
        let block = (len > 0).then(|| pool::checkout(len * T::SIZE_BYTES));
        let ptr = block
            .as_ref()
            .map_or(NonNull::<T>::dangling().as_ptr(), |b| {
                b.as_ptr().cast::<T>()
            });
        for i in 0..len {
            // SAFETY: the block holds at least `len * SIZE_BYTES` bytes and
            // BLOCK_ALIGN covers every DeviceScalar alignment.
            unsafe { std::ptr::write(ptr.add(i), T::default()) };
        }
        // The refcounted header lives in a pooled block of its own (an
        // `Arc::new` here would put one global allocation on every buffer of
        // every launch, which is exactly what the steady-state contract
        // forbids).
        let header_block = pool::checkout(std::mem::size_of::<BufferInner<T>>().max(1));
        let inner = header_block.as_ptr().cast::<BufferInner<T>>();
        // SAFETY: the header block is at least `size_of::<BufferInner<T>>()`
        // bytes and BLOCK_ALIGN covers its alignment; we initialise it before
        // handing out the pointer.
        unsafe {
            std::ptr::write(
                inner,
                BufferInner {
                    refs: AtomicUsize::new(1),
                    header: Some(header_block),
                    storage: BufferStorage {
                        ptr,
                        len,
                        block,
                        bytes,
                        device: Arc::clone(&self.inner),
                    },
                },
            );
            Ok(DeviceBuffer {
                inner: NonNull::new_unchecked(inner),
            })
        }
    }

    /// Allocates a buffer and copies `data` into it (host-to-device transfer).
    pub fn alloc_from_host<T: DeviceScalar>(&self, data: &[T]) -> SimResult<DeviceBuffer<T>> {
        let buf = self.alloc::<T>(data.len())?;
        buf.copy_from_host(data)?;
        Ok(buf)
    }
}

/// The pooled header of one buffer: a manual refcount plus the storage
/// record, written into a pool block so that handle creation, cloning and
/// dropping never touch the global allocator.
struct BufferInner<T: DeviceScalar> {
    refs: AtomicUsize,
    /// The pool block holding *this header*, returned when the last handle
    /// drops (taken out before the header is dropped in place).
    header: Option<pool::Block>,
    storage: BufferStorage<T>,
}

struct BufferStorage<T: DeviceScalar> {
    /// Start of the pooled element storage (dangling for `len == 0`).
    ptr: *mut T,
    len: usize,
    /// The pooled block backing `ptr`, returned on drop (`None` when empty).
    block: Option<pool::Block>,
    bytes: u64,
    device: Arc<DeviceInner>,
}

// SAFETY: concurrent element access follows GPU global-memory semantics; the
// disjointness obligation is documented on `UnsafeSlice` and `DeviceBuffer`.
unsafe impl<T: DeviceScalar> Sync for BufferStorage<T> {}
unsafe impl<T: DeviceScalar> Send for BufferStorage<T> {}

impl<T: DeviceScalar> Drop for BufferStorage<T> {
    fn drop(&mut self) {
        {
            let mut usage = self.device.usage.lock();
            usage.allocated = usage.allocated.saturating_sub(self.bytes);
        }
        if let Some(block) = self.block.take() {
            // DeviceScalar elements are Copy — no element drop glue — so the
            // block goes straight back to its shelf (or is freed while
            // unwinding: a panicking launch must not shelve storage it may
            // have left mid-write).
            if std::thread::panicking() {
                pool::discard(block);
            } else {
                pool::recycle(block);
            }
        }
    }
}

impl<T: DeviceScalar> std::fmt::Debug for BufferStorage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferStorage")
            .field("len", &self.len)
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// A typed allocation in simulated device memory.
///
/// Cloning a `DeviceBuffer` clones the *handle* (like copying a device
/// pointer), not the data. Reads and writes take `&self` and may be issued
/// concurrently from many simulated threads; writers to the same element must
/// not race, exactly as on hardware. The handle is refcounted through a
/// pooled header block rather than an `Arc`, so buffer churn is
/// allocation-free once the pool is warm.
pub struct DeviceBuffer<T: DeviceScalar> {
    inner: NonNull<BufferInner<T>>,
}

// SAFETY: the header is shared immutably (the refcount is atomic) and the
// element storage follows the GPU global-memory contract documented above.
unsafe impl<T: DeviceScalar> Send for DeviceBuffer<T> {}
unsafe impl<T: DeviceScalar> Sync for DeviceBuffer<T> {}

impl<T: DeviceScalar> Clone for DeviceBuffer<T> {
    fn clone(&self) -> Self {
        self.storage_inner().refs.fetch_add(1, Ordering::Relaxed);
        DeviceBuffer { inner: self.inner }
    }
}

impl<T: DeviceScalar> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        // SAFETY: the header stays alive until the last handle drops; the
        // AcqRel ordering makes the final decrement synchronise with every
        // earlier release, exactly like `Arc`.
        unsafe {
            if self.inner.as_ref().refs.fetch_sub(1, Ordering::AcqRel) != 1 {
                return;
            }
            let header = (*self.inner.as_ptr()).header.take();
            std::ptr::drop_in_place(self.inner.as_ptr());
            if let Some(block) = header {
                if std::thread::panicking() {
                    pool::discard(block);
                } else {
                    pool::recycle(block);
                }
            }
        }
    }
}

impl<T: DeviceScalar> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("storage", self.storage())
            .finish()
    }
}

impl<T: DeviceScalar> DeviceBuffer<T> {
    #[inline]
    fn storage_inner(&self) -> &BufferInner<T> {
        // SAFETY: the header outlives every handle (refcount above).
        unsafe { self.inner.as_ref() }
    }

    #[inline]
    fn storage(&self) -> &BufferStorage<T> {
        &self.storage_inner().storage
    }

    /// Number of elements in the buffer.
    pub fn len(&self) -> usize {
        self.storage().len
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.storage().len == 0
    }

    /// Size of the allocation in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.storage().bytes
    }

    /// Reads element `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds (device-side bounds are always checked
    /// by the simulator; hardware would silently corrupt memory instead).
    #[inline]
    pub fn read(&self, i: usize) -> T {
        assert!(
            i < self.len(),
            "device read out of bounds: {} >= {}",
            i,
            self.len()
        );
        // SAFETY: bounds-checked above; element reads may race with writes to
        // *other* elements only, per the GPU memory contract.
        unsafe { std::ptr::read(self.storage().ptr.add(i)) }
    }

    /// Writes element `i`. Concurrent writers to distinct elements are
    /// allowed; racing on one element is a bug in the kernel.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn write(&self, i: usize, value: T) {
        assert!(
            i < self.len(),
            "device write out of bounds: {} >= {}",
            i,
            self.len()
        );
        // SAFETY: bounds-checked above; disjoint-writer obligation is the
        // kernel author's, as documented.
        unsafe { std::ptr::write(self.storage().ptr.add(i), value) }
    }

    /// Fills the whole buffer with `value`.
    pub fn fill(&self, value: T) {
        for i in 0..self.len() {
            self.write(i, value);
        }
    }

    /// Copies host data into the buffer (host-to-device transfer).
    pub fn copy_from_host(&self, data: &[T]) -> SimResult<()> {
        if data.len() != self.len() {
            return Err(SimError::SizeMismatch {
                expected: self.len(),
                actual: data.len(),
            });
        }
        for (i, v) in data.iter().enumerate() {
            self.write(i, *v);
        }
        Ok(())
    }

    /// Copies the buffer back to the host (device-to-host transfer).
    pub fn copy_to_host(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.read(i)).collect()
    }

    /// Copies the buffer back to the host into a reusable pooled vector —
    /// the steady-state variant of [`copy_to_host`](Self::copy_to_host):
    /// a warm `out` of the right capacity makes the transfer allocation-free.
    pub fn copy_to_host_into(&self, out: &mut PooledVec<T>) {
        out.clear();
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(self.read(i));
        }
    }

    /// Start of the backing storage, for pointer-identity reuse tests.
    #[cfg(test)]
    fn storage_ptr(&self) -> *const T {
        self.storage().ptr
    }

    /// Raw pointer to element `i`, used by the atomic operations below.
    #[inline]
    fn element_ptr(&self, i: usize) -> *mut T {
        assert!(
            i < self.len(),
            "device atomic out of bounds: {} >= {}",
            i,
            self.len()
        );
        // SAFETY-adjacent: in bounds after the assert.
        unsafe { self.storage().ptr.add(i) }
    }
}

impl DeviceBuffer<f64> {
    /// Atomically adds `value` to element `i` and returns the previous value,
    /// mirroring Mojo's `Atomic.fetch_add` / CUDA's `atomicAdd` on doubles.
    #[inline]
    pub fn atomic_add(&self, i: usize, value: f64) -> f64 {
        // SAFETY: pointer is valid and 8-aligned; atomics::fetch_add_f64 only
        // issues atomic operations on it.
        unsafe { atomics::fetch_add_f64(self.element_ptr(i), value) }
    }
}

impl DeviceBuffer<f32> {
    /// Atomically adds `value` to element `i` and returns the previous value.
    #[inline]
    pub fn atomic_add(&self, i: usize, value: f32) -> f32 {
        // SAFETY: pointer is valid and 4-aligned.
        unsafe { atomics::fetch_add_f32(self.element_ptr(i), value) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::presets;

    fn device() -> Device {
        Device::new(presets::test_device())
    }

    #[test]
    fn alloc_and_roundtrip() {
        let dev = device();
        let buf = dev.alloc_from_host(&[1.0f64, 2.0, 3.0]).unwrap();
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.size_bytes(), 24);
        assert_eq!(buf.copy_to_host(), vec![1.0, 2.0, 3.0]);
        assert!(!buf.is_empty());
    }

    #[test]
    fn alloc_tracks_capacity_and_frees_on_drop() {
        let dev = device();
        assert_eq!(dev.allocated_bytes(), 0);
        {
            let _a = dev.alloc::<f64>(1024).unwrap();
            let _b = dev.alloc::<f32>(1024).unwrap();
            assert_eq!(dev.allocated_bytes(), 8 * 1024 + 4 * 1024);
        }
        assert_eq!(dev.allocated_bytes(), 0);
    }

    #[test]
    fn clone_shares_storage_and_counts_once() {
        let dev = device();
        let a = dev.alloc::<f64>(16).unwrap();
        let b = a.clone();
        b.write(5, 7.0);
        assert_eq!(a.read(5), 7.0);
        assert_eq!(dev.allocated_bytes(), 128);
        drop(a);
        assert_eq!(dev.allocated_bytes(), 128);
        drop(b);
        assert_eq!(dev.allocated_bytes(), 0);
    }

    #[test]
    fn high_water_tracks_the_peak_not_the_current_footprint() {
        let dev = device();
        assert_eq!(dev.high_water_bytes(), 0);
        {
            let _a = dev.alloc::<f64>(1024).unwrap();
            let _b = dev.alloc::<f32>(1024).unwrap();
        }
        assert_eq!(dev.allocated_bytes(), 0);
        assert_eq!(dev.high_water_bytes(), 8 * 1024 + 4 * 1024);
        // A smaller second round leaves the peak untouched.
        let _c = dev.alloc::<f32>(16).unwrap();
        assert_eq!(dev.high_water_bytes(), 8 * 1024 + 4 * 1024);
    }

    #[test]
    fn repeated_allocation_reuses_pooled_storage() {
        let dev = device();
        // A size class no other test in this binary uses, so the shelved
        // block we observe by pointer identity is ours alone.
        const N: usize = 24_000; // 187.5 KiB of f64 → 256 KiB class
        let warm = dev.alloc::<f64>(N).unwrap();
        let ptr = warm.storage_ptr() as usize;
        drop(warm);
        for _ in 0..4 {
            let buf = dev.alloc::<f64>(N).unwrap();
            assert_eq!(
                buf.storage_ptr() as usize,
                ptr,
                "warm device allocs must reuse the shelved pool block"
            );
            buf.write(N - 1, 1.5);
            assert_eq!(buf.read(N - 1), 1.5);
            assert_eq!(buf.read(0), 0.0, "pooled storage is re-zeroed");
        }
    }

    #[test]
    fn copy_to_host_into_reuses_the_output_buffer() {
        let dev = device();
        let buf = dev.alloc_from_host(&[1.0f64, 2.0, 3.0]).unwrap();
        let mut out = crate::pool::PooledVec::new();
        buf.copy_to_host_into(&mut out);
        assert_eq!(out.as_slice(), &[1.0, 2.0, 3.0]);
        let cap = out.capacity();
        buf.copy_to_host_into(&mut out);
        assert_eq!(out.capacity(), cap);
        assert_eq!(out.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn zero_length_buffers_round_trip() {
        let dev = device();
        let buf = dev.alloc::<f64>(0).unwrap();
        assert!(buf.is_empty());
        assert_eq!(buf.copy_to_host(), Vec::<f64>::new());
        assert_eq!(dev.allocated_bytes(), 0);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let dev = device();
        let too_big = (dev.spec().memory_bytes / 8 + 1) as usize;
        let err = dev.alloc::<f64>(too_big).unwrap_err();
        match err {
            SimError::OutOfMemory { requested, .. } => assert!(requested > dev.spec().memory_bytes),
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn copy_size_mismatch_is_reported() {
        let dev = device();
        let buf = dev.alloc::<f32>(4).unwrap();
        assert!(matches!(
            buf.copy_from_host(&[1.0, 2.0]),
            Err(SimError::SizeMismatch {
                expected: 4,
                actual: 2
            })
        ));
    }

    #[test]
    fn fill_sets_every_element() {
        let dev = device();
        let buf = dev.alloc::<u32>(100).unwrap();
        buf.fill(42);
        assert!(buf.copy_to_host().iter().all(|&v| v == 42));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let dev = device();
        let buf = dev.alloc::<f64>(2).unwrap();
        let _ = buf.read(2);
    }

    #[test]
    fn atomic_add_f64_accumulates() {
        let dev = device();
        let buf = dev.alloc::<f64>(1).unwrap();
        use rayon::prelude::*;
        (0..1000).into_par_iter().for_each(|_| {
            buf.atomic_add(0, 1.0);
        });
        assert_eq!(buf.read(0), 1000.0);
    }

    #[test]
    fn atomic_add_f32_accumulates() {
        let dev = device();
        let buf = dev.alloc::<f32>(1).unwrap();
        use rayon::prelude::*;
        (0..1000).into_par_iter().for_each(|_| {
            buf.atomic_add(0, 0.5);
        });
        assert_eq!(buf.read(0), 500.0);
    }

    #[test]
    fn scalar_sizes_and_precisions() {
        assert_eq!(f32::SIZE_BYTES, 4);
        assert_eq!(f64::SIZE_BYTES, 8);
        assert_eq!(f32::precision(), Some(Precision::Fp32));
        assert_eq!(f64::precision(), Some(Precision::Fp64));
        assert_eq!(i32::precision(), None);
        assert_eq!(u64::precision(), None);
    }
}
