//! Fixed-width SIMD value type, mirroring Mojo's `SIMD[dtype, width]`.
//!
//! The miniBUDE port in the paper (Listing 4) accumulates per-pose energies in
//! a `SIMD[dtype, PPWI]` register vector: one lane per pose handled by the
//! work-item. [`Simd`] reproduces that idiom with const generics; arithmetic
//! is element-wise and the type is `Copy`, so kernels treat it exactly like a
//! scalar register file.

use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A fixed-width vector of `N` lanes of `f32`.
///
/// Only the `f32` element type is provided because that is what miniBUDE uses;
/// widening to a generic element type would be mechanical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Simd<const N: usize> {
    lanes: [f32; N],
}

impl<const N: usize> Default for Simd<N> {
    fn default() -> Self {
        Simd { lanes: [0.0; N] }
    }
}

impl<const N: usize> Simd<N> {
    /// A vector with every lane set to zero (Mojo's `SIMD[dtype, PPWI]()`).
    pub fn zero() -> Self {
        Self::default()
    }

    /// A vector with every lane set to `value`.
    pub fn splat(value: f32) -> Self {
        Simd { lanes: [value; N] }
    }

    /// Builds a vector from an array of lane values.
    pub fn from_array(lanes: [f32; N]) -> Self {
        Simd { lanes }
    }

    /// The number of lanes.
    pub const fn width(&self) -> usize {
        N
    }

    /// The lane values as an array.
    pub fn to_array(&self) -> [f32; N] {
        self.lanes
    }

    /// Sum of all lanes.
    pub fn reduce_add(&self) -> f32 {
        self.lanes.iter().sum()
    }

    /// Element-wise multiply-accumulate: `self += a * b`.
    pub fn fma_assign(&mut self, a: Simd<N>, b: Simd<N>) {
        for i in 0..N {
            self.lanes[i] += a.lanes[i] * b.lanes[i];
        }
    }

    /// Element-wise maximum with a scalar.
    pub fn max_scalar(&self, value: f32) -> Simd<N> {
        let mut out = *self;
        for lane in out.lanes.iter_mut() {
            *lane = lane.max(value);
        }
        out
    }

    /// Applies `f` to every lane.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Simd<N> {
        let mut out = *self;
        for lane in out.lanes.iter_mut() {
            *lane = f(*lane);
        }
        out
    }
}

impl<const N: usize> Add for Simd<N> {
    type Output = Simd<N>;
    fn add(self, rhs: Simd<N>) -> Simd<N> {
        let mut out = self;
        for i in 0..N {
            out.lanes[i] += rhs.lanes[i];
        }
        out
    }
}

impl<const N: usize> AddAssign for Simd<N> {
    fn add_assign(&mut self, rhs: Simd<N>) {
        for i in 0..N {
            self.lanes[i] += rhs.lanes[i];
        }
    }
}

impl<const N: usize> Sub for Simd<N> {
    type Output = Simd<N>;
    fn sub(self, rhs: Simd<N>) -> Simd<N> {
        let mut out = self;
        for i in 0..N {
            out.lanes[i] -= rhs.lanes[i];
        }
        out
    }
}

impl<const N: usize> Mul for Simd<N> {
    type Output = Simd<N>;
    fn mul(self, rhs: Simd<N>) -> Simd<N> {
        let mut out = self;
        for i in 0..N {
            out.lanes[i] *= rhs.lanes[i];
        }
        out
    }
}

impl<const N: usize> Mul<f32> for Simd<N> {
    type Output = Simd<N>;
    fn mul(self, rhs: f32) -> Simd<N> {
        let mut out = self;
        for lane in out.lanes.iter_mut() {
            *lane *= rhs;
        }
        out
    }
}

impl<const N: usize> Index<usize> for Simd<N> {
    type Output = f32;
    fn index(&self, index: usize) -> &f32 {
        &self.lanes[index]
    }
}

impl<const N: usize> IndexMut<usize> for Simd<N> {
    fn index_mut(&mut self, index: usize) -> &mut f32 {
        &mut self.lanes[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_width() {
        let z = Simd::<4>::zero();
        assert_eq!(z.to_array(), [0.0; 4]);
        assert_eq!(z.width(), 4);
        let s = Simd::<4>::splat(2.5);
        assert_eq!(s.to_array(), [2.5; 4]);
        let a = Simd::<3>::from_array([1.0, 2.0, 3.0]);
        assert_eq!(a[2], 3.0);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Simd::<4>::from_array([1.0, 2.0, 3.0, 4.0]);
        let b = Simd::<4>::splat(2.0);
        assert_eq!((a + b).to_array(), [3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a - b).to_array(), [-1.0, 0.0, 1.0, 2.0]);
        assert_eq!((a * b).to_array(), [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a * 3.0).to_array(), [3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn add_assign_and_fma() {
        let mut acc = Simd::<2>::zero();
        acc += Simd::from_array([1.0, 2.0]);
        acc.fma_assign(Simd::splat(3.0), Simd::from_array([1.0, 2.0]));
        assert_eq!(acc.to_array(), [4.0, 8.0]);
    }

    #[test]
    fn reductions_and_maps() {
        let a = Simd::<4>::from_array([1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.reduce_add(), -2.0);
        assert_eq!(a.max_scalar(0.0).to_array(), [1.0, 0.0, 3.0, 0.0]);
        assert_eq!(a.map(|x| x * x).to_array(), [1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn index_mut_updates_lane() {
        let mut a = Simd::<2>::zero();
        a[1] = 9.0;
        assert_eq!(a.to_array(), [0.0, 9.0]);
    }
}
