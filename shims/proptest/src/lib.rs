//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro over `#[test]` functions with `arg in strategy` bindings, range
//! strategies over the numeric primitives, `proptest::collection::vec`,
//! `proptest::array::uniform4`, `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig` for capping case counts (also honoured from the
//! `PROPTEST_CASES` environment variable).
//!
//! Sampling is deterministic: each test derives its generator seed from its
//! own name, so failures reproduce across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Default number of cases per property when neither `ProptestConfig` nor
/// `PROPTEST_CASES` overrides it. Deliberately modest so the tier-1 suite
/// stays fast; raise via the environment for deeper soak runs.
pub const DEFAULT_CASES: u32 = 24;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` sampled cases. The `PROPTEST_CASES`
    /// environment variable takes precedence when set, so capped suites can
    /// still be soaked without editing code.
    pub fn with_cases(cases: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cases);
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: default_cases(),
        }
    }
}

/// Resolves the case count: `PROPTEST_CASES` env var or the default.
pub fn default_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Builds the deterministic generator for one named test.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Array strategies (`proptest::array`).
pub mod array {
    use super::{StdRng, Strategy};

    /// Strategy producing fixed-size arrays of `N` elements.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut StdRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }

    /// Four values drawn from the same element strategy.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray { element }
    }
}

/// The proptest-style glob import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares a block of property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that
/// samples its arguments `cases` times from a deterministic generator and
/// runs the body on every sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __cases: u32 = ($cfg).cases;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, bindings and assertions together.
        fn ranges_stay_in_bounds(a in 1u32..32, x in -2.0f64..2.0) {
            prop_assert!((1..32).contains(&a));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        fn vectors_respect_length_bounds(v in crate::collection::vec(0.0f64..1.0, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)));
        }

        fn arrays_have_four_lanes(a in crate::array::uniform4(-1.0f32..1.0)) {
            prop_assert_eq!(a.len(), 4);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        use rand::Rng;
        let mut a = crate::test_rng("a");
        let mut b = crate::test_rng("b");
        assert_ne!(a.gen::<f64>(), b.gen::<f64>());
    }
}
