//! Bench target for Table 5 — the performance-portability metric Φ.

use criterion::Criterion;
use experiment_report::experiments::table5;
use experiment_report::ExperimentId;

fn bench(c: &mut Criterion) {
    let pool_before = bench::pool_snapshot();
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("phi_over_all_applications", |b| {
        b.iter(|| {
            table5::portability_tables()
                .iter()
                .filter_map(|t| t.phi())
                .sum::<f64>()
        })
    });
    bench::record_pool_counters(&mut group, &pool_before);
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Table5);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
