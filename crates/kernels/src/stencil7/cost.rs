//! Analytic launch cost of the seven-point stencil.

use super::config::StencilConfig;
use gpu_sim::stats::{AccessPattern, FlopCounts};
use gpu_sim::KernelCost;
use hpc_metrics::{stencil_fetch_bytes, stencil_write_bytes};
use vendor_models::heuristics;

/// Builds the launch cost of one stencil step under `config`.
///
/// DRAM traffic follows the paper's Eq. (1) (each cell value is fetched once
/// and each interior cell written once, courtesy of the caches); L1 traffic
/// counts the seven reads and one write each interior thread actually issues;
/// L2 sits in between. FLOPs per interior cell: the kernel of Listing 2 does
/// 6 additions and 4 multiplications.
pub fn stencil_cost(config: &StencilConfig) -> KernelCost {
    let l = config.l as u64;
    let elem = config.precision.size_of() as u64;
    let interior = config.interior_cells();
    let launch = heuristics::stencil_launch(config.l as u32, config.block_x);

    let fetch = stencil_fetch_bytes(l, config.precision);
    let write = stencil_write_bytes(l, config.precision);
    let l1_bytes = interior * 8 * elem; // 7 loads + 1 store per interior thread
    let l2_bytes = interior * 4 * elem; // partial reuse between L1 and DRAM

    KernelCost::builder(
        "laplacian",
        config.precision,
        launch,
        AccessPattern::Stencil3D,
    )
    .dram_traffic(fetch, write)
    .l1_bytes(l1_bytes)
    .l2_bytes(l2_bytes)
    .flops(FlopCounts {
        adds: interior * 6,
        muls: interior * 4,
        ..Default::default()
    })
    .loads_stores_per_thread(7.0, 1.0)
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;

    #[test]
    fn dram_traffic_matches_eq1() {
        let config = StencilConfig::paper(512, Precision::Fp64);
        let cost = stencil_cost(&config);
        assert_eq!(cost.bytes_read, (512u64.pow(3) - 8 - 12 * 510) * 8);
        assert_eq!(cost.bytes_written, 510u64.pow(3) * 8);
    }

    #[test]
    fn arithmetic_intensities_are_ordered_like_table2() {
        let config = StencilConfig::paper(512, Precision::Fp64);
        let cost = stencil_cost(&config);
        // Table 2 reports L1 ai 0.14, L2 ai 0.26, L3 ai 0.62 for this case.
        assert!((cost.arithmetic_intensity_l1() - 0.14).abs() < 0.05);
        assert!((cost.arithmetic_intensity_l2() - 0.26).abs() < 0.08);
        assert!((cost.arithmetic_intensity_dram() - 0.62).abs() < 0.08);
        assert!(cost.arithmetic_intensity_l1() < cost.arithmetic_intensity_l2());
        assert!(cost.arithmetic_intensity_l2() < cost.arithmetic_intensity_dram());
    }

    #[test]
    fn fp32_doubles_intensity() {
        let f64cost = stencil_cost(&StencilConfig::paper(1024, Precision::Fp64));
        let f32cost = stencil_cost(&StencilConfig::paper(1024, Precision::Fp32));
        let ratio = f32cost.arithmetic_intensity_dram() / f64cost.arithmetic_intensity_dram();
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn launch_covers_the_grid() {
        let config = StencilConfig::paper(512, Precision::Fp64);
        let cost = stencil_cost(&config);
        assert_eq!(cost.launch.total_threads(), 512u64.pow(3));
        assert_eq!(cost.loads_per_thread, 7.0);
        assert_eq!(cost.stores_per_thread, 1.0);
    }
}
