//! Portable (Mojo-style) fasten implementation — paper Listing 4.
//!
//! Poses-per-work-item (PPWI) is a compile-time parameter in the Mojo port
//! (`fn fasten_kernel[PPWI: Int](…)`); the Rust analogue is a const-generic
//! kernel dispatched over the paper's PPWI sweep values. Per-pose energies
//! accumulate in a [`Simd`] register vector, mirroring `SIMD[dtype, PPWI]`,
//! and the ligand/protein molecules are read from flattened 4-float-per-atom
//! buffers — the exact workaround the paper describes for Mojo's missing
//! plain-old-data GPU allocations.

use super::config::MiniBudeConfig;
use super::cost::fasten_cost;
use super::reference::{pair_energy, transform_point, HALF};
use crate::cache;
use crate::common::{compare_slices_f32, Verification, WorkloadRun};
use crate::simd::{self, Lane, LanePolicy};
use gpu_sim::{istr, SimError};
use portable_kernel::prelude::*;
use vendor_models::{heuristics, KernelClass, Platform};

/// Runs the portable fasten kernel on `platform` under the process-wide lane
/// policy.
pub fn run_portable(platform: &Platform, config: &MiniBudeConfig) -> Result<WorkloadRun, SimError> {
    run_portable_lane(platform, config, simd::process_policy())
}

/// Runs the portable fasten kernel under an explicit lane policy. The lane
/// picks the host verification scan; both scans return bit-identical results,
/// so fasten rows are byte-identical on every lane.
pub fn run_portable_lane(
    platform: &Platform,
    config: &MiniBudeConfig,
    policy: LanePolicy,
) -> Result<WorkloadRun, SimError> {
    let cost = fasten_cost(config);
    let class = KernelClass::BudeFasten {
        ppwi: config.ppwi,
        wg: config.wg,
    };
    let profile = platform.execution_profile(&class);
    let timing = cache::timing_model(platform).estimate(&cost, &profile);
    let lane = simd::resolve(
        policy,
        simd::KERNEL_MINIBUDE_POSE,
        config.executed_poses as u64,
    );

    let verification = if config.should_execute() {
        execute(platform, config, lane)?
    } else {
        Verification::Skipped {
            reason: istr("functional execution disabled (executed_poses = 0)"),
        }
    };

    Ok(WorkloadRun {
        backend: profile.backend.clone(),
        device: istr(&platform.spec.name),
        kernel: istr("fasten"),
        cost,
        profile,
        timing,
        verification,
    })
}

/// Device-side views shared by every PPWI instantiation.
struct FastenArgs {
    protein: LayoutTensor<f32>,
    ligand: LayoutTensor<f32>,
    forcefield: LayoutTensor<f32>,
    transforms: [LayoutTensor<f32>; 6],
    etotals: LayoutTensor<f32>,
    natlig: usize,
    natpro: usize,
    num_transforms: usize,
}

/// The const-generic kernel body: one thread handles `PPWI` poses.
fn fasten_kernel<const PPWI: usize>(t: ThreadCtx, args: &FastenArgs) {
    let lsz = t.block_dim.x as usize;
    let mut ix = (t.block_idx.x as usize) * lsz * PPWI + t.thread_idx.x as usize;
    if ix >= args.num_transforms {
        ix = args.num_transforms - PPWI;
    }

    let mut etot = Simd::<PPWI>::zero();

    // Transform every ligand atom into every lane's pose frame, then loop over
    // protein atoms accumulating the interaction energy.
    for lane in 0..PPWI {
        let pose_index = ix + lane * lsz;
        if pose_index >= args.num_transforms {
            continue;
        }
        let pose = [
            args.transforms[0].get(pose_index),
            args.transforms[1].get(pose_index),
            args.transforms[2].get(pose_index),
            args.transforms[3].get(pose_index),
            args.transforms[4].get(pose_index),
            args.transforms[5].get(pose_index),
        ];
        let mut lane_energy = 0.0f32;
        for l in 0..args.natlig {
            let lx = args.ligand.get(l * 4);
            let ly = args.ligand.get(l * 4 + 1);
            let lz = args.ligand.get(l * 4 + 2);
            let ltype = args.ligand.get(l * 4 + 3) as usize;
            let l_ff = (
                args.forcefield.get(ltype * 3),
                args.forcefield.get(ltype * 3 + 1),
                args.forcefield.get(ltype * 3 + 2),
            );
            let (tx, ty, tz) = transform_point(pose, lx, ly, lz);
            for p in 0..args.natpro {
                let px = args.protein.get(p * 4);
                let py = args.protein.get(p * 4 + 1);
                let pz = args.protein.get(p * 4 + 2);
                let ptype = args.protein.get(p * 4 + 3) as usize;
                let p_ff = (
                    args.forcefield.get(ptype * 3),
                    args.forcefield.get(ptype * 3 + 1),
                    args.forcefield.get(ptype * 3 + 2),
                );
                lane_energy += pair_energy(tx, ty, tz, l_ff, px, py, pz, p_ff);
            }
        }
        etot[lane] = lane_energy;
    }

    // Write energy results (Listing 4's trailing loop).
    let td_base = (t.block_idx.x as usize) * lsz * PPWI + t.thread_idx.x as usize;
    if td_base < args.num_transforms {
        for lane in 0..PPWI {
            let out = td_base + lane * lsz;
            if out < args.num_transforms {
                args.etotals.set(out, etot[lane] * HALF);
            }
        }
    }
}

fn execute(
    platform: &Platform,
    config: &MiniBudeConfig,
    lane: Lane,
) -> Result<Verification, SimError> {
    let deck = cache::minibude_deck(config);
    let flats = cache::minibude_flats(config);
    let nposes = config.executed_poses;
    let ctx = DeviceContext::from_device(cache::device(platform));

    let make_tensor = |data: &[f32]| -> Result<LayoutTensor<f32>, SimError> {
        LayoutTensor::new(
            ctx.enqueue_create_buffer_from(data)?,
            Layout::row_major_1d(data.len()),
        )
    };

    let args = FastenArgs {
        protein: make_tensor(&flats.protein)?,
        ligand: make_tensor(&flats.ligand)?,
        forcefield: make_tensor(&flats.forcefield)?,
        transforms: [
            make_tensor(&deck.transforms[0][..nposes])?,
            make_tensor(&deck.transforms[1][..nposes])?,
            make_tensor(&deck.transforms[2][..nposes])?,
            make_tensor(&deck.transforms[3][..nposes])?,
            make_tensor(&deck.transforms[4][..nposes])?,
            make_tensor(&deck.transforms[5][..nposes])?,
        ],
        etotals: LayoutTensor::new(
            ctx.enqueue_create_buffer::<f32>(nposes)?,
            Layout::row_major_1d(nposes),
        )?,
        natlig: config.natlig,
        natpro: config.natpro,
        num_transforms: nposes,
    };

    let launch = heuristics::bude_launch(nposes as u64, config.ppwi, config.wg);
    dispatch_ppwi(&ctx, launch, config.ppwi, &args)?;
    ctx.synchronize();

    let expected = cache::minibude_reference(config);
    let mut actual: PooledVec<f32> = PooledVec::new();
    args.etotals.to_host_into(&mut actual);
    // The kernel computes the same f32 expression sequence as the reference,
    // but the summation order over ligand atoms can differ in optimised
    // builds, so allow a small relative tolerance.
    let compared = match lane {
        Lane::Deterministic => compare_slices_f32(&actual, &expected, 2e-3),
        Lane::Simd => simd::compare_slices_f32_unrolled(&actual, &expected, 2e-3),
    };
    match compared {
        Ok(max_abs_error) => Ok(Verification::Passed { max_abs_error }),
        Err(msg) => Err(SimError::InvalidParameter(format!(
            "fasten verification failed: {msg}"
        ))),
    }
}

/// Dispatches the const-generic kernel over the paper's PPWI sweep values.
fn dispatch_ppwi(
    ctx: &DeviceContext,
    launch: LaunchConfig,
    ppwi: u32,
    args: &FastenArgs,
) -> Result<(), SimError> {
    macro_rules! launch_for {
        ($n:literal) => {{
            ctx.enqueue_function(launch, move |t| fasten_kernel::<$n>(t, args))
        }};
    }
    match ppwi {
        1 => launch_for!(1),
        2 => launch_for!(2),
        4 => launch_for!(4),
        8 => launch_for!(8),
        16 => launch_for!(16),
        32 => launch_for!(32),
        64 => launch_for!(64),
        128 => launch_for!(128),
        other => Err(SimError::InvalidParameter(format!(
            "PPWI {other} is not in the paper's sweep (1..128 powers of two)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_fasten_matches_the_reference() {
        let config = MiniBudeConfig::validation(4, 8);
        let run = run_portable(&Platform::portable_h100(), &config).unwrap();
        match run.verification {
            Verification::Passed { max_abs_error } => {
                assert!(max_abs_error < 1e-2, "max error {max_abs_error}")
            }
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn all_swept_ppwi_values_dispatch() {
        for ppwi in MiniBudeConfig::paper_ppwi_sweep() {
            let mut config = MiniBudeConfig::validation(ppwi, 8);
            config.executed_poses = 128;
            let config = config.normalised();
            let run = run_portable(&Platform::portable_mi300a(), &config).unwrap();
            assert!(run.verification.is_verified(), "ppwi {ppwi}");
        }
    }

    #[test]
    fn unsupported_ppwi_is_rejected() {
        let config = MiniBudeConfig::validation(3, 8);
        assert!(run_portable(&Platform::portable_h100(), &config).is_err());
    }
}
