//! Table 5 — the performance-portability metric Φ per proxy application.

use super::{fig3, fig4, fig6, fig7, table4};
use crate::report::ExperimentReport;
use gpu_spec::Precision;
use hpc_metrics::output::CsvTable;
use hpc_metrics::{efficiency, PortabilityTable};
use science_kernels::stencil7::StencilConfig;
use vendor_models::kernel_class::StreamOp;
use vendor_models::Platform;

/// Builds all four application blocks of Table 5.
pub fn portability_tables() -> Vec<PortabilityTable> {
    let (mojo_h100, cuda) = (Platform::portable_h100(), Platform::cuda_h100(false));
    let (mojo_mi, hip) = (Platform::portable_mi300a(), Platform::hip_mi300a(false));

    // 7-point stencil: FP32 and FP64 bandwidth ratios (L = 512).
    let mut stencil = PortabilityTable::new("7-point stencil");
    for precision in [Precision::Fp32, Precision::Fp64] {
        let config = StencilConfig::paper(512, precision);
        stencil.push(
            precision.label(),
            Some(fig3::efficiency(&mojo_h100, &cuda, &config)),
            Some(fig3::efficiency(&mojo_mi, &hip, &config)),
        );
    }

    // BabelStream: per-operation bandwidth ratios.
    let mut stream = PortabilityTable::new("BabelStream");
    for op in StreamOp::ALL {
        stream.push(
            op.label(),
            Some(fig4::efficiency(&mojo_h100, &cuda, op)),
            Some(fig4::efficiency(&mojo_mi, &hip, op)),
        );
    }

    // miniBUDE: the two configurations Table 5 lists, against the fast-math
    // vendor baselines (the best vendor result).
    let mut bude = PortabilityTable::new("miniBUDE");
    {
        let mut csv = CsvTable::new(["device", "backend", "wg", "ppwi", "gflops"]);
        let h100 = fig6::sweep(&fig6::h100_backends(), 8, &mut csv);
        let mi300a = fig6::sweep(&fig7::mi300a_backends(), 8, &mut csv);
        // PPWI = 8 is index 3 of the sweep.
        bude.push(
            "PPWI=8 wg=8",
            Some(h100[0].points[3].1 / h100[1].points[3].1),
            Some(mi300a[0].points[3].1 / mi300a[1].points[3].1),
        );
        let mut csv = CsvTable::new(["device", "backend", "wg", "ppwi", "gflops"]);
        let h100 = fig6::sweep(&fig6::h100_backends(), 64, &mut csv);
        let mi300a = fig6::sweep(&fig7::mi300a_backends(), 64, &mut csv);
        // PPWI = 4 is index 2 of the sweep.
        bude.push(
            "PPWI=4 wg=64",
            Some(h100[0].points[2].1 / h100[1].points[2].1),
            Some(mi300a[0].points[2].1 / mi300a[1].points[2].1),
        );
    }

    // Hartree-Fock: wall-clock ratios (lower is better, so invert).
    let mut hf = PortabilityTable::new("Hartree-Fock");
    for row in table4::rows() {
        let label = format!("a={} ngauss={}", row.natoms, row.ngauss);
        let nvidia = efficiency(row.mojo_h100_ms, row.cuda_ms, false);
        // The paper's Table 5 omits the AMD entry for the 1024-atom case.
        let amd = if row.natoms <= 256 {
            Some(efficiency(row.mojo_mi300a_ms, row.hip_ms, false))
        } else {
            None
        };
        hf.push(label, Some(nvidia), amd);
    }

    vec![stencil, stream, bude, hf]
}

/// Regenerates Table 5.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new("table5", "Mojo performance-portability metric (Eq. 4)");
    report.push_line("[profile constants: EXPERIMENTS.md \u{00a7} all sections (derived metric)]");
    let mut csv = CsvTable::new([
        "application",
        "configuration",
        "nvidia_efficiency",
        "amd_efficiency",
        "phi",
    ]);
    for table in portability_tables() {
        report.push_line(table.to_string());
        report.push_line("");
        let phi = table.phi().unwrap_or(f64::NAN);
        for entry in &table.entries {
            csv.push_row([
                table.application.clone(),
                entry.label.clone(),
                entry.nvidia.map(|v| v.to_string()).unwrap_or_default(),
                entry.amd.map(|v| v.to_string()).unwrap_or_default(),
                format!("{phi}"),
            ]);
        }
    }
    report.push_table("portability", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_phi_values_track_the_paper() {
        let tables = portability_tables();
        let phi_of = |name: &str| {
            tables
                .iter()
                .find(|t| t.application == name)
                .and_then(|t| t.phi())
                .unwrap()
        };
        // Paper: stencil Φ = 0.92, BabelStream Φ = 0.96 (we land near 0.98
        // because the paper's published entries are rounded), miniBUDE Φ = 0.54.
        assert!((phi_of("7-point stencil") - 0.92).abs() < 0.03);
        assert!((phi_of("BabelStream") - 0.96).abs() < 0.04);
        assert!((phi_of("miniBUDE") - 0.54).abs() < 0.12);
        // Hartree-Fock: dominated by the >2 NVIDIA entries and near-zero AMD
        // entries, just like the paper's Φ = 0.92 ("can be misleading").
        let hf = phi_of("Hartree-Fock");
        assert!(hf > 0.5 && hf < 2.0, "Hartree-Fock Φ = {hf}");
    }

    #[test]
    fn table5_report_contains_every_application_block() {
        let report = run();
        for app in ["7-point stencil", "BabelStream", "miniBUDE", "Hartree-Fock"] {
            assert!(report.text.contains(app), "missing {app}");
        }
        assert!(report.text.contains("Φ ="));
    }
}
