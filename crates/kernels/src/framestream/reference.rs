//! Host frame accumulator and closed-form expected value.
//!
//! Each frame folds into the running accumulator as an exponential moving
//! average, `acc ← acc·BETA + ALPHA·value(f)`, applied element-wise. The
//! per-element update chain is strictly sequential in the frame index and
//! touches each element independently, so the result is bitwise-identical no
//! matter how the frame range is partitioned — the property the proptests
//! pin.

use super::config::{frame_value, ACC_INIT, ALPHA, BETA};
use crate::simd::{self, Lane};
use rayon::prelude::*;
use std::ops::Range;

/// Folds frames `range` into `acc`, in frame order, element-wise on the
/// worker pool. Both lanes apply the identical per-element expression
/// (`acc·BETA + ALPHA·v`); the SIMD lane unrolls the element loop four-wide,
/// which cannot reassociate anything because each element's chain is
/// independent — hence the documented 0.0 lane tolerance.
pub fn accumulate_frames(acc: &mut [f64], range: Range<usize>, lane: Lane) {
    for f in range {
        let v = frame_value(f as u64);
        match lane {
            Lane::Deterministic => {
                acc.par_chunks_mut(rayon::REDUCE_CHUNK).for_each(|chunk| {
                    for x in chunk {
                        *x = *x * BETA + ALPHA * v;
                    }
                });
            }
            Lane::Simd => {
                acc.par_chunks_mut(rayon::REDUCE_CHUNK).for_each(|chunk| {
                    simd::frame_accumulate(chunk, v, ALPHA, BETA);
                });
            }
        }
    }
}

/// The closed-form expected accumulator after `frames` frames: every element
/// starts at [`ACC_INIT`] and sees the same frame values, so one serial
/// scalar fold reproduces the exact f64 every element must hold.
pub fn expected_final(frames: usize) -> f64 {
    let mut acc = ACC_INIT;
    for f in 0..frames {
        acc = acc * BETA + ALPHA * frame_value(f as u64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::PooledVec;

    fn fresh(n: usize) -> PooledVec<f64> {
        let mut acc: PooledVec<f64> = PooledVec::new();
        acc.resize(n, ACC_INIT);
        acc
    }

    #[test]
    fn host_fold_matches_the_closed_form_bitwise() {
        for lane in [Lane::Deterministic, Lane::Simd] {
            let mut acc = fresh(4096);
            accumulate_frames(acc.as_mut_slice(), 0..48, lane);
            let expected = expected_final(48);
            for &x in acc.iter() {
                assert_eq!(x.to_bits(), expected.to_bits(), "{lane:?}");
            }
        }
    }

    #[test]
    fn lanes_agree_bitwise() {
        let mut det = fresh(1 << 14);
        let mut simd = fresh(1 << 14);
        accumulate_frames(det.as_mut_slice(), 0..33, Lane::Deterministic);
        accumulate_frames(simd.as_mut_slice(), 0..33, Lane::Simd);
        assert_eq!(det.as_slice(), simd.as_slice());
    }

    #[test]
    fn partitioned_accumulation_is_bitwise_identical_to_one_batch() {
        let mut whole = fresh(1000);
        accumulate_frames(whole.as_mut_slice(), 0..40, Lane::Deterministic);
        let mut split = fresh(1000);
        accumulate_frames(split.as_mut_slice(), 0..7, Lane::Deterministic);
        accumulate_frames(split.as_mut_slice(), 7..29, Lane::Deterministic);
        accumulate_frames(split.as_mut_slice(), 29..40, Lane::Deterministic);
        assert_eq!(whole.as_slice(), split.as_slice());
    }

    #[test]
    fn the_accumulator_stays_bounded() {
        // ALPHA + BETA = 1 with frame values in [0.1, 0.85] keeps the EMA in
        // that hull (plus the initial value) forever.
        let expected = expected_final(65_536);
        assert!((0.1..=0.85).contains(&expected), "{expected}");
    }
}
