//! The output type every experiment produces.

use hpc_metrics::output::{self, CsvTable};
use serde::value::Value;
use std::path::PathBuf;

/// Looks up a field of a JSON object value.
pub(crate) fn json_field<'a>(value: &'a Value, key: &str) -> Result<&'a Value, String> {
    match value {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field '{key}'")),
        _ => Err(format!("expected an object carrying field '{key}'")),
    }
}

/// Looks up an optional field of a JSON object value: `None` when the key
/// is absent (or the value is not an object), so schema extensions stay
/// backward compatible with documents written before the field existed.
pub(crate) fn json_opt_field<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    match value {
        Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Extracts a JSON string value.
pub(crate) fn json_str(value: &Value) -> Result<&str, String> {
    match value {
        Value::Str(s) => Ok(s),
        other => Err(format!("expected a string, got {other:?}")),
    }
}

/// Extracts a non-negative JSON integer value.
pub(crate) fn json_u64(value: &Value) -> Result<u64, String> {
    match value {
        Value::U64(n) => Ok(*n),
        other => Err(format!("expected a non-negative integer, got {other:?}")),
    }
}

/// Extracts a JSON array value.
pub(crate) fn json_array(value: &Value) -> Result<&[Value], String> {
    match value {
        Value::Array(items) => Ok(items),
        other => Err(format!("expected an array, got {other:?}")),
    }
}

/// The result of regenerating one table or figure.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Stable identifier ("table2", "fig4", …).
    pub id: String,
    /// Human-readable title mirroring the paper's caption.
    pub title: String,
    /// Console rendering (the rows/series the paper reports).
    pub text: String,
    /// Named CSV tables with the underlying data.
    pub tables: Vec<(String, CsvTable)>,
}

impl ExperimentReport {
    /// Creates a report with no CSV payload yet.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            text: String::new(),
            tables: Vec::new(),
        }
    }

    /// Appends a line to the console rendering.
    pub fn push_line(&mut self, line: impl AsRef<str>) {
        self.text.push_str(line.as_ref());
        self.text.push('\n');
    }

    /// Attaches a CSV table.
    pub fn push_table(&mut self, name: impl Into<String>, table: CsvTable) {
        self.tables.push((name.into(), table));
    }

    /// Writes every attached CSV under `target/experiments/<id>_<name>.csv`
    /// and returns the written paths.
    pub fn write_csv_files(&self) -> std::io::Result<Vec<PathBuf>> {
        self.write_csv_files_to(&output::experiments_dir())
    }

    /// Writes every attached CSV as `<dir>/<id>_<name>.csv` (creating `dir`
    /// as needed) and returns the written paths.
    pub fn write_csv_files_to(&self, dir: &std::path::Path) -> std::io::Result<Vec<PathBuf>> {
        let mut paths = Vec::new();
        for (name, table) in &self.tables {
            let path = dir.join(format!("{}_{}.csv", self.id, name));
            table.write_to(&path)?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// The full console rendering including the title banner.
    pub fn render(&self) -> String {
        format!("=== {} — {} ===\n{}", self.id, self.title, self.text)
    }

    /// The report as a JSON value tree. The schema is stable:
    ///
    /// ```json
    /// {
    ///   "id": "fig4",
    ///   "title": "…",
    ///   "text": "…console rendering…",
    ///   "tables": [
    ///     { "name": "bandwidth", "header": ["device", …],
    ///       "rows": [["NVIDIA H100 NVL - 94 GB", …], …] }
    ///   ]
    /// }
    /// ```
    ///
    /// Table cells stay strings — exactly the bytes the CSV rendering carries
    /// — so the JSON output is byte-identical wherever the CSV output is.
    pub fn to_json_value(&self) -> Value {
        let tables = self
            .tables
            .iter()
            .map(|(name, table)| {
                let header = table.header.iter().cloned().map(Value::Str).collect();
                let rows = table
                    .rows
                    .iter()
                    .map(|row| Value::Array(row.iter().cloned().map(Value::Str).collect()))
                    .collect();
                Value::Object(vec![
                    ("name".to_string(), Value::Str(name.clone())),
                    ("header".to_string(), Value::Array(header)),
                    ("rows".to_string(), Value::Array(rows)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("id".to_string(), Value::Str(self.id.clone())),
            ("title".to_string(), Value::Str(self.title.clone())),
            ("text".to_string(), Value::Str(self.text.clone())),
            ("tables".to_string(), Value::Array(tables)),
        ])
    }

    /// Parses a report back from its [`ExperimentReport::to_json_value`]
    /// schema.
    ///
    /// The schema carries only strings, so the round trip is lossless:
    /// re-serialising the parsed report reproduces the original JSON byte
    /// for byte. The shard merge lane (`crate::shard`) relies on this to
    /// reassemble worker output into single-process-identical reports.
    pub fn from_json_value(value: &Value) -> Result<ExperimentReport, String> {
        let cell_strings = |value: &Value| -> Result<Vec<String>, String> {
            json_array(value)?
                .iter()
                .map(|cell| Ok(json_str(cell)?.to_string()))
                .collect()
        };
        let tables = json_array(json_field(value, "tables")?)?
            .iter()
            .map(|table| {
                let name = json_str(json_field(table, "name")?)?.to_string();
                let header = cell_strings(json_field(table, "header")?)?;
                let rows = json_array(json_field(table, "rows")?)?
                    .iter()
                    .map(cell_strings)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((name, CsvTable { header, rows }))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ExperimentReport {
            id: json_str(json_field(value, "id")?)?.to_string(),
            title: json_str(json_field(value, "title")?)?.to_string(),
            text: json_str(json_field(value, "text")?)?.to_string(),
            tables,
        })
    }

    /// The report as pretty-printed JSON text (with a trailing newline, so
    /// the emitted files and stdout stream are valid line-terminated text).
    pub fn to_json_pretty(&self) -> String {
        let mut json =
            serde_json::to_string_pretty(&self.to_json_value()).expect("report serialises");
        json.push('\n');
        json
    }

    /// Writes the whole report as `<dir>/<id>.json` (creating `dir` as
    /// needed) and returns the written path.
    pub fn write_json_file_to(&self, dir: &std::path::Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json_pretty())?;
        Ok(path)
    }

    /// Renders a set of reports as one pretty-printed JSON array (the
    /// `run --all --format json` stdout payload).
    pub fn render_json_array(reports: &[ExperimentReport]) -> String {
        let array = Value::Array(reports.iter().map(|r| r.to_json_value()).collect());
        let mut json = serde_json::to_string_pretty(&array).expect("reports serialise");
        json.push('\n');
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_lines_and_tables() {
        let mut r = ExperimentReport::new("table9", "An example");
        r.push_line("row 1");
        r.push_line("row 2");
        let mut csv = CsvTable::new(["a"]);
        csv.push_row(["1"]);
        r.push_table("data", csv);
        assert_eq!(r.tables.len(), 1);
        let rendered = r.render();
        assert!(rendered.contains("table9"));
        assert!(rendered.contains("row 1\nrow 2\n"));
    }

    #[test]
    fn json_rendering_carries_the_same_cells_as_the_csv() {
        let mut r = ExperimentReport::new("table9", "An example");
        r.push_line("row 1");
        let mut csv = CsvTable::new(["a", "b"]);
        csv.push_row(["1", "x,y"]);
        r.push_table("data", csv);
        let json = r.to_json_pretty();
        assert!(json.ends_with('\n'));
        assert!(json.contains("\"id\": \"table9\""));
        assert!(json.contains("\"name\": \"data\""));
        // Cells are carried verbatim (no CSV quoting in the JSON lane).
        assert!(json.contains("\"x,y\""));
        let array = ExperimentReport::render_json_array(&[r.clone(), r]);
        assert!(array.starts_with('['));
        assert_eq!(array.matches("\"id\": \"table9\"").count(), 2);
    }

    #[test]
    fn json_value_round_trip_is_byte_lossless() {
        let mut r = ExperimentReport::new("fig9", "Example — with \"quotes\", commas\nand lines");
        r.push_line("line 1");
        r.push_line("line 2, with commas");
        let mut csv = CsvTable::new(["a", "b"]);
        csv.push_row(["1", "x,y"]);
        csv.push_row(["2", "say \"hi\""]);
        r.push_table("data", csv);
        let parsed = ExperimentReport::from_json_value(&r.to_json_value()).unwrap();
        assert_eq!(parsed.id, r.id);
        assert_eq!(parsed.title, r.title);
        assert_eq!(parsed.text, r.text);
        assert_eq!(parsed.tables, r.tables);
        assert_eq!(parsed.to_json_pretty(), r.to_json_pretty());
        // And through the JSON text itself, the path shard merging takes.
        let reparsed: Value = serde_json::from_str(&r.to_json_pretty()).unwrap();
        let back = ExperimentReport::from_json_value(&reparsed).unwrap();
        assert_eq!(back.to_json_pretty(), r.to_json_pretty());
        // Malformed trees are rejected with a named field.
        let err = ExperimentReport::from_json_value(&Value::Object(vec![])).unwrap_err();
        assert!(err.contains("tables"), "{err}");
    }

    #[test]
    fn json_files_are_written_under_the_report_id() {
        let dir = std::env::temp_dir().join(format!("mojo-hpc-json-test-{}", std::process::id()));
        let mut r = ExperimentReport::new("unit-test-json", "tmp");
        let mut csv = CsvTable::new(["x"]);
        csv.push_row(["1"]);
        r.push_table("points", csv);
        let path = r.write_json_file_to(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "unit-test-json.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, r.to_json_pretty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_files_are_written() {
        let mut r = ExperimentReport::new("unit-test-report", "tmp");
        let mut csv = CsvTable::new(["x", "y"]);
        csv.push_row(["1", "2"]);
        r.push_table("points", csv);
        let paths = r.write_csv_files().unwrap();
        assert_eq!(paths.len(), 1);
        assert!(paths[0].exists());
        std::fs::remove_file(&paths[0]).ok();
    }
}
