//! Vendor-baseline (CUDA/HIP style) streaming-dataset engine.
//!
//! The same launch sequence as the portable engine — accumulator resident,
//! one reused frame buffer refilled per frame — written against the raw
//! device-buffer API with `launch_flat`.

use super::config::{frame_value, FrameStreamConfig, ACC_INIT, ALPHA, BETA};
use super::cost::framestream_cost;
use super::reference::expected_final;
use crate::cache;
use crate::common::{Verification, WorkloadRun};
use gpu_sim::{istr, istr_fmt, launch_flat, SimError};
use vendor_models::{heuristics, KernelClass, Platform};

/// Runs the vendor-baseline frame stream on `platform` (CUDA on NVIDIA, HIP
/// on AMD).
pub fn run_vendor(
    platform: &Platform,
    config: &FrameStreamConfig,
) -> Result<WorkloadRun, SimError> {
    let cost = framestream_cost(config);
    let class = KernelClass::Stream {
        op: vendor_models::kernel_class::StreamOp::Triad,
        precision: gpu_spec::Precision::Fp64,
    };
    let profile = platform.execution_profile(&class);
    let timing = cache::timing_model(platform).estimate(&cost, &profile);

    let verification = if config.should_execute() {
        execute(platform, config)?
    } else {
        Verification::Skipped {
            reason: istr_fmt(format_args!(
                "{} streamed elements exceed the functional-execution budget; cost model only",
                config.streamed_elements()
            )),
        }
    };

    Ok(WorkloadRun {
        backend: profile.backend.clone(),
        device: istr(&platform.spec.name),
        kernel: istr("framestream"),
        cost,
        profile,
        timing,
        verification,
    })
}

fn execute(platform: &Platform, config: &FrameStreamConfig) -> Result<Verification, SimError> {
    let n = config.n;
    let device = cache::device(platform);
    let d_acc = device.alloc::<f64>(n)?;
    let d_frame = device.alloc::<f64>(n)?;

    let launch = heuristics::stream_launch(n as u64);
    launch.validate(&platform.spec)?;

    let fill = d_acc.clone();
    launch_flat(&launch, move |t| {
        let i = t.global_x() as usize;
        if i < n {
            fill.write(i, ACC_INIT);
        }
    });

    for f in 0..config.frames {
        let v = frame_value(f as u64);
        let frame_fill = d_frame.clone();
        launch_flat(&launch, move |t| {
            let i = t.global_x() as usize;
            if i < n {
                frame_fill.write(i, v);
            }
        });
        let (acc, frame) = (d_acc.clone(), d_frame.clone());
        launch_flat(&launch, move |t| {
            let i = t.global_x() as usize;
            if i < n {
                acc.write(i, acc.read(i) * BETA + ALPHA * frame.read(i));
            }
        });
    }

    let expected = expected_final(config.frames);
    for i in 0..n {
        let v = d_acc.read(i);
        if v.to_bits() != expected.to_bits() {
            return Err(SimError::InvalidParameter(format!(
                "vendor framestream verification failed at element {i}: {v:.17e} vs \
                 closed form {expected:.17e}"
            )));
        }
    }

    Ok(Verification::Passed { max_abs_error: 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuda_framestream_matches_the_closed_form() {
        let config = FrameStreamConfig::validation(2048, 32);
        let run = run_vendor(&Platform::cuda_h100(false), &config).unwrap();
        assert!(run.verification.is_verified());
        assert_eq!(run.backend, "CUDA");
    }

    #[test]
    fn hip_framestream_matches_the_closed_form() {
        let config = FrameStreamConfig::validation(3000, 19);
        let run = run_vendor(&Platform::hip_mi300a(false), &config).unwrap();
        assert!(run.verification.is_verified());
        assert_eq!(run.backend, "HIP");
    }
}
