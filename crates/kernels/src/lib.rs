//! The science proxy kernels evaluated in the paper, plus the composite
//! patterns of DESIGN.md §15 that combine them.
//!
//! | Module | Workload | Character | Figure of merit |
//! |---|---|---|---|
//! | [`stencil7`] | seven-point Laplacian stencil | memory-bandwidth bound | effective bandwidth (Eq. 1) |
//! | [`babelstream`] | BabelStream Copy/Mul/Add/Triad/Dot | memory-bandwidth bound | bandwidth (Eq. 2) |
//! | [`minibude`] | miniBUDE `fasten` docking kernel | compute bound | GFLOP/s (Eq. 3) |
//! | [`hartree_fock`] | Hartree–Fock electron repulsion | compute bound + atomics | kernel wall-clock |
//! | [`jacobi`] | iterative Jacobi solver (stencil + convergence norm) | memory bound, multi-pass | effective bandwidth (§15) |
//! | [`framestream`] | streaming-dataset EMA engine | memory bound, batch-streaming | effective bandwidth (§15) |
//!
//! Each workload module provides:
//!
//! * a **portable** implementation written against the `portable-kernel` API
//!   (the paper's Mojo port — one source for every simulated device),
//! * **CUDA-style** and **HIP-style** baselines that bypass the portable layer
//!   and use vendor launch heuristics, mirroring the paper's baseline codes,
//! * a **CPU reference** used to validate every simulated result,
//! * an analytic **cost model** (bytes, FLOPs, atomics) that the unit tests
//!   cross-check against instrumented counts on small problems,
//! * a host driver returning a [`common::WorkloadRun`] that the report and
//!   bench crates turn into the paper's tables and figures,
//! * a [`workload`] adapter exposing the drivers as a named, parameterizable
//!   [`workload::Workload`] — the layer the experiment registry, the
//!   `mojo-hpc sweep` engine and the bench presets share.

#![warn(missing_docs)]
#![cfg_attr(feature = "nightly-simd", feature(portable_simd))]

pub mod babelstream;
pub mod cache;
pub mod common;
pub mod framestream;
pub mod hartree_fock;
pub mod jacobi;
pub mod minibude;
pub mod prelude;
pub mod real;
pub mod simd;
pub mod stencil7;
pub mod workload;

pub use common::{Verification, WorkloadRun};
pub use real::Real;
pub use simd::{Lane, LanePolicy};
pub use workload::{Measurement, ParamSpec, Params, Workload, WorkloadError, WorkloadOutput};
