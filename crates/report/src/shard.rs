//! Sharded multi-process scale-out: partition, manifest, merge.
//!
//! This module implements the shard/merge protocol documented end-to-end in
//! DESIGN.md §10. The pieces:
//!
//! * [`ShardSpec`] — a `--shard I/N` flag value and the deterministic
//!   partition function mapping it to a contiguous range of work items
//!   (experiments for `run`, sweep points for `sweep`);
//! * [`ShardManifest`] — the metadata a worker emits next to its partial
//!   report: shard index and total, the global item range covered, the item
//!   labels, and (for sweeps) the workload name and pinned parameter
//!   encoding;
//! * [`ShardDocument`] — the single JSON object a shard worker prints to
//!   stdout: `{"manifest": …, "reports": […]}`;
//! * [`merge_run`] / [`merge_sweep`] — reassemble worker documents into
//!   output **byte-identical** to a single-process `run` / `sweep`, after
//!   validating that the manifests form a complete, non-overlapping tiling
//!   of the work;
//! * [`run_workers`] — the coordinator's process fan-out: one worker
//!   subprocess of the current binary per shard, supervised by the
//!   [`crate::dispatch`] engine (which also provides retries, timeouts,
//!   remote launchers and speculation when the CLI asks for them), with any
//!   failure named per shard alongside the worker's captured stderr tail.
//!
//! Byte-identity holds because the report JSON schema carries only strings
//! (every table cell is exactly the bytes the CSV lane prints), the JSON
//! shim preserves object-key and array order, and the partition is
//! contiguous and order-preserving — so concatenating the partial reports in
//! shard order reproduces the single-process traversal exactly.

use crate::dispatch::{dispatch, DispatchPolicy, Launcher, LocalLauncher, WorkerTask};
use crate::report::{json_array, json_field, json_opt_field, json_str, json_u64, ExperimentReport};
use crate::sweep::{self, SweepSpec};
use serde::value::Value;
use std::fmt;
use std::ops::Range;

/// Version tag of the shard document schema, bumped on breaking changes.
pub const SHARD_SCHEMA: u64 = 1;

/// A parsed `--shard I/N` flag: this process is worker `index` of `total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index, `< total`.
    pub index: u64,
    /// Total shard count, `>= 1`.
    pub total: u64,
}

impl ShardSpec {
    /// Parses an `I/N` spec, rejecting malformed, zero-total and
    /// out-of-range (`I >= N`) values.
    pub fn parse(value: &str) -> Result<ShardSpec, String> {
        let Some((index, total)) = value.split_once('/') else {
            return Err(format!("--shard: expected I/N (e.g. 0/3), got '{value}'"));
        };
        let parse = |part: &str| {
            part.parse::<u64>()
                .map_err(|_| format!("--shard: invalid number '{part}' in '{value}'"))
        };
        let (index, total) = (parse(index)?, parse(total)?);
        if total == 0 {
            return Err("--shard: total shard count must be at least 1".to_string());
        }
        if index >= total {
            return Err(format!(
                "--shard: index {index} is out of range for {total} shard(s) (valid: 0..{})",
                total - 1
            ));
        }
        Ok(ShardSpec { index, total })
    }

    /// The contiguous range of a `len`-item work list this shard covers.
    ///
    /// This is the protocol's partition function: shard `i` of `n` covers
    /// `[i·len/n, (i+1)·len/n)` (integer division). The ranges are
    /// order-preserving, tile the list exactly, and differ in length by at
    /// most one; when `n > len`, `n - len` of the shards are empty.
    pub fn range(&self, len: usize) -> Range<usize> {
        let len = len as u64;
        let start = (self.index * len / self.total) as usize;
        let end = ((self.index + 1) * len / self.total) as usize;
        start..end
    }
}

impl fmt::Display for ShardSpec {
    /// Renders the spec back to its `I/N` flag form — `parse ∘ to_string`
    /// is the identity on valid specs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.total)
    }
}

/// Per-worker memory-pool counters embedded in the shard manifest, so the
/// coordinator can report fleet-wide pool telemetry on stderr (the line
/// `run`/`sweep` print directly) without touching the merged stdout/golden
/// output.
///
/// The field is optional in the JSON schema: documents written before it
/// existed still parse, and manifests without telemetry serialise without
/// the key — [`SHARD_SCHEMA`] stays at 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardPoolCounters {
    /// Buffer checkouts the worker performed.
    pub checkouts: u64,
    /// Checkouts served by recycling a pooled buffer.
    pub hits: u64,
    /// Checkouts that had to allocate fresh.
    pub misses: u64,
    /// Bytes served from recycled buffers.
    pub recycled_bytes: u64,
    /// Bytes freshly allocated.
    pub fresh_bytes: u64,
    /// The worker's pool high-water mark in bytes.
    pub high_water_bytes: u64,
}

impl ShardPoolCounters {
    /// The pool activity since `before`, stamped with the process-wide
    /// high-water mark — the shared constructor behind the worker-manifest
    /// telemetry and the serve `stats` verb (DESIGN.md §13).
    pub fn since(before: &gpu_sim::PoolStats) -> ShardPoolCounters {
        let delta = gpu_sim::pool::stats().since(before);
        ShardPoolCounters {
            checkouts: delta.checkouts,
            hits: delta.hits,
            misses: delta.misses,
            recycled_bytes: delta.recycled_bytes,
            fresh_bytes: delta.fresh_bytes,
            high_water_bytes: gpu_sim::pool::stats().high_water_bytes,
        }
    }

    /// The counters as a JSON value tree.
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("checkouts".to_string(), Value::U64(self.checkouts)),
            ("hits".to_string(), Value::U64(self.hits)),
            ("misses".to_string(), Value::U64(self.misses)),
            (
                "recycled_bytes".to_string(),
                Value::U64(self.recycled_bytes),
            ),
            ("fresh_bytes".to_string(), Value::U64(self.fresh_bytes)),
            (
                "high_water_bytes".to_string(),
                Value::U64(self.high_water_bytes),
            ),
        ])
    }

    /// Parses the counters back from their JSON value tree.
    pub fn from_json_value(value: &Value) -> Result<ShardPoolCounters, String> {
        let field = |key: &str| json_u64(json_field(value, key)?);
        Ok(ShardPoolCounters {
            checkouts: field("checkouts")?,
            hits: field("hits")?,
            misses: field("misses")?,
            recycled_bytes: field("recycled_bytes")?,
            fresh_bytes: field("fresh_bytes")?,
            high_water_bytes: field("high_water_bytes")?,
        })
    }

    /// Accumulates another worker's counters into this one: monotonic
    /// counters add, the high-water mark takes the fleet maximum.
    pub fn accumulate(&mut self, other: &ShardPoolCounters) {
        self.checkouts += other.checkouts;
        self.hits += other.hits;
        self.misses += other.misses;
        self.recycled_bytes += other.recycled_bytes;
        self.fresh_bytes += other.fresh_bytes;
        self.high_water_bytes = self.high_water_bytes.max(other.high_water_bytes);
    }

    /// The fraction of checkouts served by recycling, in percent.
    pub fn hit_rate(&self) -> f64 {
        if self.checkouts == 0 {
            0.0
        } else {
            self.hits as f64 / self.checkouts as f64 * 100.0
        }
    }
}

/// The metadata a shard worker emits next to its partial reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// The sharded subcommand: `"run"` or `"sweep"`.
    pub command: String,
    /// This worker's zero-based shard index.
    pub shard: u64,
    /// Total shard count of the partition.
    pub shards: u64,
    /// Global index of the first work item this shard covers.
    pub start: u64,
    /// Number of work items this shard covers (0 for an empty shard).
    pub count: u64,
    /// Total work items across all shards.
    pub total: u64,
    /// Labels of the covered items, in global order: experiment ids for
    /// `run`, size-parameter values for `sweep`.
    pub items: Vec<String>,
    /// The swept workload name (`sweep` only).
    pub workload: Option<String>,
    /// The pinned base parameter encoding every point starts from
    /// (`sweep` only).
    pub params: Option<String>,
    /// The worker's memory-pool counters, when the worker recorded them
    /// (absent in documents from older binaries).
    pub pool: Option<ShardPoolCounters>,
}

impl ShardManifest {
    /// The manifest as a JSON value tree (schema in DESIGN.md §10).
    pub fn to_json_value(&self) -> Value {
        let opt = |value: &Option<String>| match value {
            Some(s) => Value::Str(s.clone()),
            None => Value::Null,
        };
        let mut entries = vec![
            ("schema".to_string(), Value::U64(SHARD_SCHEMA)),
            ("command".to_string(), Value::Str(self.command.clone())),
            ("shard".to_string(), Value::U64(self.shard)),
            ("shards".to_string(), Value::U64(self.shards)),
            ("start".to_string(), Value::U64(self.start)),
            ("count".to_string(), Value::U64(self.count)),
            ("total".to_string(), Value::U64(self.total)),
            (
                "items".to_string(),
                Value::Array(self.items.iter().cloned().map(Value::Str).collect()),
            ),
            ("workload".to_string(), opt(&self.workload)),
            ("params".to_string(), opt(&self.params)),
        ];
        if let Some(pool) = &self.pool {
            entries.push(("pool".to_string(), pool.to_json_value()));
        }
        Value::Object(entries)
    }

    /// Parses a manifest back from its JSON value tree.
    pub fn from_json_value(value: &Value) -> Result<ShardManifest, String> {
        let schema = json_u64(json_field(value, "schema")?)?;
        if schema != SHARD_SCHEMA {
            return Err(format!(
                "unsupported shard schema {schema} (this binary speaks {SHARD_SCHEMA})"
            ));
        }
        let opt = |key: &str| -> Result<Option<String>, String> {
            match json_field(value, key)? {
                Value::Null => Ok(None),
                other => Ok(Some(json_str(other)?.to_string())),
            }
        };
        Ok(ShardManifest {
            command: json_str(json_field(value, "command")?)?.to_string(),
            shard: json_u64(json_field(value, "shard")?)?,
            shards: json_u64(json_field(value, "shards")?)?,
            start: json_u64(json_field(value, "start")?)?,
            count: json_u64(json_field(value, "count")?)?,
            total: json_u64(json_field(value, "total")?)?,
            items: json_array(json_field(value, "items")?)?
                .iter()
                .map(|item| Ok(json_str(item)?.to_string()))
                .collect::<Result<_, String>>()?,
            workload: opt("workload")?,
            params: opt("params")?,
            pool: match json_opt_field(value, "pool") {
                None | Some(Value::Null) => None,
                Some(other) => Some(ShardPoolCounters::from_json_value(other)?),
            },
        })
    }
}

/// Everything a shard worker prints to stdout: its manifest plus the partial
/// reports of the work items it covered (one report per experiment for
/// `run`; zero or one sweep report for `sweep`).
#[derive(Debug, Clone)]
pub struct ShardDocument {
    /// The shard's metadata.
    pub manifest: ShardManifest,
    /// The partial reports, in global item order.
    pub reports: Vec<ExperimentReport>,
}

impl ShardDocument {
    /// The document as pretty-printed JSON text (trailing newline included).
    pub fn to_json_pretty(&self) -> String {
        let value = Value::Object(vec![
            ("manifest".to_string(), self.manifest.to_json_value()),
            (
                "reports".to_string(),
                Value::Array(self.reports.iter().map(|r| r.to_json_value()).collect()),
            ),
        ]);
        let mut json = serde_json::to_string_pretty(&value).expect("shard document serialises");
        json.push('\n');
        json
    }

    /// Parses a worker's stdout back into a document.
    pub fn parse(text: &str) -> Result<ShardDocument, String> {
        let value: Value = serde_json::from_str(text)
            .map_err(|e| format!("shard document is not valid JSON: {e}"))?;
        let manifest = ShardManifest::from_json_value(json_field(&value, "manifest")?)?;
        let reports = json_array(json_field(&value, "reports")?)?
            .iter()
            .map(ExperimentReport::from_json_value)
            .collect::<Result<_, _>>()?;
        Ok(ShardDocument { manifest, reports })
    }
}

/// Validates that a set of shard documents forms a complete, consistent,
/// non-overlapping tiling for `command`, and returns them sorted by shard
/// index.
fn validate_set<'a>(
    docs: &'a [ShardDocument],
    command: &str,
) -> Result<Vec<&'a ShardDocument>, String> {
    let Some(first) = docs.first() else {
        return Err("no shard documents to merge".to_string());
    };
    let (shards, total) = (first.manifest.shards, first.manifest.total);
    if docs.len() as u64 != shards {
        return Err(format!(
            "expected {shards} shard document(s), got {}",
            docs.len()
        ));
    }
    let mut sorted: Vec<&ShardDocument> = docs.iter().collect();
    sorted.sort_by_key(|doc| doc.manifest.shard);
    let mut next_start = 0u64;
    for (i, doc) in sorted.iter().enumerate() {
        let m = &doc.manifest;
        if m.command != command {
            return Err(format!(
                "shard {}/{}: command '{}' does not match the coordinator's '{command}'",
                m.shard, m.shards, m.command
            ));
        }
        if m.shards != shards || m.total != total {
            return Err(format!(
                "shard {}/{}: inconsistent partition ({} shard(s) over {} item(s), \
                 coordinator expects {shards} over {total})",
                m.shard, m.shards, m.shards, m.total
            ));
        }
        if m.shard != i as u64 {
            return Err(format!(
                "shard index {} is missing or duplicated in the document set",
                i
            ));
        }
        if m.start != next_start {
            return Err(format!(
                "shard {}/{shards}: range starts at item {} but the previous shard ended at {}",
                m.shard, m.start, next_start
            ));
        }
        if m.items.len() as u64 != m.count {
            return Err(format!(
                "shard {}/{shards}: manifest names {} item(s) but claims count {}",
                m.shard,
                m.items.len(),
                m.count
            ));
        }
        next_start += m.count;
    }
    if next_start != total {
        return Err(format!(
            "shard ranges cover {next_start} of {total} item(s)"
        ));
    }
    Ok(sorted)
}

/// Merges `run` shard documents into the full report list, in presentation
/// order — exactly the list a single-process `run` over the same ids
/// produces.
///
/// `expected_items` is the coordinator's own id list; the merged manifests
/// must cover it label-for-label.
pub fn merge_run(
    docs: &[ShardDocument],
    expected_items: &[String],
) -> Result<Vec<ExperimentReport>, String> {
    let sorted = validate_set(docs, "run")?;
    if sorted[0].manifest.total != expected_items.len() as u64 {
        return Err(format!(
            "shards partition {} item(s) but the coordinator requested {}",
            sorted[0].manifest.total,
            expected_items.len()
        ));
    }
    let mut reports = Vec::with_capacity(expected_items.len());
    let mut cursor = 0usize;
    for doc in sorted {
        let m = &doc.manifest;
        if doc.reports.len() as u64 != m.count {
            return Err(format!(
                "shard {}/{}: {} report(s) for {} item(s)",
                m.shard,
                m.shards,
                doc.reports.len(),
                m.count
            ));
        }
        for (item, report) in m.items.iter().zip(&doc.reports) {
            if item != &expected_items[cursor] {
                return Err(format!(
                    "shard {}/{}: item {} is '{item}', coordinator expected '{}'",
                    m.shard, m.shards, cursor, expected_items[cursor]
                ));
            }
            if &report.id != item {
                return Err(format!(
                    "shard {}/{}: report id '{}' does not match its manifest item '{item}'",
                    m.shard, m.shards, report.id
                ));
            }
            cursor += 1;
            reports.push(report.clone());
        }
    }
    Ok(reports)
}

/// Merges `sweep` shard documents into the one report a single-process
/// sweep over `spec` produces, byte for byte.
///
/// The envelope (id, title, table header) is rebuilt from `spec`; the
/// per-point console text and table rows are spliced from the partial
/// reports in shard order. Empty shards contribute nothing.
pub fn merge_sweep(spec: &SweepSpec, docs: &[ShardDocument]) -> Result<ExperimentReport, String> {
    let sorted = validate_set(docs, "sweep")?;
    let expected_items: Vec<String> = spec.sizes.iter().map(|s| s.to_string()).collect();
    let (workload, params) = (spec.workload.name(), spec.base.encode());
    let mut report = sweep::report_envelope(spec);
    let mut table = hpc_metrics::output::CsvTable {
        header: sweep::table_header(spec.workload),
        rows: Vec::new(),
    };
    let mut cursor = 0usize;
    for doc in sorted {
        let m = &doc.manifest;
        if m.total != expected_items.len() as u64 {
            return Err(format!(
                "shards partition {} point(s) but the coordinator swept {}",
                m.total,
                expected_items.len()
            ));
        }
        if m.workload.as_deref() != Some(workload) || m.params.as_deref() != Some(&params) {
            return Err(format!(
                "shard {}/{}: workload/params ({:?}, {:?}) do not match the \
                 coordinator's ({workload}, {params})",
                m.shard, m.shards, m.workload, m.params
            ));
        }
        for item in &m.items {
            if item != &expected_items[cursor] {
                return Err(format!(
                    "shard {}/{}: point {} is '{item}', coordinator expected '{}'",
                    m.shard, m.shards, cursor, expected_items[cursor]
                ));
            }
            cursor += 1;
        }
        match (m.count, doc.reports.as_slice()) {
            (0, []) => {}
            (n, [partial]) if n > 0 => {
                let Some((name, rows)) = partial.tables.first() else {
                    return Err(format!(
                        "shard {}/{}: partial sweep report has no table",
                        m.shard, m.shards
                    ));
                };
                if name != "sweep" || rows.header != table.header {
                    return Err(format!(
                        "shard {}/{}: partial table does not match the sweep schema",
                        m.shard, m.shards
                    ));
                }
                report.text.push_str(&partial.text);
                table.rows.extend(rows.rows.iter().cloned());
            }
            _ => {
                return Err(format!(
                    "shard {}/{}: expected one partial sweep report for {} point(s), got {}",
                    m.shard,
                    m.shards,
                    m.count,
                    doc.reports.len()
                ));
            }
        }
    }
    report.push_table("sweep", table);
    Ok(report)
}

/// Builds the [`WorkerTask`] list for a fan-out: worker `i` of the argument
/// lists computes shard `i` of `N`.
pub fn worker_tasks(args_per_worker: &[Vec<String>]) -> Vec<WorkerTask> {
    let total = args_per_worker.len() as u64;
    args_per_worker
        .iter()
        .enumerate()
        .map(|(index, args)| WorkerTask {
            shard: index as u64,
            shards: total,
            args: args.clone(),
        })
        .collect()
}

/// Spawns one worker subprocess of the current binary per argument list,
/// runs them concurrently under the [`crate::dispatch`] engine, and parses
/// each worker's stdout as a [`ShardDocument`].
///
/// This compatibility wrapper keeps the PR 5 contract — single attempt per
/// shard, no timeout, no speculation — while capturing worker stderr: a
/// worker that exits nonzero, prints non-UTF-8, or prints an unparseable
/// document fails the whole fan-out with an error naming the shard, its
/// attempt count, and the last lines of its stderr. The caller reports the
/// error and exits nonzero without writing partial output. The CLI's
/// retry/timeout/speculation lanes call [`dispatch`] directly with a richer
/// [`DispatchPolicy`].
pub fn run_workers(args_per_worker: &[Vec<String>]) -> Result<Vec<ShardDocument>, String> {
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate the current executable: {e}"))?;
    run_workers_with_exe(&exe, args_per_worker)
}

/// As [`run_workers`], but spawning an explicit worker executable — the
/// seam the failure-handling tests use to simulate crashed and garbled
/// workers without patching the real binary.
pub fn run_workers_with_exe(
    exe: &std::path::Path,
    args_per_worker: &[Vec<String>],
) -> Result<Vec<ShardDocument>, String> {
    let launchers: Vec<Box<dyn Launcher>> = vec![Box::new(LocalLauncher::new(
        exe,
        args_per_worker.len().max(1),
    ))];
    let tasks = worker_tasks(args_per_worker);
    let (docs, _summary) = dispatch(&launchers, &tasks, &DispatchPolicy::no_retry())?;
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{run_experiments, ExperimentId};
    use crate::sweep::run_sweep;
    use science_kernels::workload;

    #[test]
    fn shard_specs_parse_and_reject_out_of_range() {
        assert_eq!(
            ShardSpec::parse("0/3").unwrap(),
            ShardSpec { index: 0, total: 3 }
        );
        assert_eq!(
            ShardSpec::parse("2/3").unwrap(),
            ShardSpec { index: 2, total: 3 }
        );
        assert!(ShardSpec::parse("3/3").is_err(), "index == total");
        assert!(ShardSpec::parse("5/3").is_err(), "index > total");
        assert!(ShardSpec::parse("0/0").is_err(), "zero shards");
        assert!(ShardSpec::parse("2").is_err(), "missing separator");
        assert!(ShardSpec::parse("a/3").is_err());
        assert!(ShardSpec::parse("1/b").is_err());
        assert!(ShardSpec::parse("-1/3").is_err(), "negative index");
    }

    #[test]
    fn partition_tiles_the_work_list_exactly() {
        for len in 0..20usize {
            for total in 1..8u64 {
                let mut covered = Vec::new();
                for index in 0..total {
                    let range = ShardSpec { index, total }.range(len);
                    assert!(range.start <= range.end && range.end <= len);
                    covered.extend(range);
                }
                assert_eq!(covered, (0..len).collect::<Vec<_>>(), "len={len} n={total}");
            }
        }
        // The single-shard partition is the identity: --shard 0/1 ≡ no flag.
        assert_eq!(ShardSpec { index: 0, total: 1 }.range(11), 0..11);
        // More workers than items leaves some shards empty.
        assert!(ShardSpec { index: 0, total: 3 }.range(2).is_empty());
        assert!(ShardSpec { index: 0, total: 4 }.range(1).is_empty());
    }

    fn run_doc(
        shard: u64,
        shards: u64,
        ids: &[ExperimentId],
        all: &[ExperimentId],
    ) -> ShardDocument {
        let spec = ShardSpec {
            index: shard,
            total: shards,
        };
        let range = spec.range(all.len());
        ShardDocument {
            manifest: ShardManifest {
                command: "run".to_string(),
                shard,
                shards,
                start: range.start as u64,
                count: ids.len() as u64,
                total: all.len() as u64,
                items: ids.iter().map(|id| id.as_str().to_string()).collect(),
                workload: None,
                params: None,
                pool: None,
            },
            reports: run_experiments(ids),
        }
    }

    #[test]
    fn shard_documents_round_trip_through_json() {
        let ids = [ExperimentId::Table1, ExperimentId::Fig5];
        let doc = run_doc(0, 1, &ids, &ids);
        let parsed = ShardDocument::parse(&doc.to_json_pretty()).unwrap();
        assert_eq!(parsed.manifest, doc.manifest);
        assert_eq!(parsed.reports.len(), doc.reports.len());
        assert_eq!(parsed.to_json_pretty(), doc.to_json_pretty());
    }

    #[test]
    fn merged_run_shards_equal_the_single_process_reports() {
        let all = [ExperimentId::Table1, ExperimentId::Fig2, ExperimentId::Fig5];
        let expected = run_experiments(&all);
        let docs = vec![
            run_doc(0, 2, &all[..1], &all),
            run_doc(1, 2, &all[1..], &all),
        ];
        let items: Vec<String> = all.iter().map(|id| id.as_str().to_string()).collect();
        let merged = merge_run(&docs, &items).unwrap();
        assert_eq!(
            ExperimentReport::render_json_array(&merged),
            ExperimentReport::render_json_array(&expected)
        );
    }

    #[test]
    fn merge_rejects_incomplete_or_overlapping_sets() {
        let all = [ExperimentId::Table1, ExperimentId::Fig5];
        let items: Vec<String> = all.iter().map(|id| id.as_str().to_string()).collect();
        let full = run_doc(0, 1, &all, &all);
        // A missing shard.
        let lone = run_doc(0, 2, &all[..1], &all);
        assert!(merge_run(std::slice::from_ref(&lone), &items).is_err());
        // A duplicated shard index.
        assert!(merge_run(&[lone.clone(), lone], &items).is_err());
        // Item labels that do not match the coordinator's request.
        let swapped: Vec<String> = items.iter().rev().cloned().collect();
        assert!(merge_run(std::slice::from_ref(&full), &swapped).is_err());
        assert!(merge_run(&[full], &items).is_ok());
    }

    #[test]
    fn merged_sweep_shards_render_byte_identically() {
        let engine = workload::find("stencil").unwrap();
        let spec = SweepSpec::new(engine, &[], vec![16, 20, 24]).unwrap();
        let expected = run_sweep(&spec).unwrap();
        // Three shards over three points, the middle one via a sub-spec.
        let mut docs = Vec::new();
        for index in 0..3u64 {
            let shard = ShardSpec { index, total: 3 };
            let range = shard.range(spec.sizes.len());
            let sizes = spec.sizes[range.clone()].to_vec();
            let sub = SweepSpec::new(engine, &[], sizes.clone()).unwrap();
            docs.push(ShardDocument {
                manifest: ShardManifest {
                    command: "sweep".to_string(),
                    shard: index,
                    shards: 3,
                    start: range.start as u64,
                    count: sizes.len() as u64,
                    total: spec.sizes.len() as u64,
                    items: sizes.iter().map(|s| s.to_string()).collect(),
                    workload: Some(engine.name().to_string()),
                    params: Some(spec.base.encode()),
                    pool: None,
                },
                reports: vec![run_sweep(&sub).unwrap()],
            });
        }
        let merged = merge_sweep(&spec, &docs).unwrap();
        assert_eq!(merged.render(), expected.render());
        assert_eq!(merged.to_json_pretty(), expected.to_json_pretty());
    }

    #[test]
    fn merged_sweep_tolerates_empty_shards() {
        let engine = workload::find("stencil").unwrap();
        let spec = SweepSpec::new(engine, &[], vec![16]).unwrap();
        let expected = run_sweep(&spec).unwrap();
        let manifest = |index: u64, start: u64, count: u64, items: Vec<String>| ShardManifest {
            command: "sweep".to_string(),
            shard: index,
            shards: 2,
            start,
            count,
            total: 1,
            items,
            workload: Some(engine.name().to_string()),
            params: Some(spec.base.encode()),
            pool: None,
        };
        let docs = vec![
            ShardDocument {
                manifest: manifest(0, 0, 0, vec![]),
                reports: vec![],
            },
            ShardDocument {
                manifest: manifest(1, 0, 1, vec!["16".to_string()]),
                reports: vec![run_sweep(&spec).unwrap()],
            },
        ];
        let merged = merge_sweep(&spec, &docs).unwrap();
        assert_eq!(merged.to_json_pretty(), expected.to_json_pretty());
        // A shard claiming zero points but carrying a report is rejected —
        // splicing it in would silently duplicate rows.
        let contradictory = vec![
            ShardDocument {
                manifest: manifest(0, 0, 0, vec![]),
                reports: vec![run_sweep(&spec).unwrap()],
            },
            ShardDocument {
                manifest: manifest(1, 0, 1, vec!["16".to_string()]),
                reports: vec![run_sweep(&spec).unwrap()],
            },
        ];
        let err = match merge_sweep(&spec, &contradictory) {
            Err(err) => err,
            Ok(_) => panic!("a count-0 shard with a report must be rejected"),
        };
        assert!(err.contains("0 point(s)"), "{err}");
    }
}
