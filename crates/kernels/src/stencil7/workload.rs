//! The `stencil` scenario: the seven-point Laplacian drivers behind the
//! [`Workload`] interface.

use super::{StencilConfig, MAX_FUNCTIONAL_L};
use crate::workload::{
    check_int_range, paper_platform_pairs, Measurement, ParamSpec, Params, Workload, WorkloadError,
    WorkloadOutput,
};
use gpu_sim::PooledVec;
use gpu_spec::Precision;
use hpc_metrics::stencil_bandwidth_gbs;

/// Parses a `fp32`/`fp64` keyword.
pub fn parse_precision(keyword: &str) -> Result<Precision, WorkloadError> {
    match keyword {
        "fp32" => Ok(Precision::Fp32),
        "fp64" => Ok(Precision::Fp64),
        other => Err(WorkloadError::new(format!(
            "unknown precision '{other}' (expected fp32 or fp64)"
        ))),
    }
}

/// Decodes a validated parameter assignment into a driver configuration.
///
/// `block=0` (the default) keeps the paper's heuristic of `min(l, 1024)`
/// threads per block; functional validation is enabled automatically below
/// the precision's functional limit, exactly as [`StencilConfig::paper`]
/// does.
pub fn config(params: &Params) -> Result<StencilConfig, WorkloadError> {
    let l = params.int("l") as usize;
    let mut config = StencilConfig::paper(l, parse_precision(params.text("precision"))?);
    let block = params.int("block");
    if block != 0 {
        config.block_x = block as u32;
    }
    Ok(config)
}

/// The seven-point stencil workload (paper Figure 3 / Table 2).
pub struct StencilWorkload;

impl Workload for StencilWorkload {
    fn name(&self) -> &'static str {
        "stencil"
    }

    fn description(&self) -> &'static str {
        "seven-point Laplacian on a cubic grid (memory-bandwidth bound, Eq. 1)"
    }

    fn fom_label(&self) -> &'static str {
        "bandwidth_gbs"
    }

    fn size_param(&self) -> &'static str {
        "l"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::int("l", MAX_FUNCTIONAL_L as u64, "cubic grid side length"),
            ParamSpec::text("precision", "fp64", "arithmetic precision (fp32|fp64)"),
            ParamSpec::int("block", 0, "threads per block in x (0 = min(l, 1024))"),
        ]
    }

    fn bench_sizes(&self) -> &'static [u64] {
        &[64, 96, 128]
    }

    fn validate(&self, params: &Params) -> Result<(), WorkloadError> {
        // 3 for interior cells; the ceiling keeps cells() = l³ (and every
        // derived byte count) far inside u64.
        check_int_range(params, "l", 3, 1 << 16)?;
        check_int_range(params, "block", 0, 1024)?;
        let _ = config(params)?;
        Ok(())
    }

    fn run_lane(
        &self,
        params: &Params,
        policy: crate::simd::LanePolicy,
    ) -> Result<WorkloadOutput, WorkloadError> {
        self.validate(params)?;
        let config = config(params)?;
        let mut measurements = PooledVec::new();
        for platform in paper_platform_pairs() {
            let run = super::run_lane(platform, &config, policy)?;
            let fom = stencil_bandwidth_gbs(config.l as u64, config.precision, run.seconds());
            measurements.push(Measurement::from_run(&run, fom));
        }
        Ok(WorkloadOutput {
            params: params.clone(),
            measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_paper_configs_from_encodings() {
        let mut params = StencilWorkload.default_params();
        params.apply_encoding("l=512,precision=fp32").unwrap();
        let decoded = config(&params).unwrap();
        assert_eq!(decoded, StencilConfig::paper(512, Precision::Fp32));
        params.apply_encoding("block=256").unwrap();
        assert_eq!(config(&params).unwrap().block_x, 256);
    }

    #[test]
    fn validation_rejects_degenerate_grids_and_oversized_blocks() {
        let mut params = StencilWorkload.default_params();
        params.apply_encoding("l=2").unwrap();
        assert!(StencilWorkload.validate(&params).is_err());
        let mut params = StencilWorkload.default_params();
        params.apply_encoding("block=2048").unwrap();
        assert!(StencilWorkload.validate(&params).is_err());
        assert!(StencilWorkload
            .validate(&StencilWorkload.default_params())
            .is_ok());
    }

    #[test]
    fn sizes_that_would_overflow_the_cost_model_are_rejected_not_run() {
        // l = 10^10 would overflow cells() = l³; validate() and run() both
        // refuse it instead of wrapping.
        let mut params = StencilWorkload.default_params();
        params.apply_encoding("l=10000000000").unwrap();
        assert!(StencilWorkload.validate(&params).is_err());
        assert!(StencilWorkload.run(&params).is_err());
    }

    #[test]
    fn runs_every_paper_platform_and_verifies_at_small_sizes() {
        let mut params = StencilWorkload.default_params();
        params.apply_encoding("l=24").unwrap();
        let output = StencilWorkload.run(&params).unwrap();
        assert_eq!(output.measurements.len(), 4);
        for m in &output.measurements {
            assert!(m.fom > 0.0, "{} bandwidth should be positive", m.backend);
            assert!(m.verification.starts_with("passed("), "{}", m.verification);
        }
        // H100 Mojo/CUDA pair first, MI300A pair second.
        assert_eq!(output.measurements[0].backend, "Mojo");
        assert_eq!(output.measurements[1].backend, "CUDA");
    }
}
