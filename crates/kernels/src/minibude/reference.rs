//! CPU golden reference for the fasten energy computation.
//!
//! Both GPU implementations (portable and vendor-style) must reproduce these
//! energies exactly (the arithmetic is the same sequence of `f32` operations),
//! which is how the drivers validate functional execution.

use super::deck::Deck;

/// Hard-sphere clash penalty strength.
pub const HARDNESS: f32 = 38.0;
/// Softening constant in the electrostatic denominator.
pub const ELEC_SOFTEN: f32 = 1.0;
/// Range parameter of the short-range attraction term.
pub const ATTRACTION_RANGE: f32 = 0.05;
/// Final scaling applied to each pose energy (the `* Half` of Listing 4).
pub const HALF: f32 = 0.5;

/// The rotation + translation of one pose applied to a point.
#[inline]
pub fn transform_point(pose: [f32; 6], x: f32, y: f32, z: f32) -> (f32, f32, f32) {
    let (sx, cx) = pose[0].sin_cos();
    let (sy, cy) = pose[1].sin_cos();
    let (sz, cz) = pose[2].sin_cos();
    // R = Rz(rz) · Ry(ry) · Rx(rx), applied to (x, y, z), then translated.
    let r00 = cy * cz;
    let r01 = sx * sy * cz - cx * sz;
    let r02 = cx * sy * cz + sx * sz;
    let r10 = cy * sz;
    let r11 = sx * sy * sz + cx * cz;
    let r12 = cx * sy * sz - sx * cz;
    let r20 = -sy;
    let r21 = sx * cy;
    let r22 = cx * cy;
    (
        r00 * x + r01 * y + r02 * z + pose[3],
        r10 * x + r11 * y + r12 * z + pose[4],
        r20 * x + r21 * y + r22 * z + pose[5],
    )
}

/// Interaction energy between one transformed ligand atom and one protein
/// atom, given their force-field parameters `(radius, hphb, charge)`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn pair_energy(
    lx: f32,
    ly: f32,
    lz: f32,
    l_ff: (f32, f32, f32),
    px: f32,
    py: f32,
    pz: f32,
    p_ff: (f32, f32, f32),
) -> f32 {
    let dx = px - lx;
    let dy = py - ly;
    let dz = pz - lz;
    let r2 = dx * dx + dy * dy + dz * dz;
    let r = r2.sqrt();
    let radij = l_ff.0 + p_ff.0;

    let mut e = 0.0f32;
    // Steric clash penalty inside the combined radius.
    if r < radij {
        e += (1.0 - r / radij) * HARDNESS;
    }
    // Softened electrostatics.
    e += l_ff.2 * p_ff.2 / (r + ELEC_SOFTEN);
    // Short-range hydrophobic / hydrogen-bond attraction.
    e -= l_ff.1 * p_ff.1 * (-r2 * ATTRACTION_RANGE).exp();
    e
}

/// Energy of one pose: the sum of pair energies over every (ligand, protein)
/// atom pair, scaled by [`HALF`].
pub fn pose_energy(deck: &Deck, pose_index: usize) -> f32 {
    let pose = [
        deck.transforms[0][pose_index],
        deck.transforms[1][pose_index],
        deck.transforms[2][pose_index],
        deck.transforms[3][pose_index],
        deck.transforms[4][pose_index],
        deck.transforms[5][pose_index],
    ];
    let mut etot = 0.0f32;
    for lig in &deck.ligand {
        let l_ff = deck.forcefield[lig.type_index as usize];
        let (lx, ly, lz) = transform_point(pose, lig.x, lig.y, lig.z);
        for pro in &deck.protein {
            let p_ff = deck.forcefield[pro.type_index as usize];
            etot += pair_energy(
                lx,
                ly,
                lz,
                (l_ff.radius, l_ff.hphb, l_ff.charge),
                pro.x,
                pro.y,
                pro.z,
                (p_ff.radius, p_ff.hphb, p_ff.charge),
            );
        }
    }
    etot * HALF
}

/// Reference energies of the first `count` poses.
pub fn reference_energies(deck: &Deck, count: usize) -> Vec<f32> {
    use rayon::prelude::*;
    (0..count)
        .into_par_iter()
        .map(|p| pose_energy(deck, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minibude::config::MiniBudeConfig;

    #[test]
    fn identity_pose_leaves_points_unchanged() {
        let (x, y, z) = transform_point([0.0; 6], 1.0, 2.0, 3.0);
        assert!((x - 1.0).abs() < 1e-6);
        assert!((y - 2.0).abs() < 1e-6);
        assert!((z - 3.0).abs() < 1e-6);
    }

    #[test]
    fn rotation_preserves_distance_from_origin() {
        let pose = [0.3, -1.2, 2.0, 0.0, 0.0, 0.0];
        let (x, y, z) = transform_point(pose, 1.0, 2.0, 3.0);
        let before = (1.0f32 + 4.0 + 9.0).sqrt();
        let after = (x * x + y * y + z * z).sqrt();
        assert!((before - after).abs() < 1e-4);
    }

    #[test]
    fn translation_moves_points() {
        let pose = [0.0, 0.0, 0.0, 5.0, -2.0, 1.0];
        let (x, y, z) = transform_point(pose, 0.0, 0.0, 0.0);
        assert_eq!((x, y, z), (5.0, -2.0, 1.0));
    }

    #[test]
    fn overlapping_atoms_are_penalised() {
        // Two atoms at the same point: a strong positive clash term.
        let close = pair_energy(
            0.0,
            0.0,
            0.0,
            (1.5, 0.0, 0.0),
            0.1,
            0.0,
            0.0,
            (1.5, 0.0, 0.0),
        );
        let far = pair_energy(
            0.0,
            0.0,
            0.0,
            (1.5, 0.0, 0.0),
            30.0,
            0.0,
            0.0,
            (1.5, 0.0, 0.0),
        );
        assert!(close > 10.0);
        assert!(far.abs() < 0.1);
    }

    #[test]
    fn opposite_charges_attract() {
        let attract = pair_energy(
            0.0,
            0.0,
            0.0,
            (0.1, 0.0, 0.5),
            5.0,
            0.0,
            0.0,
            (0.1, 0.0, -0.5),
        );
        let repel = pair_energy(
            0.0,
            0.0,
            0.0,
            (0.1, 0.0, 0.5),
            5.0,
            0.0,
            0.0,
            (0.1, 0.0, 0.5),
        );
        assert!(attract < 0.0);
        assert!(repel > 0.0);
    }

    #[test]
    fn reference_is_deterministic_and_finite() {
        let config = MiniBudeConfig::validation(2, 8);
        let deck = Deck::generate(&config);
        let a = reference_energies(&deck, 16);
        let b = reference_energies(&deck, 16);
        assert_eq!(a, b);
        assert!(a.iter().all(|e| e.is_finite()));
        // Different poses give different energies.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }
}
