//! Offline stand-in for `serde_json`: renders the serde shim's value tree as
//! JSON and parses JSON back. Covers `to_string`, `to_string_pretty` and
//! `from_str` — the API surface this workspace uses.

use serde::value::Value;

/// JSON (de)serialisation error.
pub type Error = serde::value::Error;

/// Serialises a value as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value as human-readable, indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserialisable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip formatting; keep a fraction so
                // the token parses back as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => write_sequence(
            out,
            indent,
            level,
            '[',
            ']',
            items.iter(),
            |out, item, lvl| write_value(out, item, indent, lvl),
        ),
        Value::Object(entries) => write_sequence(
            out,
            indent,
            level,
            '{',
            '}',
            entries.iter(),
            |out, (key, value), lvl| {
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, lvl);
            },
        ),
    }
}

fn write_sequence<I: ExactSizeIterator>(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, level + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(_) => self.parse_number(),
            None => Err(Error::new("unexpected end of JSON input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid JSON near byte {}", self.pos)))
        }
    }

    /// Reads the four hex digits of a `\u` escape. Entered with the cursor on
    /// the `u`; leaves it on the final hex digit.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let mut code = self.parse_hex4()?;
                            // Non-BMP characters arrive as UTF-16 surrogate
                            // pairs (`𝒜`); combine them.
                            if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(Error::new("unpaired surrogate in \\u escape"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::new("invalid low surrogate in \\u escape"));
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in JSON string"))?,
                    );
                }
                None => return Err(Error::new("unterminated JSON string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid JSON number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn surrogate_pair_escapes_parse() {
        let s: String = crate::from_str("\"\\ud835\\udc9c ok\"").unwrap();
        assert_eq!(s, "\u{1d49c} ok");
        // Unpaired or malformed surrogates are rejected, not mis-decoded.
        assert!(crate::from_str::<String>("\"\\ud835\"").is_err());
        assert!(crate::from_str::<String>("\"\\ud835\\u0041\"").is_err());
    }

    #[test]
    fn round_trip_through_json_text() {
        let v = vec![1.5f64, -2.0, 3.25];
        let text = crate::to_string(&v).unwrap();
        let back: Vec<f64> = crate::from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
