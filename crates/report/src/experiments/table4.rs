//! Table 4 — Hartree–Fock kernel wall-clock times, Mojo vs CUDA (H100) and
//! Mojo vs HIP (MI300A).

use crate::render::AsciiTable;
use crate::report::ExperimentReport;
use hpc_metrics::output::CsvTable;
use science_kernels::hartree_fock::{self, HartreeFockConfig};
use vendor_models::Platform;

/// One row of Table 4: durations in milliseconds per platform.
#[derive(Debug, Clone)]
pub struct HartreeFockRow {
    /// Number of atoms.
    pub natoms: u32,
    /// Gaussians per atom.
    pub ngauss: u32,
    /// Mojo on the H100.
    pub mojo_h100_ms: f64,
    /// CUDA on the H100.
    pub cuda_ms: f64,
    /// Mojo on the MI300A.
    pub mojo_mi300a_ms: f64,
    /// HIP on the MI300A.
    pub hip_ms: f64,
}

/// Computes every row of Table 4.
pub fn rows() -> Vec<HartreeFockRow> {
    HartreeFockConfig::paper_cases()
        .iter()
        .map(|&(natoms, ngauss)| {
            let config = HartreeFockConfig::paper(natoms, ngauss);
            let time = |platform: &Platform| {
                hartree_fock::run(platform, &config)
                    .expect("hartree-fock run")
                    .millis()
            };
            HartreeFockRow {
                natoms,
                ngauss,
                mojo_h100_ms: time(&Platform::portable_h100()),
                cuda_ms: time(&Platform::cuda_h100(false)),
                mojo_mi300a_ms: time(&Platform::portable_mi300a()),
                hip_ms: time(&Platform::hip_mi300a(false)),
            }
        })
        .collect()
}

/// Regenerates Table 4.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table4",
        "Hartree-Fock kernel execution duration (ms), Mojo vs CUDA and HIP",
    );
    report.push_line("[profile constants: EXPERIMENTS.md \u{00a7} Hartree-Fock]");
    let mut table = AsciiTable::new([
        "case",
        "H100 Mojo",
        "H100 CUDA",
        "MI300A Mojo",
        "MI300A HIP",
    ]);
    let mut csv = CsvTable::new([
        "natoms",
        "ngauss",
        "mojo_h100_ms",
        "cuda_ms",
        "mojo_mi300a_ms",
        "hip_ms",
    ]);
    // Present rows largest-first like the paper.
    let mut all = rows();
    all.sort_by_key(|row| std::cmp::Reverse(row.natoms));
    for row in &all {
        table.push_row([
            format!("a={} ngauss={}", row.natoms, row.ngauss),
            format!("{:.0}", row.mojo_h100_ms),
            format!("{:.0}", row.cuda_ms),
            format!("{:.0}", row.mojo_mi300a_ms),
            format!("{:.0}", row.hip_ms),
        ]);
        csv.push_row([
            format!("{}", row.natoms),
            format!("{}", row.ngauss),
            format!("{}", row.mojo_h100_ms),
            format!("{}", row.cuda_ms),
            format!("{}", row.mojo_mi300a_ms),
            format!("{}", row.hip_ms),
        ]);
    }
    report.push_line(table.render());
    report.push_line(
        "Note: absolute times differ from the paper (synthetic helium lattice vs the original \
         decks); the comparisons the paper draws — Mojo ≈2.5x faster than CUDA up to 256 atoms, \
         collapse at 1024, and orders-of-magnitude slower than HIP — are reproduced. See \
         EXPERIMENTS.md.",
    );
    report.push_table("wallclock", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_reproduces_the_papers_relative_ordering() {
        let rows = rows();
        for row in &rows {
            if row.natoms <= 256 {
                let speedup = row.cuda_ms / row.mojo_h100_ms;
                assert!(
                    (1.8..=3.2).contains(&speedup),
                    "a={}: Mojo should be ≈2.5x faster than CUDA, got {speedup:.2}",
                    row.natoms
                );
            } else {
                assert!(
                    row.mojo_h100_ms > 20.0 * row.cuda_ms,
                    "a={}: Mojo should collapse vs CUDA",
                    row.natoms
                );
            }
            if row.natoms <= 256 {
                // The paper's MI300A column has no 1024-atom Mojo entry ("-"),
                // so the orders-of-magnitude gap is only asserted up to 256.
                assert!(
                    row.mojo_mi300a_ms > 50.0 * row.hip_ms,
                    "a={}: Mojo should badly trail HIP",
                    row.natoms
                );
            }
            assert!(row.hip_ms < row.cuda_ms, "HIP beats CUDA at every size");
        }
    }

    #[test]
    fn table4_report_has_all_four_cases() {
        let report = run();
        for case in [
            "a=1024 ngauss=6",
            "a=256 ngauss=3",
            "a=128 ngauss=3",
            "a=64 ngauss=3",
        ] {
            assert!(report.text.contains(case), "missing {case}");
        }
        assert_eq!(report.tables[0].1.rows.len(), 4);
    }
}
