//! Bench target for Figure 5 — Triad generated-code (instruction-mix) diff.

use criterion::Criterion;
use experiment_report::experiments::fig5;
use experiment_report::ExperimentId;

fn bench(c: &mut Criterion) {
    let pool_before = bench::pool_snapshot();
    let mut group = c.benchmark_group("fig5");
    group.bench_function("instruction_mix_comparison", |b| b.iter(fig5::comparison));
    bench::record_pool_counters(&mut group, &pool_before);
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Fig5);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
