//! Vendor-baseline (CUDA/HIP style) fasten implementation.
//!
//! Mirrors the original miniBUDE CUDA/HIP kernels: raw device pointers, a
//! runtime PPWI loop over a register array of partial energies, and the
//! original `Atom`-struct layout (the baselines do not need the flattening
//! workaround the portable port uses). Launched directly on the simulator.

use super::config::MiniBudeConfig;
use super::cost::fasten_cost;
use super::reference::{pair_energy, transform_point, HALF};
use crate::cache;
use crate::common::{compare_slices_f32, Verification, WorkloadRun};
use gpu_sim::memory::DeviceBuffer;
use gpu_sim::{istr, launch_flat, PooledVec, SimError};
use vendor_models::{heuristics, KernelClass, Platform};

/// Upper bound on PPWI supported by the baseline's register array.
const MAX_PPWI: usize = 128;

/// Runs the vendor-baseline fasten kernel on `platform`.
pub fn run_vendor(platform: &Platform, config: &MiniBudeConfig) -> Result<WorkloadRun, SimError> {
    let cost = fasten_cost(config);
    let class = KernelClass::BudeFasten {
        ppwi: config.ppwi,
        wg: config.wg,
    };
    let profile = platform.execution_profile(&class);
    let timing = cache::timing_model(platform).estimate(&cost, &profile);

    let verification = if config.should_execute() {
        execute(platform, config)?
    } else {
        Verification::Skipped {
            reason: istr("functional execution disabled (executed_poses = 0)"),
        }
    };

    Ok(WorkloadRun {
        backend: profile.backend.clone(),
        device: istr(&platform.spec.name),
        kernel: istr("fasten"),
        cost,
        profile,
        timing,
        verification,
    })
}

#[allow(clippy::too_many_arguments)]
fn execute(platform: &Platform, config: &MiniBudeConfig) -> Result<Verification, SimError> {
    if config.ppwi as usize > MAX_PPWI {
        return Err(SimError::InvalidParameter(format!(
            "PPWI {} exceeds the baseline's register array of {MAX_PPWI}",
            config.ppwi
        )));
    }
    let deck = cache::minibude_deck(config);
    let flats = cache::minibude_flats(config);
    let nposes = config.executed_poses;
    let device = cache::device(platform);

    let protein: DeviceBuffer<f32> = device.alloc_from_host(&flats.protein)?;
    let ligand: DeviceBuffer<f32> = device.alloc_from_host(&flats.ligand)?;
    let forcefield: DeviceBuffer<f32> = device.alloc_from_host(&flats.forcefield)?;
    let transforms: [DeviceBuffer<f32>; 6] = [
        device.alloc_from_host(&deck.transforms[0][..nposes])?,
        device.alloc_from_host(&deck.transforms[1][..nposes])?,
        device.alloc_from_host(&deck.transforms[2][..nposes])?,
        device.alloc_from_host(&deck.transforms[3][..nposes])?,
        device.alloc_from_host(&deck.transforms[4][..nposes])?,
        device.alloc_from_host(&deck.transforms[5][..nposes])?,
    ];
    let etotals: DeviceBuffer<f32> = device.alloc::<f32>(nposes)?;

    let launch = heuristics::bude_launch(nposes as u64, config.ppwi, config.wg);
    launch.validate(&platform.spec)?;

    let ppwi = config.ppwi as usize;
    let natlig = config.natlig;
    let natpro = config.natpro;
    let (t0, t1, t2, t3, t4, t5) = (
        transforms[0].clone(),
        transforms[1].clone(),
        transforms[2].clone(),
        transforms[3].clone(),
        transforms[4].clone(),
        transforms[5].clone(),
    );
    let (pro, lig, ff, out) = (
        protein.clone(),
        ligand.clone(),
        forcefield.clone(),
        etotals.clone(),
    );

    launch_flat(&launch, move |t| {
        let lsz = t.block_dim.x as usize;
        let mut ix = (t.block_idx.x as usize) * lsz * ppwi + t.thread_idx.x as usize;
        if ix >= nposes {
            ix = nposes - ppwi;
        }

        let mut etot = [0.0f32; MAX_PPWI];
        for (lane, lane_slot) in etot.iter_mut().enumerate().take(ppwi) {
            let pose_index = ix + lane * lsz;
            if pose_index >= nposes {
                continue;
            }
            let pose = [
                t0.read(pose_index),
                t1.read(pose_index),
                t2.read(pose_index),
                t3.read(pose_index),
                t4.read(pose_index),
                t5.read(pose_index),
            ];
            let mut lane_energy = 0.0f32;
            for l in 0..natlig {
                let lx = lig.read(l * 4);
                let ly = lig.read(l * 4 + 1);
                let lz = lig.read(l * 4 + 2);
                let ltype = lig.read(l * 4 + 3) as usize;
                let l_ff = (
                    ff.read(ltype * 3),
                    ff.read(ltype * 3 + 1),
                    ff.read(ltype * 3 + 2),
                );
                let (tx, ty, tz) = transform_point(pose, lx, ly, lz);
                for p in 0..natpro {
                    let px = pro.read(p * 4);
                    let py = pro.read(p * 4 + 1);
                    let pz = pro.read(p * 4 + 2);
                    let ptype = pro.read(p * 4 + 3) as usize;
                    let p_ff = (
                        ff.read(ptype * 3),
                        ff.read(ptype * 3 + 1),
                        ff.read(ptype * 3 + 2),
                    );
                    lane_energy += pair_energy(tx, ty, tz, l_ff, px, py, pz, p_ff);
                }
            }
            *lane_slot = lane_energy;
        }

        let td_base = (t.block_idx.x as usize) * lsz * ppwi + t.thread_idx.x as usize;
        if td_base < nposes {
            for (lane, lane_energy) in etot.iter().enumerate().take(ppwi) {
                let out_index = td_base + lane * lsz;
                if out_index < nposes {
                    out.write(out_index, lane_energy * HALF);
                }
            }
        }
    });

    let expected = cache::minibude_reference(config);
    let mut actual: PooledVec<f32> = PooledVec::new();
    etotals.copy_to_host_into(&mut actual);
    match compare_slices_f32(&actual, &expected, 2e-3) {
        Ok(max_abs_error) => Ok(Verification::Passed { max_abs_error }),
        Err(msg) => Err(SimError::InvalidParameter(format!(
            "vendor fasten verification failed: {msg}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuda_fasten_matches_the_reference() {
        let config = MiniBudeConfig::validation(4, 8);
        let run = run_vendor(&Platform::cuda_h100(true), &config).unwrap();
        assert!(run.verification.is_verified());
        assert_eq!(run.backend, "CUDA fast-math");
    }

    #[test]
    fn hip_fasten_matches_the_reference_at_wg64() {
        let config = MiniBudeConfig::validation(8, 64);
        let run = run_vendor(&Platform::hip_mi300a(false), &config).unwrap();
        assert!(run.verification.is_verified());
        assert_eq!(run.backend, "HIP");
    }

    #[test]
    fn fast_math_changes_speed_but_not_results() {
        let config = MiniBudeConfig::validation(4, 8);
        let plain = run_vendor(&Platform::cuda_h100(false), &config).unwrap();
        let ff = run_vendor(&Platform::cuda_h100(true), &config).unwrap();
        assert!(plain.verification.is_verified());
        assert!(ff.verification.is_verified());
        assert!(ff.seconds() < plain.seconds());
    }

    #[test]
    fn portable_and_vendor_agree_bitwise_on_the_same_deck() {
        // Both implementations run the same f32 expression sequence, so their
        // energies agree to the verification tolerance on the same deck.
        let config = MiniBudeConfig::validation(2, 8);
        let a = super::super::run_portable(&Platform::portable_h100(), &config).unwrap();
        let b = run_vendor(&Platform::cuda_h100(false), &config).unwrap();
        assert!(a.verification.is_verified());
        assert!(b.verification.is_verified());
    }
}
