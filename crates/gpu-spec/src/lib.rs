//! Hardware descriptions for the GPUs used in the paper's evaluation.
//!
//! The paper (Table 1 / Table 6) evaluates two devices:
//!
//! | GPU                       | Bandwidth | FP32 peak | FP64 peak |
//! |---------------------------|-----------|-----------|-----------|
//! | NVIDIA H100 NVL — 94 GB   | 3,900 GB/s| 60.0 TF/s | 30.0 TF/s |
//! | AMD MI300A — 128 GB HBM3  | 5,300 GB/s| 122.6 TF/s| 61.3 TF/s |
//!
//! This crate captures those published figures together with the architectural
//! parameters (SM/CU counts, warp/wavefront width, cache sizes and bandwidths,
//! register files) that the simulator in `gpu-sim` and the codegen models in
//! `vendor-models` need to charge time and derive NCU-style profiling metrics.
//!
//! Everything here is a *description*: plain data with derived helper methods.
//! No simulation logic lives in this crate.

#![warn(missing_docs)]

pub mod memory;
pub mod presets;
pub mod spec;
pub mod vendor;

pub use memory::{CacheLevel, LevelKind, MemoryHierarchy};
pub use presets::{all_presets, GpuPreset};
pub use spec::{ComputeTopology, GpuSpec, Precision};
pub use vendor::Vendor;

/// Number of bytes in one gibibyte (2^30), used for memory-capacity accounting.
pub const GIB: u64 = 1 << 30;

/// Number of bytes in one gigabyte (10^9), used for bandwidth accounting
/// (vendor peak-bandwidth figures are decimal).
pub const GB: f64 = 1e9;

/// One teraFLOP per second, in FLOP/s.
pub const TFLOPS: f64 = 1e12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(GIB, 1_073_741_824);
        assert!((GB - 1e9).abs() < f64::EPSILON);
        assert!((TFLOPS - 1e12).abs() < f64::EPSILON);
    }
}
