//! `mojo-hpc serve` — the always-on report service (DESIGN.md §13).
//!
//! The CLI lanes are run-to-completion: one request, one process, one
//! rendering. A deployment serving many collaborators from one expensive
//! compute source wants the opposite shape — a persistent daemon that
//! multiplexes concurrent clients, remembers what it already computed, and
//! collapses request spikes onto single computations. `serve` is that
//! daemon, built from three existing pieces:
//!
//! * **The work-stealing pool.** Each connection runs on its own thread and
//!   computes through the same `rayon`-shim pool `run`/`sweep` use, so the
//!   kernels parallelise identically under the server.
//! * **The stable `Params` encoding.** `Params::encode()` renders a total,
//!   spec-ordered `key=value,…` string — a content address. Completed
//!   results land in an LRU cache keyed on it (plus the experiment id for
//!   registry runs), bounded by entry count and estimated bytes.
//! * **The launcher layer.** A sweep request with at least
//!   `--spill-threshold` points is dispatched through
//!   [`crate::dispatch`]'s supervised worker subprocesses instead of the
//!   in-process pool, reusing its retry/timeout policy, and the shard merge
//!   guarantees the response still matches the single-process bytes.
//!
//! # Protocol
//!
//! Clients speak line-delimited JSON over TCP. Each request is one line:
//!
//! ```text
//! {"cmd": "run", "experiments": ["table1", "fig5"], "format": "json"}
//! {"cmd": "sweep", "workload": "stencil", "sizes": [16, 24],
//!  "params": {"precision": "fp32"}, "format": "csv"}
//! {"cmd": "stats"}
//! {"cmd": "shutdown"}
//! ```
//!
//! Every response starts with one compact JSON header line. `run` and
//! `sweep` headers carry `{"status":"ok","cached":…,"bytes":N}` and are
//! followed by exactly `N` raw payload bytes: the **same bytes** the
//! `run`/`sweep` subcommands print on stdout (omitting `experiments` runs
//! them all), so the golden fixtures double as protocol goldens. `stats`
//! returns `{"status":"ok","stats":{…}}`, `shutdown` acknowledges with
//! `{"status":"ok","shutdown":true}` and stops the server, and any failure
//! is `{"status":"error","error":"…"}`. A connection may pipeline any
//! number of requests.
//!
//! `cached` is true when every result the response needed came out of the
//! cache; identical requests computing concurrently are coalesced
//! single-flight (followers wait for the leader's result instead of
//! recomputing), counted separately in `stats`.
//!
//! The [`SERVE_SLOW_MS_ENV`] environment variable makes every computation
//! sleep first — the chaos seam the stress suite uses to hold many
//! identical requests in flight and prove exactly one computation runs.

use crate::dispatch::{self, DispatchPolicy, Launcher, LocalLauncher};
use crate::registry::{run_experiment, ExperimentId};
use crate::report::{json_array, json_field, json_opt_field, json_str, json_u64, ExperimentReport};
use crate::shard::{self, ShardPoolCounters};
use crate::sweep::{render_sweep, SweepSpec};
use science_kernels::workload::{self, Measurement, WorkloadOutput};
use serde::value::Value;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Environment variable holding a per-computation delay in milliseconds —
/// the serve-layer chaos seam (analogous to `MOJO_HPC_CHAOS` for workers).
/// The leader of each single-flight sleeps this long before computing, so a
/// test can pile identical requests onto one in-flight computation.
pub const SERVE_SLOW_MS_ENV: &str = "MOJO_HPC_SERVE_SLOW_MS";

/// Default bound on cached result entries.
pub const DEFAULT_CACHE_ENTRIES: usize = 1024;

/// Default bound on the cache's estimated resident bytes (64 MiB).
pub const DEFAULT_CACHE_BYTES: u64 = 64 * 1024 * 1024;

/// Default worker count of the spill lane.
pub const DEFAULT_SPILL_WORKERS: u64 = 4;

/// Configuration of one `mojo-hpc serve` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address (`HOST:PORT`; port 0 binds an ephemeral port — the
    /// bound address is announced on stderr either way).
    pub listen: String,
    /// Worker-thread override applied before the pool starts.
    pub threads: Option<usize>,
    /// Maximum cached results (0 disables caching).
    pub cache_entries: usize,
    /// Maximum estimated bytes of cached results.
    pub cache_bytes: u64,
    /// A sweep with at least this many points dispatches through the
    /// launcher layer instead of the in-process pool (0 disables spilling).
    pub spill_threshold: usize,
    /// Worker subprocesses of a spilled sweep (capped at the point count).
    pub spill_workers: u64,
    /// Per-attempt wall-clock timeout of spilled workers, in seconds.
    pub spill_timeout: Option<f64>,
    /// Directory for spill preset files (default `target/experiments`; kept
    /// out of the shared temp dir — a predictable path in a world-writable
    /// directory would be open to symlink games by other local users).
    pub scratch: Option<PathBuf>,
}

impl ServeConfig {
    /// A configuration with every knob at its default.
    pub fn new(listen: impl Into<String>) -> ServeConfig {
        ServeConfig {
            listen: listen.into(),
            threads: None,
            cache_entries: DEFAULT_CACHE_ENTRIES,
            cache_bytes: DEFAULT_CACHE_BYTES,
            spill_threshold: 0,
            spill_workers: DEFAULT_SPILL_WORKERS,
            spill_timeout: None,
            scratch: None,
        }
    }
}

/// A completed computation, shared cheaply between the cache, in-flight
/// waiters, and response rendering.
#[derive(Clone)]
enum CachedValue {
    /// One registry experiment's report (also a spilled sweep's merged
    /// report, which arrives pre-rendered from the shard merge).
    Report(Arc<ExperimentReport>),
    /// One sweep point's measurement rows, keyed on the point's full
    /// `Params` encoding.
    Rows(Arc<Vec<Measurement>>),
}

impl CachedValue {
    /// Estimated resident bytes, for the cache's byte budget. String
    /// content dominates both shapes; the per-row constant covers struct
    /// overhead.
    fn cost(&self) -> u64 {
        match self {
            CachedValue::Report(report) => {
                let tables: usize = report
                    .tables
                    .iter()
                    .map(|(name, t)| {
                        name.len()
                            + t.header.iter().map(String::len).sum::<usize>()
                            + t.rows
                                .iter()
                                .map(|r| r.iter().map(String::len).sum::<usize>() + 24)
                                .sum::<usize>()
                    })
                    .sum();
                (report.id.len() + report.title.len() + report.text.len() + tables + 64) as u64
            }
            CachedValue::Rows(rows) => rows
                .iter()
                .map(|m| {
                    (m.device.len() + m.backend.len() + m.kernel.len() + m.verification.len() + 64)
                        as u64
                })
                .sum(),
        }
    }
}

/// One cache slot.
struct CacheEntry {
    value: CachedValue,
    cost: u64,
    last_used: u64,
}

/// The bounded LRU result cache. Recency is a logical tick (every get and
/// insert advances it); eviction scans for the minimum — linear, but the
/// entry bound keeps the scan short and the common path is one hash lookup.
struct ResultCache {
    max_entries: usize,
    max_bytes: u64,
    map: HashMap<String, CacheEntry>,
    bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    inserts: u64,
}

impl ResultCache {
    fn new(max_entries: usize, max_bytes: u64) -> ResultCache {
        ResultCache {
            max_entries,
            max_bytes,
            map: HashMap::new(),
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            inserts: 0,
        }
    }

    fn get(&mut self, key: &str) -> Option<CachedValue> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: &str, value: CachedValue) {
        if self.max_entries == 0 {
            return;
        }
        let cost = value.cost();
        self.tick += 1;
        if let Some(old) = self.map.remove(key) {
            self.bytes -= old.cost;
        }
        self.bytes += cost;
        self.inserts += 1;
        self.map.insert(
            key.to_string(),
            CacheEntry {
                value,
                cost,
                last_used: self.tick,
            },
        );
        // Evict least-recently-used entries until both budgets hold. A
        // single over-budget value evicts itself — an entry larger than the
        // whole byte budget is not cacheable.
        while self.map.len() > self.max_entries || self.bytes > self.max_bytes {
            let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let entry = self.map.remove(&lru).expect("key came from the map");
            self.bytes -= entry.cost;
            self.evictions += 1;
        }
    }
}

/// One in-flight computation other requests can latch onto.
#[derive(Default)]
struct Flight {
    done: Mutex<Option<Result<CachedValue, String>>>,
    cv: Condvar,
}

/// Shared state of a running server.
struct ServeState {
    config: ServeConfig,
    /// The bound address (used by `shutdown` to wake the acceptor).
    addr: SocketAddr,
    cache: Mutex<ResultCache>,
    flights: Mutex<HashMap<String, Arc<Flight>>>,
    /// Computations actually executed (cache misses that led the flight).
    computed: AtomicU64,
    /// Requests that waited on another request's in-flight computation.
    coalesced: AtomicU64,
    /// Sweeps dispatched through the launcher layer.
    spilled: AtomicU64,
    /// Requests handled (any verb).
    requests: AtomicU64,
    /// Requests answered with an error status.
    errors: AtomicU64,
    shutdown: AtomicBool,
    /// Sequence for unique spill preset file names.
    spill_seq: AtomicU64,
    /// Pool counters at server start (`stats` reports the delta).
    pool_baseline: gpu_sim::PoolStats,
}

/// Locks a mutex, recovering the guard from a poisoned lock — one panicking
/// connection thread must not wedge a long-running daemon.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ServeState {
    fn new(config: ServeConfig, addr: SocketAddr) -> ServeState {
        ServeState {
            cache: Mutex::new(ResultCache::new(config.cache_entries, config.cache_bytes)),
            config,
            addr,
            flights: Mutex::new(HashMap::new()),
            computed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            spill_seq: AtomicU64::new(0),
            pool_baseline: gpu_sim::pool::stats(),
        }
    }
}

/// The serve-layer chaos delay, applied by single-flight leaders before
/// computing (see [`SERVE_SLOW_MS_ENV`]).
fn chaos_slow() {
    if let Some(ms) = std::env::var(SERVE_SLOW_MS_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Returns `key`'s value from the cache, or computes it exactly once across
/// every concurrent request for the same key (single-flight): the first
/// requester leads and computes, later requesters wait on the leader's
/// [`Flight`] and share its result. The boolean is true when the value came
/// straight out of the cache.
fn get_or_compute<F>(
    state: &ServeState,
    key: &str,
    compute: F,
) -> Result<(CachedValue, bool), String>
where
    F: FnOnce() -> Result<CachedValue, String>,
{
    if let Some(value) = lock(&state.cache).get(key) {
        return Ok((value, true));
    }
    let (flight, leader) = {
        let mut flights = lock(&state.flights);
        match flights.get(key) {
            Some(flight) => (Arc::clone(flight), false),
            None => {
                let flight = Arc::new(Flight::default());
                flights.insert(key.to_string(), Arc::clone(&flight));
                (flight, true)
            }
        }
    };
    if leader {
        // A flight that completed between our cache miss and our
        // registration has already populated the cache; don't recompute.
        let cached = lock(&state.cache).get(key);
        let result = match cached {
            Some(value) => Ok(value),
            None => {
                chaos_slow();
                state.computed.fetch_add(1, Ordering::SeqCst);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(compute))
                    .unwrap_or_else(|_| Err("computation panicked".to_string()));
                if let Ok(value) = &result {
                    lock(&state.cache).insert(key, value.clone());
                }
                result
            }
        };
        *lock(&flight.done) = Some(result.clone());
        flight.cv.notify_all();
        lock(&state.flights).remove(key);
        result.map(|value| (value, false))
    } else {
        state.coalesced.fetch_add(1, Ordering::SeqCst);
        let mut done = lock(&flight.done);
        while done.is_none() {
            done = flight.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
        done.clone()
            .expect("loop exits only when set")
            .map(|value| (value, false))
    }
}

/// A parsed protocol request.
enum Request {
    /// `run`: regenerate registry experiments (all of them when the
    /// `experiments` field is absent).
    Run {
        ids: Vec<ExperimentId>,
        format: BodyFormat,
    },
    /// `sweep`: run a workload at custom sizes with parameter overrides.
    Sweep {
        workload: String,
        sizes: Vec<u64>,
        params: Vec<String>,
        format: BodyFormat,
    },
    /// `stats`: report cache / single-flight / pool counters.
    Stats,
    /// `shutdown`: acknowledge and stop the server.
    Shutdown,
}

/// Payload rendering of `run` and `sweep` responses — mirrors the CLI's
/// `--format` flag (the payload bytes match that lane's stdout exactly).
#[derive(Clone, Copy, PartialEq)]
enum BodyFormat {
    Csv,
    Json,
}

impl BodyFormat {
    fn parse(value: &str) -> Result<BodyFormat, String> {
        match value {
            "csv" => Ok(BodyFormat::Csv),
            "json" => Ok(BodyFormat::Json),
            other => Err(format!("format: expected csv or json, got '{other}'")),
        }
    }
}

/// Parses the optional `format` field (`json` when absent — a wire protocol
/// defaults to the machine-readable rendering).
fn parse_format(value: &Value) -> Result<BodyFormat, String> {
    match json_opt_field(value, "format") {
        Some(v) => BodyFormat::parse(json_str(v)?),
        None => Ok(BodyFormat::Json),
    }
}

/// Renders a `params` object's entries as the `key=value` override strings
/// [`SweepSpec::new`] consumes.
fn parse_param_overrides(value: &Value) -> Result<Vec<String>, String> {
    let Some(params) = json_opt_field(value, "params") else {
        return Ok(Vec::new());
    };
    let Value::Object(fields) = params else {
        return Err("params: expected an object of key/value pairs".to_string());
    };
    fields
        .iter()
        .map(|(key, v)| match v {
            Value::Str(s) => Ok(format!("{key}={s}")),
            Value::U64(n) => Ok(format!("{key}={n}")),
            Value::I64(n) => Ok(format!("{key}={n}")),
            other => Err(format!(
                "params.{key}: expected a string or integer, got {other:?}"
            )),
        })
        .collect()
}

/// Parses one request line.
fn parse_request(line: &str) -> Result<Request, String> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| format!("request is not valid JSON: {e}"))?;
    let cmd = json_str(json_field(&value, "cmd")?)?;
    match cmd {
        "run" => {
            let ids = match json_opt_field(&value, "experiments") {
                None => ExperimentId::ALL.to_vec(),
                Some(list) => {
                    let names = json_array(list)?;
                    if names.is_empty() {
                        return Err("experiments: expected at least one id".to_string());
                    }
                    names
                        .iter()
                        .map(|v| ExperimentId::from_str(json_str(v)?))
                        .collect::<Result<Vec<_>, _>>()?
                }
            };
            Ok(Request::Run {
                ids,
                format: parse_format(&value)?,
            })
        }
        "sweep" => {
            let workload = json_str(json_field(&value, "workload")?)?.to_string();
            let sizes = json_array(json_field(&value, "sizes")?)?
                .iter()
                .map(json_u64)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Sweep {
                workload,
                sizes,
                params: parse_param_overrides(&value)?,
                format: parse_format(&value)?,
            })
        }
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown cmd '{other}' (known: run, sweep, stats, shutdown)"
        )),
    }
}

/// One response: a compact JSON header line, an optional raw payload, and
/// whether the server should stop after sending it.
struct Reply {
    header: Value,
    payload: Option<String>,
    shutdown: bool,
}

impl Reply {
    fn payload(cached: bool, body: String) -> Reply {
        Reply {
            header: Value::Object(vec![
                ("status".to_string(), Value::Str("ok".to_string())),
                ("cached".to_string(), Value::Bool(cached)),
                ("bytes".to_string(), Value::U64(body.len() as u64)),
            ]),
            payload: Some(body),
            shutdown: false,
        }
    }

    fn error(message: String) -> Reply {
        Reply {
            header: Value::Object(vec![
                ("status".to_string(), Value::Str("error".to_string())),
                ("error".to_string(), Value::Str(message)),
            ]),
            payload: None,
            shutdown: false,
        }
    }
}

/// Computes a `run` response body: per-experiment reports out of the cache
/// (or computed once under single-flight), rendered exactly as
/// `mojo-hpc run … --format …` prints them on stdout.
fn run_body(state: &ServeState, ids: &[ExperimentId], format: BodyFormat) -> Result<Reply, String> {
    let mut reports = Vec::with_capacity(ids.len());
    let mut all_cached = true;
    for id in ids {
        let key = format!("run:{}", id.as_str());
        let (value, from_cache) = get_or_compute(state, &key, || {
            Ok(CachedValue::Report(Arc::new(run_experiment(*id))))
        })?;
        all_cached &= from_cache;
        match value {
            CachedValue::Report(report) => reports.push(report),
            CachedValue::Rows(_) => return Err(format!("cache key '{key}' holds sweep rows")),
        }
    }
    let body = match format {
        BodyFormat::Json => {
            // The `render_json_array` bytes, built from the shared reports.
            let array = Value::Array(reports.iter().map(|r| r.to_json_value()).collect());
            let mut json = serde_json::to_string_pretty(&array).expect("reports serialise");
            json.push('\n');
            json
        }
        BodyFormat::Csv => reports
            .iter()
            .map(|r| format!("{}\n", r.render()))
            .collect(),
    };
    Ok(Reply::payload(all_cached, body))
}

/// Computes a `sweep` response body. Small sweeps run per-point on the
/// in-process pool with each point cached under its full `Params` encoding;
/// sweeps with at least `spill_threshold` points dispatch through the
/// launcher layer as one supervised fan-out, cached whole.
fn sweep_body(
    state: &ServeState,
    name: &str,
    sizes: &[u64],
    overrides: &[String],
    format: BodyFormat,
) -> Result<Reply, String> {
    let engine = workload::find(name).ok_or_else(|| {
        format!(
            "unknown workload '{name}' (known: {})",
            workload::known_names()
        )
    })?;
    let spec = SweepSpec::new(engine, overrides, sizes.to_vec()).map_err(|e| e.to_string())?;
    let threshold = state.config.spill_threshold;
    let (report, all_cached) = if threshold > 0 && spec.sizes.len() >= threshold {
        let key = format!(
            "sweep:{}:{}:{}",
            engine.name(),
            spec.base.encode(),
            spec.sizes
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let (value, from_cache) = get_or_compute(state, &key, || {
            spill_sweep(state, &spec).map(|report| CachedValue::Report(Arc::new(report)))
        })?;
        match value {
            CachedValue::Report(report) => (report, from_cache),
            CachedValue::Rows(_) => return Err(format!("cache key '{key}' holds sweep rows")),
        }
    } else {
        let mut outputs = Vec::with_capacity(spec.sizes.len());
        let mut all_cached = true;
        for &size in &spec.sizes {
            let point = spec.point(size).map_err(|e| e.to_string())?;
            let key = format!("point:{}:{}", engine.name(), point.encode());
            let (value, from_cache) = get_or_compute(state, &key, || {
                let output = engine.run(&point).map_err(|e| e.to_string())?;
                Ok(CachedValue::Rows(Arc::new(
                    output.measurements.iter().cloned().collect(),
                )))
            })?;
            all_cached &= from_cache;
            let rows = match value {
                CachedValue::Rows(rows) => rows,
                CachedValue::Report(_) => return Err(format!("cache key '{key}' holds a report")),
            };
            outputs.push(WorkloadOutput {
                params: point,
                measurements: rows.iter().cloned().collect(),
            });
        }
        (Arc::new(render_sweep(&spec, &outputs)), all_cached)
    };
    let body = match format {
        BodyFormat::Json => report.to_json_pretty(),
        BodyFormat::Csv => format!("{}\n", report.render()),
    };
    Ok(Reply::payload(all_cached, body))
}

/// Runs one sweep through the launcher layer: write a preset, fan the
/// points out over supervised worker subprocesses of this binary, and merge
/// the shard documents back into the byte-identical report.
fn spill_sweep(state: &ServeState, spec: &SweepSpec) -> Result<ExperimentReport, String> {
    state.spilled.fetch_add(1, Ordering::SeqCst);
    let scratch = state
        .config
        .scratch
        .clone()
        .unwrap_or_else(hpc_metrics::output::experiments_dir);
    let seq = state.spill_seq.fetch_add(1, Ordering::SeqCst);
    let preset = scratch.join(format!(
        ".mojo-hpc-serve-preset-{}-{seq}.json",
        std::process::id()
    ));
    spec.write_preset(&preset)
        .map_err(|e| format!("cannot write spill preset {}: {e}", preset.display()))?;
    let workers = state
        .config
        .spill_workers
        .min(spec.sizes.len() as u64)
        .max(1);
    let worker_args: Vec<Vec<String>> = (0..workers)
        .map(|index| {
            vec![
                "sweep".to_string(),
                "--preset".to_string(),
                preset.display().to_string(),
                "--shard".to_string(),
                format!("{index}/{workers}"),
            ]
        })
        .collect();
    let launchers: Vec<Box<dyn Launcher>> =
        vec![Box::new(LocalLauncher::current_exe(workers as usize)?)];
    let policy = DispatchPolicy {
        timeout: state.config.spill_timeout.map(Duration::from_secs_f64),
        ..DispatchPolicy::default()
    };
    let tasks = shard::worker_tasks(&worker_args);
    let result = dispatch::dispatch(&launchers, &tasks, &policy);
    std::fs::remove_file(&preset).ok();
    let (docs, summary) = result?;
    eprintln!("serve: spill dispatch: {}", summary.render());
    shard::merge_sweep(spec, &docs)
}

/// Builds the `stats` verb's counter tree.
fn stats_value(state: &ServeState) -> Value {
    let cache = lock(&state.cache);
    let cache_value = Value::Object(vec![
        ("entries".to_string(), Value::U64(cache.map.len() as u64)),
        ("bytes".to_string(), Value::U64(cache.bytes)),
        ("hits".to_string(), Value::U64(cache.hits)),
        ("misses".to_string(), Value::U64(cache.misses)),
        ("evictions".to_string(), Value::U64(cache.evictions)),
        ("inserts".to_string(), Value::U64(cache.inserts)),
        (
            "max_entries".to_string(),
            Value::U64(cache.max_entries as u64),
        ),
        ("max_bytes".to_string(), Value::U64(cache.max_bytes)),
    ]);
    drop(cache);
    let compute = Value::Object(vec![
        (
            "computed".to_string(),
            Value::U64(state.computed.load(Ordering::SeqCst)),
        ),
        (
            "coalesced".to_string(),
            Value::U64(state.coalesced.load(Ordering::SeqCst)),
        ),
        (
            "spilled".to_string(),
            Value::U64(state.spilled.load(Ordering::SeqCst)),
        ),
    ]);
    Value::Object(vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        (
            "stats".to_string(),
            Value::Object(vec![
                (
                    "requests".to_string(),
                    Value::U64(state.requests.load(Ordering::SeqCst)),
                ),
                (
                    "errors".to_string(),
                    Value::U64(state.errors.load(Ordering::SeqCst)),
                ),
                ("cache".to_string(), cache_value),
                ("compute".to_string(), compute),
                (
                    "pool".to_string(),
                    ShardPoolCounters::since(&state.pool_baseline).to_json_value(),
                ),
            ]),
        ),
    ])
}

/// Dispatches one parsed request.
fn respond(state: &ServeState, request: Request) -> Result<Reply, String> {
    match request {
        Request::Run { ids, format } => run_body(state, &ids, format),
        Request::Sweep {
            workload,
            sizes,
            params,
            format,
        } => sweep_body(state, &workload, &sizes, &params, format),
        Request::Stats => Ok(Reply {
            header: stats_value(state),
            payload: None,
            shutdown: false,
        }),
        Request::Shutdown => Ok(Reply {
            header: Value::Object(vec![
                ("status".to_string(), Value::Str("ok".to_string())),
                ("shutdown".to_string(), Value::Bool(true)),
            ]),
            payload: None,
            shutdown: true,
        }),
    }
}

/// Handles one request line, mapping every failure to an error reply.
fn handle_request(state: &ServeState, line: &str) -> Reply {
    state.requests.fetch_add(1, Ordering::SeqCst);
    match parse_request(line).and_then(|request| respond(state, request)) {
        Ok(reply) => reply,
        Err(message) => {
            state.errors.fetch_add(1, Ordering::SeqCst);
            Reply::error(message)
        }
    }
}

/// Serves one connection: read request lines, write header + payload per
/// request, until the peer hangs up (or asks for shutdown).
fn handle_connection(state: &ServeState, stream: TcpStream) {
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(e) => {
            eprintln!("serve: cannot clone connection: {e}");
            return;
        }
    };
    let mut reader = BufReader::new(reader);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("serve: read failed: {e}");
                break;
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_request(state, line.trim());
        let mut header = serde_json::to_string(&reply.header).expect("header serialises");
        header.push('\n');
        let write = writer
            .write_all(header.as_bytes())
            .and_then(|_| match &reply.payload {
                Some(body) => writer.write_all(body.as_bytes()),
                None => Ok(()),
            });
        if let Err(e) = write.and_then(|_| writer.flush()) {
            eprintln!("serve: write failed: {e}");
            break;
        }
        if reply.shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it observes the flag and stops.
            TcpStream::connect(state.addr).ok();
            break;
        }
    }
}

/// Runs the server until a `shutdown` request arrives. Binds `listen`,
/// announces the bound address on stderr (`serve: listening on ADDR` —
/// machine-parseable, and the only way to learn an ephemeral port), and
/// serves each connection on its own thread.
pub fn serve(config: &ServeConfig) -> Result<(), String> {
    let listener = TcpListener::bind(&config.listen)
        .map_err(|e| format!("serve: cannot bind {}: {e}", config.listen))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("serve: cannot read the bound address: {e}"))?;
    let state = Arc::new(ServeState::new(config.clone(), addr));
    eprintln!("serve: listening on {addr}");
    let mut connections: Vec<(std::thread::JoinHandle<()>, Option<TcpStream>)> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Keep a clone of the socket so shutdown can unblock a
                // handler parked in `read_line` on an idle connection.
                let peer = stream.try_clone().ok();
                let state = Arc::clone(&state);
                connections.push((
                    std::thread::spawn(move || {
                        handle_connection(&state, stream);
                    }),
                    peer,
                ));
            }
            Err(e) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                eprintln!("serve: accept failed: {e}");
            }
        }
        // Reap finished connection threads so a long-lived server's handle
        // list doesn't grow without bound.
        connections.retain(|(handle, _)| !handle.is_finished());
    }
    // Close the read side of every still-open connection *before* joining:
    // a handler blocked in `read_line` on an idle peer sees EOF and
    // returns, while one mid-computation still gets to write its response
    // (the write side stays open). Without this the join below deadlocks
    // against any client that keeps a connection open across shutdown.
    for (_, peer) in &connections {
        if let Some(peer) = peer {
            peer.shutdown(Shutdown::Read).ok();
        }
    }
    for (handle, _) in connections {
        handle.join().ok();
    }
    eprintln!(
        "serve: shut down after {} request(s)",
        state.requests.load(Ordering::SeqCst)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: &str, text_len: usize) -> CachedValue {
        let mut report = ExperimentReport::new(id, "t");
        report.push_line("x".repeat(text_len));
        CachedValue::Report(Arc::new(report))
    }

    #[test]
    fn cache_tracks_hits_misses_and_lru_eviction() {
        let mut cache = ResultCache::new(2, u64::MAX);
        assert!(cache.get("a").is_none());
        cache.insert("a", report("a", 10));
        cache.insert("b", report("b", 10));
        assert!(cache.get("a").is_some());
        // Capacity 2: inserting c evicts the LRU entry, which is b.
        cache.insert("c", report("c", 10));
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.evictions, 1);
        assert_eq!(cache.hits, 3);
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn cache_enforces_the_byte_budget() {
        let small = report("s", 10);
        let budget = small.cost() * 2 + 1;
        let mut cache = ResultCache::new(100, budget);
        cache.insert("a", report("s", 10));
        cache.insert("b", report("s", 10));
        assert_eq!(cache.evictions, 0);
        cache.insert("c", report("s", 10));
        assert_eq!(cache.evictions, 1, "third entry pushes bytes over budget");
        // A value larger than the whole budget evicts itself.
        cache.insert("huge", report("h", 10_000));
        assert!(cache.get("huge").is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0, u64::MAX);
        cache.insert("a", report("a", 10));
        assert!(cache.get("a").is_none());
        assert_eq!(cache.inserts, 0);
    }

    #[test]
    fn requests_parse_and_reject() {
        assert!(matches!(
            parse_request(r#"{"cmd":"run"}"#),
            Ok(Request::Run { ids, format: BodyFormat::Json }) if ids.len() == ExperimentId::ALL.len()
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"run","experiments":["table1"],"format":"csv"}"#),
            Ok(Request::Run { ids, format: BodyFormat::Csv }) if ids.len() == 1
        ));
        let sweep = parse_request(
            r#"{"cmd":"sweep","workload":"stencil","sizes":[16,24],"params":{"precision":"fp32"}}"#,
        );
        match sweep {
            Ok(Request::Sweep {
                workload,
                sizes,
                params,
                ..
            }) => {
                assert_eq!(workload, "stencil");
                assert_eq!(sizes, vec![16, 24]);
                assert_eq!(params, vec!["precision=fp32".to_string()]);
            }
            other => panic!("expected a sweep request, got {:?}", other.is_ok()),
        }
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"cmd":"launch-missiles"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"run","experiments":[]}"#).is_err());
        assert!(parse_request(r#"{"cmd":"run","experiments":["nope"]}"#).is_err());
        assert!(parse_request(r#"{"cmd":"sweep","workload":"stencil"}"#).is_err());
        assert!(
            parse_request(r#"{"cmd":"sweep","workload":"stencil","sizes":[8],"params":3}"#)
                .is_err()
        );
    }

    #[test]
    fn single_flight_coalesces_identical_requests() {
        let config = ServeConfig::new("127.0.0.1:0");
        let state = Arc::new(ServeState::new(
            config,
            "127.0.0.1:1".parse().expect("literal address"),
        ));
        let computations = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();
        for _ in 0..8 {
            let state = Arc::clone(&state);
            let computations = Arc::clone(&computations);
            threads.push(std::thread::spawn(move || {
                get_or_compute(&state, "k", || {
                    computations.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(50));
                    Ok(report("k", 10))
                })
                .expect("computation succeeds")
            }));
        }
        let mut cached = 0;
        for thread in threads {
            let (_, from_cache) = thread.join().expect("thread completes");
            if from_cache {
                cached += 1;
            }
        }
        // Threads that raced the in-flight window share one computation;
        // threads arriving after it completed hit the cache. Either way the
        // work ran at most... exactly once.
        assert_eq!(computations.load(Ordering::SeqCst), 1);
        assert_eq!(
            state.computed.load(Ordering::SeqCst),
            1,
            "one leader computed"
        );
        assert_eq!(
            state.coalesced.load(Ordering::SeqCst) + cached,
            7,
            "everyone else coalesced or hit the cache"
        );
        // A later identical request is a pure cache hit.
        let (_, from_cache) =
            get_or_compute(&state, "k", || panic!("must not recompute")).expect("cache hit");
        assert!(from_cache);
    }

    #[test]
    fn failed_computations_are_not_cached() {
        let config = ServeConfig::new("127.0.0.1:0");
        let state = ServeState::new(config, "127.0.0.1:1".parse().expect("literal address"));
        let err = get_or_compute(&state, "k", || Err("boom".to_string()));
        assert!(err.is_err());
        // The failure was not cached: the next request recomputes.
        let ok = get_or_compute(&state, "k", || Ok(report("k", 5)));
        assert!(ok.is_ok());
        assert_eq!(state.computed.load(Ordering::SeqCst), 2);
        // Panics surface as errors, not wedged flights.
        let panicked = get_or_compute(&state, "p", || panic!("kaboom"));
        assert!(panicked.is_err());
        assert!(lock(&state.flights).is_empty(), "no flight left behind");
    }
}
