//! Shared plumbing for the benchmark harness.
//!
//! Every bench target regenerates one paper table or figure (printing the
//! same rows/series the paper reports and exporting CSV under
//! `target/experiments/`), then runs a small Criterion measurement of the
//! underlying simulated-kernel driver so `cargo bench` also reports how long
//! the reproduction itself takes.

use experiment_report::{run_experiment, ExperimentId};

/// Regenerates one experiment, prints it, and writes its CSV files.
pub fn reproduce(id: ExperimentId) {
    let report = run_experiment(id);
    println!("{}", report.render());
    match report.write_csv_files() {
        Ok(paths) => {
            for path in paths {
                println!("  [csv] {}", path.display());
            }
        }
        Err(err) => eprintln!("  failed to write CSV for {}: {err}", report.id),
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduce_prints_without_panicking() {
        reproduce(ExperimentId::Table1);
    }
}
