//! Helium system generation: geometry, Gaussian basis, density matrix and
//! Schwarz screening factors.
//!
//! The proxy app ships helium test decks (`he64`, `he128`, `he256`, `he1024`)
//! that place helium atoms on a regular lattice and attach an s-type Gaussian
//! basis to each. This module regenerates those systems: atoms on a cubic
//! lattice with the configured spacing, STO-3G-like exponents/coefficients for
//! `ngauss = 3` and an extended even-tempered set for `ngauss = 6`.

use super::config::HartreeFockConfig;
use super::triangular::{pair_count, pair_decode};

/// STO-3G exponents for helium.
const HE_STO3G_EXPONENTS: [f64; 3] = [6.362_421_39, 1.158_923_0, 0.313_649_79];
/// STO-3G contraction coefficients for helium.
const HE_STO3G_COEFS: [f64; 3] = [0.154_328_97, 0.535_328_14, 0.444_634_54];

/// A generated helium system: geometry, basis, density matrix and Schwarz
/// factors, i.e. everything Listing 5's kernel reads.
#[derive(Debug, Clone)]
pub struct HeliumSystem {
    /// Number of atoms.
    pub natoms: usize,
    /// Gaussian primitives per atom.
    pub ngauss: usize,
    /// Atom positions, flattened `[x0, y0, z0, x1, …]` (Bohr).
    pub geometry: Vec<f64>,
    /// Gaussian exponents (length `ngauss`).
    pub xpnt: Vec<f64>,
    /// Gaussian contraction coefficients (length `ngauss`).
    pub coef: Vec<f64>,
    /// Density matrix, row-major `natoms × natoms`.
    pub dens: Vec<f64>,
    /// Schwarz screening factors per unique atom pair (length `npairs`).
    pub schwarz: Vec<f64>,
}

impl HeliumSystem {
    /// Generates the system for a configuration.
    pub fn generate(config: &HartreeFockConfig) -> Self {
        let natoms = config.natoms as usize;
        let ngauss = config.ngauss as usize;

        // Cubic lattice with the configured spacing.
        let side = (natoms as f64).cbrt().ceil() as usize;
        let mut geometry = Vec::with_capacity(natoms * 3);
        'fill: for ix in 0..side {
            for iy in 0..side {
                for iz in 0..side {
                    if geometry.len() / 3 >= natoms {
                        break 'fill;
                    }
                    geometry.push(ix as f64 * config.spacing);
                    geometry.push(iy as f64 * config.spacing);
                    geometry.push(iz as f64 * config.spacing);
                }
            }
        }

        let (xpnt, coef) = basis(ngauss);

        // A plausible closed-shell density: strong on the diagonal, decaying
        // off-diagonal (deterministic, so every implementation agrees).
        let mut dens = vec![0.0; natoms * natoms];
        for i in 0..natoms {
            for j in 0..natoms {
                dens[i * natoms + j] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            }
        }

        let mut system = HeliumSystem {
            natoms,
            ngauss,
            geometry,
            xpnt,
            coef,
            dens,
            schwarz: Vec::new(),
        };
        system.schwarz = system.compute_schwarz();
        system
    }

    /// Squared distance between atoms `i` and `j`.
    pub fn distance2(&self, i: usize, j: usize) -> f64 {
        let (xi, yi, zi) = (
            self.geometry[i * 3],
            self.geometry[i * 3 + 1],
            self.geometry[i * 3 + 2],
        );
        let (xj, yj, zj) = (
            self.geometry[j * 3],
            self.geometry[j * 3 + 1],
            self.geometry[j * 3 + 2],
        );
        (xi - xj).powi(2) + (yi - yj).powi(2) + (zi - zj).powi(2)
    }

    /// Squared distance between the charge centres of pairs `ij` and `kl`
    /// (approximated by the atom-pair midpoints, as the proxy kernel does for
    /// s-functions of equal exponents).
    pub fn pair_distance2(&self, ij: u64, kl: u64) -> f64 {
        let (i, j) = pair_decode(ij);
        let (k, l) = pair_decode(kl);
        let mid = |a: usize, b: usize, axis: usize| {
            0.5 * (self.geometry[a * 3 + axis] + self.geometry[b * 3 + axis])
        };
        let mut d2 = 0.0;
        for axis in 0..3 {
            let p = mid(i as usize, j as usize, axis);
            let q = mid(k as usize, l as usize, axis);
            d2 += (p - q) * (p - q);
        }
        d2
    }

    /// Schwarz factor of one atom pair: an upper bound on the magnitude any
    /// integral involving that pair can reach, decaying with the pair's
    /// separation.
    pub fn schwarz_factor(&self, i: usize, j: usize) -> f64 {
        let r2 = self.distance2(i, j);
        let mut s = 0.0;
        for a in 0..self.ngauss {
            for b in 0..self.ngauss {
                let aij = self.xpnt[a] + self.xpnt[b];
                s += self.coef[a] * self.coef[b] * (-self.xpnt[a] * self.xpnt[b] / aij * r2).exp()
                    / aij;
            }
        }
        s.sqrt()
    }

    fn compute_schwarz(&self) -> Vec<f64> {
        let npairs = pair_count(self.natoms as u64) as usize;
        let mut schwarz = vec![0.0; npairs];
        for (index, value) in schwarz.iter_mut().enumerate() {
            let (i, j) = pair_decode(index as u64);
            *value = self.schwarz_factor(i as usize, j as usize);
        }
        schwarz
    }
}

/// Exponents and coefficients for the helium basis with `ngauss` primitives.
pub fn basis(ngauss: usize) -> (Vec<f64>, Vec<f64>) {
    match ngauss {
        3 => (HE_STO3G_EXPONENTS.to_vec(), HE_STO3G_COEFS.to_vec()),
        6 => {
            // Even-tempered extension of the STO-3G set (the he1024 deck uses
            // a 6-primitive contraction).
            let xpnt = vec![38.36, 5.77, 1.24, 0.2976, 0.07255, 0.01789];
            let coef = vec![0.0238, 0.1549, 0.4699, 0.513, 0.1628, 0.0181];
            (xpnt, coef)
        }
        other => {
            // Geometric progression covering the same range for unusual counts.
            let xpnt: Vec<f64> = (0..other)
                .map(|g| 6.36 * (0.35f64).powi(g as i32))
                .collect();
            let coef = vec![1.0 / other as f64; other];
            (xpnt, coef)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_has_the_right_number_of_atoms_and_spacing() {
        let config = HartreeFockConfig::paper(64, 3);
        let sys = HeliumSystem::generate(&config);
        assert_eq!(sys.geometry.len(), 64 * 3);
        // Nearest-neighbour distance equals the configured spacing.
        let d2 = sys.distance2(0, 1);
        assert!((d2.sqrt() - config.spacing).abs() < 1e-12);
    }

    #[test]
    fn sto3g_basis_is_used_for_ngauss3() {
        let sys = HeliumSystem::generate(&HartreeFockConfig::paper(8, 3));
        assert_eq!(sys.xpnt.len(), 3);
        assert!((sys.xpnt[0] - 6.362_421_39).abs() < 1e-9);
        assert!((sys.coef[2] - 0.444_634_54).abs() < 1e-9);
        let (x6, c6) = basis(6);
        assert_eq!(x6.len(), 6);
        assert_eq!(c6.len(), 6);
        let (x2, _) = basis(2);
        assert_eq!(x2.len(), 2);
    }

    #[test]
    fn schwarz_decays_with_distance() {
        let sys = HeliumSystem::generate(&HartreeFockConfig::paper(27, 3));
        let near = sys.schwarz_factor(0, 0);
        let mid = sys.schwarz_factor(0, 1);
        let far = sys.schwarz_factor(0, 26);
        assert!(near > mid);
        assert!(mid > far);
        assert!(far >= 0.0);
    }

    #[test]
    fn schwarz_vector_covers_every_pair() {
        let config = HartreeFockConfig::validation(10);
        let sys = HeliumSystem::generate(&config);
        assert_eq!(sys.schwarz.len(), 55);
        assert!(sys.schwarz.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn density_matrix_is_symmetric_and_diagonal_dominant() {
        let sys = HeliumSystem::generate(&HartreeFockConfig::validation(6));
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(sys.dens[i * 6 + j], sys.dens[j * 6 + i]);
                assert!(sys.dens[i * 6 + i] >= sys.dens[i * 6 + j]);
            }
        }
    }

    #[test]
    fn pair_distance_is_zero_for_identical_pairs() {
        let sys = HeliumSystem::generate(&HartreeFockConfig::validation(8));
        assert_eq!(sys.pair_distance2(3, 3), 0.0);
        assert!(sys.pair_distance2(0, 5) > 0.0);
    }
}
