//! Property-based tests for the portable programming model's data structures.

use portable_kernel::prelude::*;
use proptest::prelude::*;

proptest! {
    // Cap the per-property case count so the tier-1 suite stays fast and
    // deterministic; override with PROPTEST_CASES for deeper soak runs.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Row-major 3-D offsets are a bijection onto 0..len and respect C order.
    fn layout_3d_offsets_are_a_bijection(d0 in 1usize..12, d1 in 1usize..12, d2 in 1usize..12) {
        let layout = Layout::row_major_3d(d0, d1, d2);
        let mut seen = vec![false; layout.len()];
        for i in 0..d0 {
            for j in 0..d1 {
                for k in 0..d2 {
                    let off = layout.offset_3d(i, j, k);
                    prop_assert!(off < layout.len());
                    prop_assert!(!seen[off], "offset {} hit twice", off);
                    seen[off] = true;
                    prop_assert_eq!(layout.delinearize_3d(off), (i, j, k));
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Whatever is written through a tensor view is read back identically,
    /// both through the view and through the underlying buffer.
    fn tensor_round_trips_host_data(values in proptest::collection::vec(-1e6f64..1e6, 1..256)) {
        let ctx = DeviceContext::new(gpu_spec::presets::test_device());
        let buffer = ctx.enqueue_create_buffer::<f64>(values.len()).unwrap();
        let tensor = LayoutTensor::new(buffer.clone(), Layout::row_major_1d(values.len())).unwrap();
        tensor.copy_from_host(&values).unwrap();
        prop_assert_eq!(tensor.to_host(), values.clone());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(buffer.read(i), *v);
        }
    }

    /// A fill-one kernel launched over any size/block combination writes every
    /// element exactly once (the Listing 1 pattern generalised).
    fn fill_kernel_covers_any_size(n in 1usize..5000, block in 1u32..256) {
        let ctx = DeviceContext::new(gpu_spec::presets::test_device());
        let tensor = LayoutTensor::new(
            ctx.enqueue_create_buffer::<f32>(n).unwrap(),
            Layout::row_major_1d(n),
        ).unwrap();
        let t = tensor.clone();
        ctx.enqueue_function(LaunchConfig::cover_1d(n as u64, block), move |c| {
            let tid = c.global_x() as usize;
            if tid < n {
                t.set(tid, t.get(tid) + 1.0);
            }
        }).unwrap();
        prop_assert!(tensor.to_host().iter().all(|&v| v == 1.0));
    }

    /// SIMD lane arithmetic matches scalar arithmetic lane by lane.
    fn simd_matches_scalar_semantics(a in proptest::array::uniform4(-1e3f32..1e3), b in proptest::array::uniform4(-1e3f32..1e3)) {
        let va = Simd::<4>::from_array(a);
        let vb = Simd::<4>::from_array(b);
        let sum = (va + vb).to_array();
        let prod = (va * vb).to_array();
        for i in 0..4 {
            prop_assert_eq!(sum[i], a[i] + b[i]);
            prop_assert_eq!(prod[i], a[i] * b[i]);
        }
        let reduced = va.reduce_add();
        prop_assert!((reduced - a.iter().sum::<f32>()).abs() <= 1e-3);
    }
}
