//! Bench target for Figure 2 — roofline placement of the four workloads.

use criterion::Criterion;
use experiment_report::ExperimentId;
use gpu_spec::Precision;
use science_kernels::stencil7::{self, StencilConfig};
use vendor_models::Platform;

fn bench(c: &mut Criterion) {
    let pool_before = bench::pool_snapshot();
    let mut group = c.benchmark_group("fig2");
    // The roofline points come from cost-model evaluations; measure one.
    group.bench_function("stencil_cost_and_timing", |b| {
        let platform = Platform::cuda_h100(false);
        let config = StencilConfig::paper(512, Precision::Fp64);
        b.iter(|| stencil7::run(&platform, &config).unwrap().seconds())
    });
    bench::record_pool_counters(&mut group, &pool_before);
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Fig2);
    let mut criterion = Criterion::default().sample_size(20).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
