//! Experiment output: CSV series and JSON manifests.
//!
//! The paper's artifact produces CSV files that its Python plotting scripts
//! consume; this module writes equivalent CSVs (plus JSON manifests, which are
//! easier to post-process) under `target/experiments/` so every bench leaves a
//! machine-readable record next to the human-readable console output.

use serde::Serialize;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple in-memory CSV table: a header row plus data rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CsvTable {
    /// Column names.
    pub header: Vec<String>,
    /// Data rows; each row must have `header.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        CsvTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length does not match the header.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Renders the table as CSV text (fields containing commas or quotes are
    /// quoted).
    pub fn to_csv_string(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the table to `path`, creating parent directories as needed.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut file = fs::File::create(path)?;
        file.write_all(self.to_csv_string().as_bytes())
    }
}

/// Default output directory for experiment artifacts
/// (`target/experiments/` relative to the workspace root or current dir).
pub fn experiments_dir() -> PathBuf {
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(base).join("experiments")
}

/// Writes any serialisable value as pretty JSON under the experiments
/// directory, returning the path written.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let path = experiments_dir().join(format!("{name}.json"));
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value).expect("value must serialise");
    fs::write(&path, json)?;
    Ok(path)
}

/// Writes a CSV table under the experiments directory, returning the path.
pub fn write_csv(name: &str, table: &CsvTable) -> std::io::Result<PathBuf> {
    let path = experiments_dir().join(format!("{name}.csv"));
    table.write_to(&path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_structure() {
        let mut t = CsvTable::new(["kernel", "backend", "bandwidth_gbs"]);
        t.push_row(["copy", "Mojo", "2657.2"]);
        t.push_row(["dot", "CUDA", "3200.0"]);
        let s = t.to_csv_string();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "kernel,backend,bandwidth_gbs");
        assert_eq!(lines[1], "copy,Mojo,2657.2");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = CsvTable::new(["label", "value"]);
        t.push_row(["a,b", "say \"hi\""]);
        let s = t.to_csv_string();
        assert!(s.contains("\"a,b\""));
        assert!(s.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn files_are_written_to_disk() {
        let dir = std::env::temp_dir().join("mojo-hpc-metrics-test");
        let path = dir.join("sample.csv");
        let mut t = CsvTable::new(["x"]);
        t.push_row(["1"]);
        t.write_to(&path).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x\n1"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn experiments_dir_is_under_target() {
        let dir = experiments_dir();
        assert!(dir.to_string_lossy().contains("experiments"));
    }
}
