//! miniBUDE GFLOP/s — the paper's Eq. (3).
//!
//! ```text
//! ops_workgroup = 28·PPWI + nligands·[2 + 18·PPWI + nproteins·(10 + 30·PPWI)]
//! total_ops     = ops_workgroup · poses / PPWI
//! GFLOP/s       = total_ops / kernel_time · 1e-9
//! ```
//!
//! The formula comes from the original miniBUDE baseline and counts the
//! floating-point work of the `fasten` kernel per work-group of PPWI poses.

use serde::{Deserialize, Serialize};

/// The problem sizes entering Eq. (3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiniBudeSizes {
    /// Number of ligand atoms (26 in the bm1 benchmark).
    pub nligands: u64,
    /// Number of protein atoms (938 in bm1).
    pub nproteins: u64,
    /// Total number of poses evaluated (65,536 in the paper's runs).
    pub poses: u64,
    /// Poses per work-item.
    pub ppwi: u64,
}

impl MiniBudeSizes {
    /// The bm1 benchmark deck used throughout the paper, with the given PPWI.
    pub fn bm1(ppwi: u64) -> Self {
        MiniBudeSizes {
            nligands: 26,
            nproteins: 938,
            poses: 65_536,
            ppwi,
        }
    }
}

/// Floating-point operations per work-group — the bracketed part of Eq. (3).
pub fn minibude_ops_per_workgroup(sizes: &MiniBudeSizes) -> u64 {
    28 * sizes.ppwi
        + sizes.nligands * (2 + 18 * sizes.ppwi + sizes.nproteins * (10 + 30 * sizes.ppwi))
}

/// Total floating-point operations for the whole run — Eq. (3).
pub fn minibude_total_ops(sizes: &MiniBudeSizes) -> u64 {
    minibude_ops_per_workgroup(sizes) * (sizes.poses / sizes.ppwi)
}

/// GFLOP/s achieved by a run that took `kernel_time_s` seconds — Eq. (3).
pub fn minibude_gflops(sizes: &MiniBudeSizes, kernel_time_s: f64) -> f64 {
    assert!(kernel_time_s > 0.0, "kernel time must be positive");
    minibude_total_ops(sizes) as f64 / kernel_time_s * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_formula_matches_eq3_by_hand() {
        // PPWI = 1: 28 + 26·(2 + 18 + 938·40) = 28 + 26·37540 = 976068.
        let sizes = MiniBudeSizes {
            nligands: 26,
            nproteins: 938,
            poses: 65_536,
            ppwi: 1,
        };
        assert_eq!(
            minibude_ops_per_workgroup(&sizes),
            28 + 26 * (2 + 18 + 938 * 40)
        );
        assert_eq!(
            minibude_total_ops(&sizes),
            minibude_ops_per_workgroup(&sizes) * 65_536
        );
    }

    #[test]
    fn total_ops_are_nearly_ppwi_independent() {
        // Eq. (3) divides poses by PPWI while ops/workgroup grows ~linearly in
        // PPWI, so the total is nearly constant — the dominant nproteins·30·PPWI
        // term cancels exactly.
        let t1 = minibude_total_ops(&MiniBudeSizes::bm1(1)) as f64;
        let t128 = minibude_total_ops(&MiniBudeSizes::bm1(128)) as f64;
        assert!((t1 / t128 - 1.0).abs() < 0.4, "t1={t1}, t128={t128}");
    }

    #[test]
    fn bm1_preset_matches_paper_parameters() {
        let s = MiniBudeSizes::bm1(4);
        assert_eq!(s.nligands, 26);
        assert_eq!(s.nproteins, 938);
        assert_eq!(s.poses, 65_536);
        assert_eq!(s.ppwi, 4);
    }

    #[test]
    fn gflops_scale_inversely_with_time() {
        let sizes = MiniBudeSizes::bm1(8);
        let slow = minibude_gflops(&sizes, 2e-3);
        let fast = minibude_gflops(&sizes, 1e-3);
        assert!((fast / slow - 2.0).abs() < 1e-12);
        // ~48 GFLOP of work in 1 ms ≈ 48 TFLOP/s order of magnitude.
        assert!(fast > 10_000.0 && fast < 100_000.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_time_panics() {
        minibude_gflops(&MiniBudeSizes::bm1(1), 0.0);
    }
}
