//! Figure 3 — seven-point stencil bandwidth, Mojo vs CUDA (H100) and
//! Mojo vs HIP (MI300A).

use super::support::{h100_pair, mi300a_pair, stencil_fom, RUNS_PER_CONFIG, STENCIL_JITTER};
use crate::registry::ExperimentId;
use crate::render::Series;
use crate::report::ExperimentReport;
use hpc_metrics::output::CsvTable;
use hpc_metrics::{stencil_bandwidth_gbs, RunStats};
use science_kernels::stencil7::{self, workload as stencil_workload, StencilConfig};
use vendor_models::Platform;

/// The problem sizes and precisions swept in Figure 3, decoded from the
/// registry's workload presets — the figure is the `stencil` scenario engine
/// run at four pinned parameter assignments.
pub fn configurations() -> Vec<StencilConfig> {
    ExperimentId::Fig3
        .spec()
        .workload
        .expect("fig3 measures the stencil workload")
        .resolve()
        .expect("fig3 presets validate")
        .iter()
        .map(|params| stencil_workload::config(params).expect("fig3 presets decode"))
        .collect()
}

/// Regenerates Figure 3 (both subfigures).
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig3",
        "Mojo vs CUDA/HIP seven-point stencil effective bandwidth (Eq. 1)",
    );
    let mut csv = CsvTable::new([
        "device",
        "backend",
        "L",
        "precision",
        "run",
        "bandwidth_gbs",
    ]);

    for (subfigure, (portable, vendor)) in
        [("(a) H100", h100_pair()), ("(b) MI300A", mi300a_pair())]
    {
        report.push_line(format!("Figure 3{subfigure}"));
        let mut series: Vec<Series> = Vec::new();
        for platform in [&portable, &vendor] {
            let mut s = Series::new(platform.backend.label());
            for config in configurations() {
                let run = stencil7::run(platform, &config).expect("stencil run");
                // Repeated jittered measurements (the paper plots the scatter
                // of at least 100 runs); the series carries the mean.
                let samples = run.sample_durations(RUNS_PER_CONFIG, STENCIL_JITTER, 2025);
                for (i, seconds) in samples.iter().enumerate() {
                    csv.push_row([
                        platform.spec.name.clone(),
                        platform.backend.label().to_string(),
                        format!("{}", config.l),
                        config.precision.label().to_string(),
                        format!("{i}"),
                        format!(
                            "{}",
                            stencil_bandwidth_gbs(config.l as u64, config.precision, *seconds)
                        ),
                    ]);
                }
                let stats = RunStats::from_samples(&samples);
                let mean_bw = stencil_bandwidth_gbs(config.l as u64, config.precision, stats.mean);
                s.push(
                    format!("L={} {}", config.l, config.precision.label()),
                    mean_bw,
                );
                // Spot figure of merit from the nominal run for the console text.
                let _ = stencil_fom(&run, &config);
            }
            series.push(s);
        }
        report.push_line(Series::render_group(&series, "GB/s", 40));
    }

    report.push_table("bandwidth_samples", csv);
    report
}

/// The portable-to-vendor mean bandwidth ratio for a given device pair,
/// problem size and precision (used by Table 5 and by tests).
pub fn efficiency(portable: &Platform, vendor: &Platform, config: &StencilConfig) -> f64 {
    let p = stencil7::run(portable, config).expect("portable stencil run");
    let v = stencil7::run(vendor, config).expect("vendor stencil run");
    stencil_fom(&p, config) / stencil_fom(&v, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;

    #[test]
    fn fig3_configurations_come_from_the_registry_presets() {
        let configs = configurations();
        assert_eq!(
            configs,
            vec![
                StencilConfig::paper(512, Precision::Fp32),
                StencilConfig::paper(512, Precision::Fp64),
                StencilConfig::paper(1024, Precision::Fp32),
                StencilConfig::paper(1024, Precision::Fp64),
            ]
        );
    }

    #[test]
    fn fig3_shows_the_87_percent_gap_on_h100_and_parity_on_mi300a() {
        let (mojo_h, cuda) = h100_pair();
        let fp64 = StencilConfig::paper(512, Precision::Fp64);
        let eff = efficiency(&mojo_h, &cuda, &fp64);
        assert!((eff - 0.87).abs() < 0.03, "H100 FP64 efficiency {eff}");

        let (mojo_m, hip) = mi300a_pair();
        let eff = efficiency(&mojo_m, &hip, &fp64);
        assert!((eff - 1.0).abs() < 0.02, "MI300A FP64 efficiency {eff}");
    }

    #[test]
    fn fig3_report_has_both_subfigures_and_scatter_data() {
        let report = run();
        assert!(report.text.contains("Figure 3(a) H100"));
        assert!(report.text.contains("Figure 3(b) MI300A"));
        assert!(report.text.contains("Mojo"));
        assert!(report.text.contains("CUDA"));
        assert!(report.text.contains("HIP"));
        // 2 devices × 2 backends × 4 configs × 100 runs of scatter rows.
        assert_eq!(report.tables[0].1.rows.len(), 2 * 2 * 4 * RUNS_PER_CONFIG);
    }
}
