//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal serialisation framework under the `serde`
//! package name. It is API-compatible with the subset of real serde the
//! workspace uses: `#[derive(Serialize, Deserialize)]` on non-generic structs
//! with named fields and on enums with unit or struct variants, plus the
//! primitive / `String` / `Option` / `Vec` impls those derives need.
//!
//! Values serialise into a [`value::Value`] tree; `serde_json` (also vendored)
//! renders that tree as JSON and parses JSON back into it. The external JSON
//! representation matches real serde's defaults (unit enum variants as
//! strings, struct variants externally tagged), so swapping the real crates
//! back in later is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{Error, Value};

/// Types that can serialise themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if (*self as i128) < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("integer {n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("integer {n} out of range"))),
                    Value::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::new(format!("expected integer, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::new(format!("expected float, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|items: Vec<T>| {
            Error::new(format!("expected {N} elements, found {}", items.len()))
        })
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

/// Support routines used by the generated derive code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up and deserialises one named field of an object value.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v {
            Value::Object(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, inner)) => T::from_value(inner),
                None => T::from_value(&Value::Null)
                    .map_err(|_| Error::new(format!("missing field `{name}`"))),
            },
            other => Err(Error::new(format!("expected object, found {other:?}"))),
        }
    }

    /// Extracts the variant tag of an enum value: either a bare string (unit
    /// variant) or the single key of an externally tagged object.
    pub fn variant_tag(v: &Value) -> Result<(&str, &Value), Error> {
        match v {
            Value::Str(s) => Ok((s.as_str(), &Value::Null)),
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            other => Err(Error::new(format!("expected enum value, found {other:?}"))),
        }
    }
}
