//! Thread-local scratch arena for per-block executor buffers.
//!
//! The cooperative engine needs three scratch allocations per simulated block
//! (shared memory, per-thread register state, completion flags). Allocating
//! them with `vec!` per block puts the allocator on the hot path of every
//! launch; this arena recycles the backing storage per worker thread instead.
//! Buffers are keyed by element type and handed out empty (length 0, capacity
//! preserved), so a chunk of blocks reuses one allocation for all its blocks.
//!
//! Nesting is supported: taking a second buffer of the same type while one is
//! outstanding simply allocates a fresh vector (the arena keeps a stack per
//! type). If the closure panics the buffer is dropped rather than recycled,
//! which keeps the arena state trivially correct.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

thread_local! {
    /// Recycled buffers of this thread, a stack of `Vec<T>` per element type.
    static ARENA: RefCell<HashMap<TypeId, Vec<Box<dyn Any>>>> =
        RefCell::new(HashMap::new());
}

/// Runs `f` with a recycled (empty, possibly pre-allocated) `Vec<T>`; the
/// vector's storage is returned to this thread's arena afterwards.
pub fn with_scratch<T: 'static + Send, R>(f: impl FnOnce(&mut Vec<T>) -> R) -> R {
    let mut buffer: Vec<T> = ARENA
        .with(|arena| {
            arena
                .borrow_mut()
                .get_mut(&TypeId::of::<Vec<T>>())
                .and_then(|stack| stack.pop())
        })
        .map(|boxed| *boxed.downcast::<Vec<T>>().expect("arena type key mismatch"))
        .unwrap_or_default();

    let result = f(&mut buffer);

    buffer.clear();
    ARENA.with(|arena| {
        arena
            .borrow_mut()
            .entry(TypeId::of::<Vec<T>>())
            .or_default()
            .push(Box::new(buffer));
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_recycled_with_capacity() {
        let ptr = with_scratch::<u64, _>(|buf| {
            buf.resize(4096, 0);
            buf.as_ptr() as usize
        });
        // The very next borrow of the same type reuses the allocation.
        let (ptr2, len) = with_scratch::<u64, _>(|buf| {
            assert!(buf.is_empty(), "recycled buffers are handed out empty");
            assert!(buf.capacity() >= 4096);
            buf.push(7);
            (buf.as_ptr() as usize, buf.len())
        });
        assert_eq!(ptr, ptr2);
        assert_eq!(len, 1);
    }

    #[test]
    fn nested_borrows_of_the_same_type_get_distinct_buffers() {
        with_scratch::<f64, _>(|outer| {
            outer.push(1.0);
            with_scratch::<f64, _>(|inner| {
                inner.push(2.0);
                assert_ne!(outer.as_ptr(), inner.as_ptr());
            });
            assert_eq!(outer.len(), 1);
        });
    }

    #[test]
    fn distinct_types_do_not_collide() {
        with_scratch::<u8, _>(|bytes| {
            bytes.resize(16, 0xAB);
            with_scratch::<f32, _>(|floats| {
                floats.resize(16, 1.5);
                assert!(floats.iter().all(|&v| v == 1.5));
            });
            assert!(bytes.iter().all(|&v| v == 0xAB));
        });
    }
}
