//! Integration tests of the `mojo-hpc` command-line interface: subcommand
//! coverage, exit codes and error messages, through the real binary.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn mojo_hpc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mojo-hpc"))
        .args(args)
        .output()
        .expect("run mojo-hpc")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("cli-scratch")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn list_names_every_registry_entry() {
    let output = mojo_hpc(&["list"]);
    assert_eq!(output.status.code(), Some(0));
    let text = stdout(&output);
    for id in [
        "table1", "fig2", "fig3", "table2", "fig4", "table3", "fig5", "fig6", "fig7", "table4",
        "table5",
    ] {
        assert!(
            text.lines().any(|line| line.starts_with(id)),
            "list output missing {id}:\n{text}"
        );
    }
    assert_eq!(text.lines().count(), 11);
}

#[test]
fn run_unknown_experiment_fails_helpfully() {
    let output = mojo_hpc(&["run", "table9"]);
    assert_eq!(output.status.code(), Some(2));
    let err = stderr(&output);
    assert!(
        err.contains("table9"),
        "stderr should name the bad id: {err}"
    );
    assert!(
        err.contains("known ids") && err.contains("table5"),
        "stderr should list the known ids: {err}"
    );
}

#[test]
fn run_without_arguments_is_a_usage_error() {
    let output = mojo_hpc(&["run"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("--all"));
}

#[test]
fn run_single_experiment_renders_and_writes_csv() {
    let out = scratch("run-single");
    let output = mojo_hpc(&["run", "table1", "--out", out.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(0));
    assert!(stdout(&output).contains("=== table1"));
    assert!(out.join("table1_hardware.csv").exists());
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn diff_identical_dirs_exits_zero_and_mutation_names_the_row() {
    let dir_a = scratch("diff-a");
    let dir_b = scratch("diff-b");
    let csv = "kernel,backend\ncopy,Mojo\ndot,CUDA\n";
    std::fs::write(dir_a.join("t.csv"), csv).unwrap();
    std::fs::write(dir_b.join("t.csv"), csv).unwrap();

    let same = mojo_hpc(&["diff", dir_a.to_str().unwrap(), dir_b.to_str().unwrap()]);
    assert_eq!(same.status.code(), Some(0));

    // Mutate row 2 (0-based: the "dot" data row) and expect it named.
    std::fs::write(dir_b.join("t.csv"), "kernel,backend\ncopy,Mojo\ndot,HIP\n").unwrap();
    let changed = mojo_hpc(&["diff", dir_a.to_str().unwrap(), dir_b.to_str().unwrap()]);
    assert_eq!(changed.status.code(), Some(1));
    let text = stdout(&changed);
    assert!(text.contains("t.csv: row 2 differs"), "diff output: {text}");
    assert!(text.contains("dot,CUDA") && text.contains("dot,HIP"));

    // A file present on only one side is also a difference.
    std::fs::write(dir_b.join("t.csv"), csv).unwrap();
    std::fs::write(dir_b.join("extra.csv"), "h\n").unwrap();
    let extra = mojo_hpc(&["diff", dir_a.to_str().unwrap(), dir_b.to_str().unwrap()]);
    assert_eq!(extra.status.code(), Some(1));
    assert!(stdout(&extra).contains("extra.csv: only in"));

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn diff_on_a_missing_directory_is_a_usage_error() {
    let output = mojo_hpc(&["diff", "/nonexistent/a", "/nonexistent/b"]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn bench_diff_tolerates_a_missing_group() {
    let dir = scratch("bench-diff");
    let record = |group: &str, mean: f64| {
        format!(
            r#"{{"group": "{group}", "benchmarks": [{{"id": "x", "samples": 1, "mean_ns": {mean}, "min_ns": 1, "max_ns": 2, "throughput": null}}]}}"#
        )
    };
    std::fs::write(dir.join("a.json"), record("shared", 100.0)).unwrap();
    std::fs::write(dir.join("b.json"), record("shared", 150.0)).unwrap();
    let a_dir = dir.join("a-set");
    let b_dir = dir.join("b-set");
    std::fs::create_dir_all(&a_dir).unwrap();
    std::fs::create_dir_all(&b_dir).unwrap();
    std::fs::write(a_dir.join("shared.json"), record("shared", 100.0)).unwrap();
    std::fs::write(a_dir.join("gone.json"), record("gone", 50.0)).unwrap();
    std::fs::write(b_dir.join("shared.json"), record("shared", 150.0)).unwrap();
    std::fs::write(b_dir.join("fresh.json"), record("fresh", 25.0)).unwrap();

    let files = mojo_hpc(&[
        "bench-diff",
        dir.join("a.json").to_str().unwrap(),
        dir.join("b.json").to_str().unwrap(),
    ]);
    assert_eq!(files.status.code(), Some(0));
    assert!(stdout(&files).contains("+50.0%"), "{}", stdout(&files));

    let dirs = mojo_hpc(&[
        "bench-diff",
        a_dir.to_str().unwrap(),
        b_dir.to_str().unwrap(),
    ]);
    assert_eq!(dirs.status.code(), Some(0));
    let text = stdout(&dirs);
    assert!(text.contains("gone: removed"), "{text}");
    assert!(text.contains("fresh: added"), "{text}");

    let bad = mojo_hpc(&["bench-diff", "/nonexistent.json", "/nonexistent.json"]);
    assert_eq!(bad.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sampled_hartree_fock_runs_beyond_the_full_validation_limit() {
    let out = scratch("hf-sampled");
    let output = mojo_hpc(&[
        "run",
        "hartree-fock",
        "--atoms",
        "128",
        "--sample",
        "128",
        "--shards",
        "4",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("natoms = 128"));
    assert!(text.contains("survivors: exact"));
    assert!(out.join("hartree_fock_sampled_128_shards.csv").exists());
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn help_prints_usage_and_unknown_subcommands_fail() {
    let help = mojo_hpc(&["help"]);
    assert_eq!(help.status.code(), Some(0));
    assert!(stdout(&help).contains("USAGE"));
    let unknown = mojo_hpc(&["frobnicate"]);
    assert_eq!(unknown.status.code(), Some(2));
    assert!(stderr(&unknown).contains("USAGE"));
    let none = mojo_hpc(&[]);
    assert_eq!(none.status.code(), Some(2));
}
