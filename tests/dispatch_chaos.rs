//! Fault-injection tests of the shard dispatcher, through the real binary
//! (DESIGN.md §12): with crash, hang, garbled-output and slow-straggler
//! workers injected via `MOJO_HPC_CHAOS`, `shard run --all --workers 3`
//! must retry/re-shard/speculate its way to stdout and files byte-identical
//! to the committed goldens — and with retries exhausted it must exit 1
//! naming the failed shard, its attempt count and the worker's stderr tail,
//! without writing any partial files.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::Instant;

fn mojo_hpc_env(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mojo-hpc"));
    cmd.args(args);
    for (key, value) in env {
        cmd.env(key, value);
    }
    cmd.output().expect("run mojo-hpc")
}

fn mojo_hpc(args: &[&str]) -> Output {
    mojo_hpc_env(args, &[])
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("dispatch-chaos-scratch")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The single-process `run --all --format json` stdout — the byte-identity
/// baseline every recovering chaos run must reproduce.
fn single_process_baseline() -> String {
    let single = mojo_hpc(&["run", "--all", "--format", "json"]);
    assert_eq!(single.status.code(), Some(0), "{}", stderr(&single));
    stdout(&single)
}

/// Runs `shard run --all --workers 3 --format json` under `chaos` with
/// `extra` coordinator flags, asserting it recovers: exit 0, stdout
/// byte-identical to the single-process run, files byte-identical to the
/// committed goldens.
fn assert_recovers(tag: &str, chaos: &str, extra: &[&str]) -> Output {
    let out_dir = scratch(tag);
    let mut args = vec![
        "shard",
        "run",
        "--all",
        "--workers",
        "3",
        "--format",
        "json",
        "--out",
        out_dir.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let sharded = mojo_hpc_env(&args, &[("MOJO_HPC_CHAOS", chaos)]);
    assert_eq!(
        sharded.status.code(),
        Some(0),
        "chaos '{chaos}' did not recover: {}",
        stderr(&sharded)
    );
    assert_eq!(
        stdout(&sharded),
        single_process_baseline(),
        "chaos '{chaos}' recovered to different stdout"
    );
    let golden = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/json");
    let diff = mojo_hpc(&["diff", golden.to_str().unwrap(), out_dir.to_str().unwrap()]);
    assert_eq!(
        diff.status.code(),
        Some(0),
        "chaos '{chaos}' files differ from goldens: {}",
        stdout(&diff)
    );
    std::fs::remove_dir_all(&out_dir).ok();
    sharded
}

#[test]
fn crashed_worker_is_retried_to_byte_identical_goldens() {
    let output = assert_recovers("crash", "crash:1", &[]);
    let diag = stderr(&output);
    assert!(diag.contains("1 retried"), "{diag}");
}

#[test]
fn hung_worker_is_timeout_reaped_and_retried() {
    // 10 s: generous enough for a debug-profile worker's real work on a
    // loaded machine, while still reaping the infinite hang promptly.
    let output = assert_recovers("hang", "hang:0", &["--timeout", "10"]);
    let diag = stderr(&output);
    assert!(diag.contains("1 timed out"), "{diag}");
    assert!(diag.contains("1 retried"), "{diag}");
}

#[test]
fn garbled_worker_output_is_caught_and_retried() {
    let output = assert_recovers("garble", "garble:2", &[]);
    let diag = stderr(&output);
    assert!(diag.contains("1 retried"), "{diag}");
}

#[test]
fn slow_straggler_is_speculated_and_the_loser_reaped() {
    // Shard 1 sleeps 30 s on its first attempt; the speculative duplicate
    // (attempt 2, chaos-free) must win long before that.
    let started = Instant::now();
    let out_dir = scratch("speculate");
    let sharded = mojo_hpc_env(
        &[
            "shard",
            "run",
            "--all",
            "--workers",
            "3",
            "--format",
            "json",
            "--speculate",
            "--out",
            out_dir.to_str().unwrap(),
        ],
        &[
            ("MOJO_HPC_CHAOS", "slow:1"),
            ("MOJO_HPC_CHAOS_SLOW_MS", "30000"),
        ],
    );
    let elapsed = started.elapsed();
    assert_eq!(sharded.status.code(), Some(0), "{}", stderr(&sharded));
    assert_eq!(stdout(&sharded), single_process_baseline());
    // Exactly how many duplicates fire depends on timing; what matters is
    // that at least one did and its loser was reaped.
    let diag = stderr(&sharded);
    assert!(diag.contains("speculative"), "{diag}");
    assert!(!diag.contains("0 speculative"), "{diag}");
    assert!(!diag.contains("0 reaped"), "{diag}");
    assert!(
        elapsed.as_secs() < 25,
        "speculation should beat the 30 s straggler, took {elapsed:?}"
    );
    let golden = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/json");
    let diff = mojo_hpc(&["diff", golden.to_str().unwrap(), out_dir.to_str().unwrap()]);
    assert_eq!(diff.status.code(), Some(0), "{}", stdout(&diff));
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn exhausted_retries_fail_loudly_with_shard_attempts_and_stderr_tail() {
    let out_dir = scratch("exhausted");
    std::fs::remove_dir_all(&out_dir).ok(); // must stay unwritten
    let sharded = mojo_hpc_env(
        &[
            "shard",
            "run",
            "--all",
            "--workers",
            "3",
            "--format",
            "json",
            "--max-attempts",
            "2",
            "--out",
            out_dir.to_str().unwrap(),
        ],
        &[("MOJO_HPC_CHAOS", "crash:1:*")],
    );
    assert_eq!(sharded.status.code(), Some(1), "{}", stderr(&sharded));
    let diag = stderr(&sharded);
    assert!(diag.contains("shard 1/3"), "names the failed shard: {diag}");
    assert!(diag.contains("2 attempt(s)"), "names the attempts: {diag}");
    assert!(diag.contains("stderr tail"), "quotes worker stderr: {diag}");
    assert!(
        diag.contains("chaos: injecting crash into shard 1"),
        "the tail carries the worker's own words: {diag}"
    );
    assert!(stdout(&sharded).is_empty(), "no partial stdout on failure");
    assert!(
        !out_dir.exists() || std::fs::read_dir(&out_dir).unwrap().next().is_none(),
        "no partial files on failure"
    );
}

#[test]
fn exhausted_timeouts_quote_the_hung_workers_stderr_tail() {
    // A hung worker is killed by the timeout, but its drained stderr must
    // survive the kill: the failure report quotes the chaos notice the
    // worker printed before it stopped responding. (The timeout-kill path
    // used to discard the tail entirely.)
    let out_dir = scratch("hang-exhausted");
    std::fs::remove_dir_all(&out_dir).ok(); // must stay unwritten
    let sharded = mojo_hpc_env(
        &[
            "shard",
            "run",
            "--all",
            "--workers",
            "3",
            "--format",
            "json",
            "--timeout",
            "5",
            "--max-attempts",
            "1",
            "--out",
            out_dir.to_str().unwrap(),
        ],
        &[("MOJO_HPC_CHAOS", "hang:0:*")],
    );
    assert_eq!(sharded.status.code(), Some(1), "{}", stderr(&sharded));
    let diag = stderr(&sharded);
    assert!(diag.contains("shard 0/3"), "names the hung shard: {diag}");
    assert!(diag.contains("timed out"), "names the timeout: {diag}");
    assert!(diag.contains("stderr tail"), "quotes worker stderr: {diag}");
    assert!(
        diag.contains("chaos: injecting hang into shard 0"),
        "the timeout kill must preserve the hung worker's last words: {diag}"
    );
    assert!(
        !out_dir.exists() || std::fs::read_dir(&out_dir).unwrap().next().is_none(),
        "no partial files on failure"
    );
}

#[test]
fn garbled_attempts_relay_live_per_attempt_stderr_tails_in_order() {
    // Shard 1 garbles its first two attempts and recovers on the third.
    // The recovered run still relays each failed attempt's diagnostics
    // live, in attempt order — without the live notices a retried-and-
    // recovered run would swallow them entirely (the full failure report
    // only renders when the whole dispatch fails).
    let output = assert_recovers("garble-recover", "garble:1:2", &[]);
    let diag = stderr(&output);
    assert!(diag.contains("2 retried"), "{diag}");
    let first = diag
        .find("dispatch: shard 1/3 attempt 1")
        .unwrap_or_else(|| panic!("attempt 1 notice missing: {diag}"));
    let second = diag
        .find("dispatch: shard 1/3 attempt 2")
        .unwrap_or_else(|| panic!("attempt 2 notice missing: {diag}"));
    assert!(first < second, "notices out of attempt order: {diag}");
    assert!(
        diag.contains("chaos: injecting garble into shard 1 (attempt 1)"),
        "attempt 1's own stderr tail must be relayed: {diag}"
    );
    assert!(
        diag.contains("chaos: injecting garble into shard 1 (attempt 2)"),
        "attempt 2's own stderr tail must be relayed: {diag}"
    );
}

/// Live threads of this process, per `/proc/self/task`.
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").unwrap().count()
}

/// Direct children of this process currently in Z (zombie) state.
#[cfg(target_os = "linux")]
fn zombie_children() -> Vec<u32> {
    let me = std::process::id();
    let mut zombies = Vec::new();
    for entry in std::fs::read_dir("/proc").unwrap().flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // Fields after the parenthesised comm: state, then ppid.
        let Some(rest) = stat.rsplit(')').next() else {
            continue;
        };
        let mut fields = rest.split_whitespace();
        let state = fields.next().unwrap_or("");
        let ppid: u32 = fields.next().and_then(|p| p.parse().ok()).unwrap_or(0);
        if ppid == me && state == "Z" {
            zombies.push(pid);
        }
    }
    zombies
}

#[test]
#[cfg(target_os = "linux")]
fn repeated_timeout_kills_leak_no_zombies_or_drain_threads() {
    // Drives the dispatcher in-process so this test's own /proc entries
    // witness the cleanup: every timeout-killed worker must be wait()ed
    // (no zombie children) and both pipe-drain threads joined (stable
    // thread count), round after round.
    use experiment_report::dispatch::{dispatch, DispatchPolicy, Launcher, WorkerTask};
    use std::time::Duration;

    struct ChaosLocal;
    impl Launcher for ChaosLocal {
        fn describe(&self) -> String {
            "chaos-local".to_string()
        }
        fn slots(&self) -> usize {
            1
        }
        fn command(&self, task: &WorkerTask) -> Command {
            let mut cmd = Command::new(env!("CARGO_BIN_EXE_mojo-hpc"));
            cmd.args(&task.args).env("MOJO_HPC_CHAOS", "hang:0:*");
            cmd
        }
    }

    let launchers: Vec<Box<dyn Launcher>> = vec![Box::new(ChaosLocal)];
    let tasks = vec![WorkerTask {
        shard: 0,
        shards: 1,
        args: vec![
            "run".to_string(),
            "table1".to_string(),
            "--shard".to_string(),
            "0/1".to_string(),
        ],
    }];
    let policy = DispatchPolicy {
        max_attempts: 2,
        timeout: Some(Duration::from_secs(1)),
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(10),
        ..DispatchPolicy::default()
    };

    // Warm-up round so lazily-created runtime threads don't skew the
    // baseline taken below.
    assert!(dispatch(&launchers, &tasks, &policy).is_err());
    let threads_before = thread_count();
    for round in 0..3 {
        assert!(
            dispatch(&launchers, &tasks, &policy).is_err(),
            "round {round}: every attempt hangs, the dispatch must fail"
        );
        // A concurrently-running test's child may be transiently zombie
        // between its exit and the harness's wait(); only a *persistent*
        // zombie is a leak.
        let mut zombies = zombie_children();
        for _ in 0..20 {
            if zombies.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
            zombies = zombie_children();
        }
        assert!(
            zombies.is_empty(),
            "round {round}: leaked zombies {zombies:?}"
        );
    }
    let threads_after = thread_count();
    // Six timeout kills happened since the baseline; leaking the two
    // pipe-drain threads per kill would add 12 threads. The slack only
    // absorbs unrelated harness threads scheduling other tests.
    assert!(
        threads_after <= threads_before + 4,
        "drain threads leaked: {threads_before} -> {threads_after}"
    );
}

#[test]
fn max_attempts_0_degrades_gracefully_naming_completed_ranges() {
    let out_dir = scratch("degraded");
    std::fs::remove_dir_all(&out_dir).ok();
    let sharded = mojo_hpc_env(
        &[
            "shard",
            "run",
            "--all",
            "--workers",
            "3",
            "--format",
            "json",
            "--max-attempts",
            "0",
            "--out",
            out_dir.to_str().unwrap(),
        ],
        &[("MOJO_HPC_CHAOS", "crash:0:*")],
    );
    assert_eq!(sharded.status.code(), Some(1), "{}", stderr(&sharded));
    let diag = stderr(&sharded);
    assert!(diag.contains("shard 0/3"), "{diag}");
    assert!(diag.contains("1 attempt(s)"), "single attempt only: {diag}");
    assert!(
        diag.contains("completed before failure"),
        "reports surviving ranges: {diag}"
    );
    assert!(
        diag.contains("shard 1/3 (items") || diag.contains("shard 2/3 (items"),
        "names the completed ranges: {diag}"
    );
    assert!(
        !out_dir.exists() || std::fs::read_dir(&out_dir).unwrap().next().is_none(),
        "no partial files on failure"
    );
}

#[test]
fn malformed_chaos_specs_fail_loudly_instead_of_running_clean() {
    let sharded = mojo_hpc_env(
        &[
            "shard",
            "run",
            "table1",
            "fig5",
            "--workers",
            "2",
            "--max-attempts",
            "1",
            "--format",
            "json",
        ],
        &[("MOJO_HPC_CHAOS", "explode:1")],
    );
    assert_eq!(sharded.status.code(), Some(1), "{}", stderr(&sharded));
    assert!(
        stderr(&sharded).contains("MOJO_HPC_CHAOS"),
        "names the bad spec: {}",
        stderr(&sharded)
    );
}

#[test]
fn template_launcher_runs_workers_through_a_host_manifest() {
    let out_dir = scratch("template");
    let hosts = out_dir.join("hosts.json");
    // A {exe}-only template: same binary, but placed through the manifest
    // lane — proving template expansion end to end without needing ssh.
    std::fs::write(
        &hosts,
        "{\"schema\": 1, \"template\": [\"{exe}\"], \
         \"hosts\": [{\"name\": \"localhost\", \"slots\": 4}]}\n",
    )
    .unwrap();
    let sharded = mojo_hpc(&[
        "shard",
        "run",
        "--all",
        "--workers",
        "3",
        "--launcher",
        "template",
        "--hosts",
        hosts.to_str().unwrap(),
        "--format",
        "json",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert_eq!(sharded.status.code(), Some(0), "{}", stderr(&sharded));
    assert_eq!(stdout(&sharded), single_process_baseline());
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn replay_manifest_merges_precomputed_shard_documents() {
    // The SLURM collect-and-merge shape: workers ran elsewhere, their
    // documents sit in files, and a `cat shard_{shard}.json` template
    // replays them into the byte-identical merged output.
    let out_dir = scratch("replay");
    for index in 0..2 {
        let worker = mojo_hpc(&["run", "table1", "fig5", "--shard", &format!("{index}/2")]);
        assert_eq!(worker.status.code(), Some(0), "{}", stderr(&worker));
        std::fs::write(out_dir.join(format!("shard_{index}.json")), worker.stdout).unwrap();
    }
    let manifest = out_dir.join("replay.json");
    std::fs::write(
        &manifest,
        format!(
            "{{\"schema\": 1, \"template\": [\"cat\", \"{}/shard_{{shard}}.json\"], \
             \"hosts\": [{{\"name\": \"replay\", \"slots\": 2}}]}}\n",
            out_dir.display()
        ),
    )
    .unwrap();
    let merged = mojo_hpc(&[
        "shard",
        "run",
        "table1",
        "fig5",
        "--workers",
        "2",
        "--launcher",
        "template",
        "--hosts",
        manifest.to_str().unwrap(),
        "--format",
        "json",
        "--out",
        out_dir.join("merged").to_str().unwrap(),
    ]);
    assert_eq!(merged.status.code(), Some(0), "{}", stderr(&merged));
    let single = mojo_hpc(&["run", "table1", "fig5", "--format", "json"]);
    assert_eq!(stdout(&merged), stdout(&single));
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn slurm_launcher_generates_a_job_array_script() {
    let out_dir = scratch("slurm");
    let sharded = mojo_hpc(&[
        "shard",
        "run",
        "--all",
        "--workers",
        "4",
        "--launcher",
        "slurm",
        "--format",
        "json",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert_eq!(sharded.status.code(), Some(0), "{}", stderr(&sharded));
    assert!(
        stdout(&sharded).is_empty(),
        "the slurm lane generates, it does not run"
    );
    let script = std::fs::read_to_string(out_dir.join("slurm_job_array.sbatch")).unwrap();
    assert!(script.starts_with("#!/bin/bash"), "{script}");
    assert!(script.contains("#SBATCH --array=0-3"), "{script}");
    assert!(
        script.contains("--shard \"${SLURM_ARRAY_TASK_ID}/4\""),
        "{script}"
    );
    assert!(
        script.contains("> \"shard_${SLURM_ARRAY_TASK_ID}.json\""),
        "{script}"
    );
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn coordinator_reports_fleet_pool_telemetry_on_stderr() {
    // The sweep lane exercises the buffer pool, so the coordinator must
    // accumulate the workers' embedded counters into one stderr line —
    // while stdout stays byte-identical to the single-process sweep.
    let single = mojo_hpc(&["sweep", "stencil", "--sizes", "16,20", "--format", "json"]);
    let sharded = mojo_hpc(&[
        "shard",
        "sweep",
        "stencil",
        "--sizes",
        "16,20",
        "--workers",
        "2",
        "--format",
        "json",
    ]);
    assert_eq!(sharded.status.code(), Some(0), "{}", stderr(&sharded));
    assert_eq!(stdout(&sharded), stdout(&single));
    let diag = stderr(&sharded);
    assert!(diag.contains("pool: 2 worker(s)"), "{diag}");
    assert!(diag.contains("hit rate"), "{diag}");
}

#[test]
fn dispatcher_flag_combinations_are_validated_at_parse_time() {
    for line in [
        vec![
            "shard",
            "run",
            "--all",
            "--workers",
            "2",
            "--launcher",
            "warp",
        ],
        vec![
            "shard",
            "run",
            "--all",
            "--workers",
            "2",
            "--launcher",
            "template",
        ],
        vec![
            "shard",
            "run",
            "--all",
            "--workers",
            "2",
            "--hosts",
            "h.json",
        ],
        vec!["shard", "run", "--all", "--workers", "2", "--timeout", "0"],
        vec!["shard", "run", "--all", "--workers", "2", "--timeout", "-3"],
        vec![
            "shard",
            "run",
            "--all",
            "--workers",
            "2",
            "--timeout",
            "nope",
        ],
        vec![
            "shard",
            "run",
            "--all",
            "--workers",
            "2",
            "--max-attempts",
            "x",
        ],
    ] {
        let output = mojo_hpc(&line);
        assert_eq!(
            output.status.code(),
            Some(2),
            "expected a usage error for {line:?}: {}",
            stderr(&output)
        );
    }
    // A missing host manifest is caught when dispatch starts, not mid-run.
    let missing = mojo_hpc(&[
        "shard",
        "run",
        "table1",
        "--workers",
        "1",
        "--launcher",
        "template",
        "--hosts",
        "/nonexistent/hosts.json",
    ]);
    assert_eq!(missing.status.code(), Some(1), "{}", stderr(&missing));
    assert!(
        stderr(&missing).contains("hosts.json"),
        "{}",
        stderr(&missing)
    );
}
