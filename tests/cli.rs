//! Integration tests of the `mojo-hpc` command-line interface: subcommand
//! coverage, exit codes and error messages, through the real binary.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn mojo_hpc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mojo-hpc"))
        .args(args)
        .output()
        .expect("run mojo-hpc")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("cli-scratch")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn list_names_every_registry_entry() {
    let output = mojo_hpc(&["list"]);
    assert_eq!(output.status.code(), Some(0));
    let text = stdout(&output);
    for id in [
        "table1", "fig2", "fig3", "table2", "fig4", "table3", "fig5", "fig6", "fig7", "table4",
        "table5",
    ] {
        assert!(
            text.lines().any(|line| line.trim_start().starts_with(id)),
            "list output missing {id}:\n{text}"
        );
    }
    // Kernel-measuring experiments name the workload behind them.
    assert!(text.contains("[workload: stencil]"), "{text}");
    assert!(text.contains("[workload: hartree-fock]"), "{text}");
}

#[test]
fn list_shows_every_workload_with_parameters_and_defaults() {
    let output = mojo_hpc(&["list"]);
    assert_eq!(output.status.code(), Some(0));
    let text = stdout(&output);
    for workload in [
        "stencil",
        "babelstream",
        "minibude",
        "hartree-fock",
        "hartree-fock-sampled",
        "jacobi",
        "framestream",
    ] {
        assert!(
            text.lines()
                .any(|line| line.trim_start().starts_with(workload)),
            "list output missing workload {workload}:\n{text}"
        );
    }
    // Tunable parameters appear as key=default pairs with help text.
    for param in [
        "l=192",
        "precision=fp64",
        "n=33554432",
        "ppwi=8",
        "atoms=1024",
        "samples=4096",
        "iters=400",
        "frames=64",
    ] {
        assert!(text.contains(param), "list output missing {param}:\n{text}");
    }
    // The sweep axis is called out so `--sizes` is discoverable.
    assert!(text.contains("sweep axis: l"), "{text}");
    assert!(text.contains("--sizes"), "{text}");
}

#[test]
fn sweep_runs_custom_sizes_and_emits_csv_and_json() {
    let out = scratch("sweep");
    let csv_run = mojo_hpc(&[
        "sweep",
        "stencil",
        "--sizes",
        "24,32",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(
        csv_run.status.code(),
        Some(0),
        "stderr: {}",
        stderr(&csv_run)
    );
    let text = stdout(&csv_run);
    assert!(text.contains("=== sweep_stencil"), "{text}");
    assert!(text.contains("l=24") && text.contains("l=32"), "{text}");
    let csv_path = out.join("sweep_stencil_sweep.csv");
    let csv = std::fs::read_to_string(&csv_path).expect("sweep CSV written");
    assert!(csv
        .starts_with("workload,l,params,device,backend,kernel,seconds,bandwidth_gbs,verification"));
    assert_eq!(csv.lines().count(), 1 + 2 * 4, "2 sizes x 4 platforms");

    let json_run = mojo_hpc(&[
        "sweep",
        "stencil",
        "--sizes",
        "24,32",
        "--format",
        "json",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(json_run.status.code(), Some(0));
    let json = stdout(&json_run);
    assert!(json.contains("\"id\": \"sweep_stencil\""), "{json}");
    assert!(out.join("sweep_stencil.json").exists());

    // Parameter overrides flow into the encoded params column.
    let fp32 = mojo_hpc(&[
        "sweep",
        "stencil",
        "--sizes",
        "24",
        "precision=fp32",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(fp32.status.code(), Some(0));
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    assert!(csv.contains("precision=fp32"), "{csv}");

    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn composite_workloads_run_sweep_and_preset_through_the_cli() {
    let out = scratch("composite");
    // Jacobi: a sweep with an iters override runs all four platforms per
    // point and validates functionally at these grid sides.
    let jacobi = mojo_hpc(&[
        "sweep",
        "jacobi",
        "--sizes",
        "8,12",
        "iters=150",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(jacobi.status.code(), Some(0), "{}", stderr(&jacobi));
    let text = stdout(&jacobi);
    assert!(text.contains("=== sweep_jacobi"), "{text}");
    let csv = std::fs::read_to_string(out.join("sweep_jacobi_sweep.csv")).unwrap();
    assert_eq!(csv.lines().count(), 1 + 2 * 4, "2 sizes x 4 platforms");
    assert!(csv.contains("iters=150"), "{csv}");
    assert!(csv.contains("passed(max_abs_err=0.000e0)"), "{csv}");

    // Framestream: preset round trip reproduces the run byte-for-byte.
    let preset = out.join("framestream.json");
    let save = mojo_hpc(&[
        "sweep",
        "framestream",
        "--sizes",
        "4096,8192",
        "frames=16",
        "--preset-out",
        preset.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(save.status.code(), Some(0), "{}", stderr(&save));
    let preset_text = std::fs::read_to_string(&preset).unwrap();
    assert!(
        preset_text.contains("\"workload\": \"framestream\""),
        "{preset_text}"
    );
    assert!(preset_text.contains("frames=16"), "{preset_text}");
    let replay = mojo_hpc(&["sweep", "--preset", preset.to_str().unwrap()]);
    assert_eq!(replay.status.code(), Some(0), "{}", stderr(&replay));
    assert_eq!(stdout(&replay), stdout(&save));

    // Out-of-range parameters are usage errors (exit 2), not runs.
    for args in [
        ["sweep", "jacobi", "--sizes", "2"],
        ["sweep", "jacobi", "--sizes", "5000"],
        ["sweep", "framestream", "--sizes", "1"],
    ] {
        let output = mojo_hpc(&args);
        assert_eq!(
            output.status.code(),
            Some(2),
            "expected a usage error for {args:?}: {}",
            stderr(&output)
        );
    }
    let bad_iters = mojo_hpc(&["sweep", "jacobi", "--sizes", "8", "iters=0"]);
    assert_eq!(bad_iters.status.code(), Some(2));
    let bad_frames = mojo_hpc(&["sweep", "framestream", "--sizes", "4096", "frames=100000"]);
    assert_eq!(bad_frames.status.code(), Some(2));
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn sweep_usage_errors_exit_2() {
    let unknown = mojo_hpc(&["sweep", "frobnicate", "--sizes", "8"]);
    assert_eq!(unknown.status.code(), Some(2));
    assert!(
        stderr(&unknown).contains("stencil"),
        "should name known workloads"
    );
    let no_sizes = mojo_hpc(&["sweep", "stencil"]);
    assert_eq!(no_sizes.status.code(), Some(2));
    let bad_param = mojo_hpc(&["sweep", "stencil", "--sizes", "24", "bogus=1"]);
    assert_eq!(bad_param.status.code(), Some(2));
    // A size that would overflow the cost model is a usage error, not a run.
    let overflow = mojo_hpc(&["sweep", "stencil", "--sizes", "10000000000"]);
    assert_eq!(overflow.status.code(), Some(2));
    assert!(
        stderr(&bad_param).contains("unknown parameter"),
        "{}",
        stderr(&bad_param)
    );
}

#[test]
fn run_single_experiment_with_json_format_writes_the_json_file() {
    let out = scratch("run-json");
    let output = mojo_hpc(&[
        "run",
        "table1",
        "--format",
        "json",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0));
    let text = stdout(&output);
    assert!(
        text.starts_with('['),
        "json stdout should be an array: {text}"
    );
    assert!(text.contains("\"id\": \"table1\""));
    assert!(
        !text.contains("=== table1"),
        "no console banner in json mode"
    );
    assert!(out.join("table1.json").exists());
    assert!(
        !out.join("table1_hardware.csv").exists(),
        "json mode writes no CSV"
    );
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn run_unknown_experiment_fails_helpfully() {
    let output = mojo_hpc(&["run", "table9"]);
    assert_eq!(output.status.code(), Some(2));
    let err = stderr(&output);
    assert!(
        err.contains("table9"),
        "stderr should name the bad id: {err}"
    );
    assert!(
        err.contains("known ids") && err.contains("table5"),
        "stderr should list the known ids: {err}"
    );
}

#[test]
fn run_without_arguments_is_a_usage_error() {
    let output = mojo_hpc(&["run"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(stderr(&output).contains("--all"));
}

#[test]
fn run_single_experiment_renders_and_writes_csv() {
    let out = scratch("run-single");
    let output = mojo_hpc(&["run", "table1", "--out", out.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(0));
    assert!(stdout(&output).contains("=== table1"));
    assert!(out.join("table1_hardware.csv").exists());
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn diff_identical_dirs_exits_zero_and_mutation_names_the_row() {
    let dir_a = scratch("diff-a");
    let dir_b = scratch("diff-b");
    let csv = "kernel,backend\ncopy,Mojo\ndot,CUDA\n";
    std::fs::write(dir_a.join("t.csv"), csv).unwrap();
    std::fs::write(dir_b.join("t.csv"), csv).unwrap();

    let same = mojo_hpc(&["diff", dir_a.to_str().unwrap(), dir_b.to_str().unwrap()]);
    assert_eq!(same.status.code(), Some(0));

    // Mutate row 2 (0-based: the "dot" data row) and expect it named.
    std::fs::write(dir_b.join("t.csv"), "kernel,backend\ncopy,Mojo\ndot,HIP\n").unwrap();
    let changed = mojo_hpc(&["diff", dir_a.to_str().unwrap(), dir_b.to_str().unwrap()]);
    assert_eq!(changed.status.code(), Some(1));
    let text = stdout(&changed);
    assert!(text.contains("t.csv: row 2 differs"), "diff output: {text}");
    assert!(text.contains("dot,CUDA") && text.contains("dot,HIP"));

    // A file present on only one side is also a difference.
    std::fs::write(dir_b.join("t.csv"), csv).unwrap();
    std::fs::write(dir_b.join("extra.csv"), "h\n").unwrap();
    let extra = mojo_hpc(&["diff", dir_a.to_str().unwrap(), dir_b.to_str().unwrap()]);
    assert_eq!(extra.status.code(), Some(1));
    assert!(stdout(&extra).contains("extra.csv: only in"));

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn diff_on_a_missing_directory_is_a_usage_error() {
    let output = mojo_hpc(&["diff", "/nonexistent/a", "/nonexistent/b"]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn bench_diff_tolerates_a_missing_group() {
    let dir = scratch("bench-diff");
    let record = |group: &str, mean: f64| {
        format!(
            r#"{{"group": "{group}", "benchmarks": [{{"id": "x", "samples": 1, "mean_ns": {mean}, "min_ns": 1, "max_ns": 2, "throughput": null}}]}}"#
        )
    };
    std::fs::write(dir.join("a.json"), record("shared", 100.0)).unwrap();
    std::fs::write(dir.join("b.json"), record("shared", 150.0)).unwrap();
    let a_dir = dir.join("a-set");
    let b_dir = dir.join("b-set");
    std::fs::create_dir_all(&a_dir).unwrap();
    std::fs::create_dir_all(&b_dir).unwrap();
    std::fs::write(a_dir.join("shared.json"), record("shared", 100.0)).unwrap();
    std::fs::write(a_dir.join("gone.json"), record("gone", 50.0)).unwrap();
    std::fs::write(b_dir.join("shared.json"), record("shared", 150.0)).unwrap();
    std::fs::write(b_dir.join("fresh.json"), record("fresh", 25.0)).unwrap();

    let files = mojo_hpc(&[
        "bench-diff",
        dir.join("a.json").to_str().unwrap(),
        dir.join("b.json").to_str().unwrap(),
    ]);
    assert_eq!(files.status.code(), Some(0));
    assert!(stdout(&files).contains("+50.0%"), "{}", stdout(&files));

    let dirs = mojo_hpc(&[
        "bench-diff",
        a_dir.to_str().unwrap(),
        b_dir.to_str().unwrap(),
    ]);
    assert_eq!(dirs.status.code(), Some(0));
    let text = stdout(&dirs);
    assert!(text.contains("gone: removed"), "{text}");
    assert!(text.contains("fresh: added"), "{text}");

    let bad = mojo_hpc(&["bench-diff", "/nonexistent.json", "/nonexistent.json"]);
    assert_eq!(bad.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sampled_hartree_fock_runs_beyond_the_full_validation_limit() {
    let out = scratch("hf-sampled");
    let output = mojo_hpc(&[
        "run",
        "hartree-fock",
        "--atoms",
        "128",
        "--sample",
        "128",
        "--shards",
        "4",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("natoms = 128"));
    assert!(text.contains("survivors: exact"));
    assert!(out.join("hartree_fock_sampled_128_shards.csv").exists());
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn help_prints_usage_and_unknown_subcommands_fail() {
    let help = mojo_hpc(&["help"]);
    assert_eq!(help.status.code(), Some(0));
    assert!(stdout(&help).contains("USAGE"));
    let unknown = mojo_hpc(&["frobnicate"]);
    assert_eq!(unknown.status.code(), Some(2));
    assert!(stderr(&unknown).contains("USAGE"));
    let none = mojo_hpc(&[]);
    assert_eq!(none.status.code(), Some(2));
}
