//! Figure 4 — BabelStream bandwidth for the five operations, Mojo vs CUDA
//! (H100) and Mojo vs HIP (MI300A).

use super::support::{h100_pair, mi300a_pair, stream_fom, RUNS_PER_CONFIG, STREAM_JITTER};
use crate::registry::ExperimentId;
use crate::render::Series;
use crate::report::ExperimentReport;
use hpc_metrics::output::CsvTable;
use hpc_metrics::RunStats;
use science_kernels::babelstream::{self, workload as stream_workload, BabelStreamConfig};
use vendor_models::kernel_class::StreamOp;
use vendor_models::Platform;

/// The paper's 2^25-element FP64 configuration, decoded from the registry's
/// workload preset (the figure is the `babelstream` scenario engine run at
/// one pinned assignment).
pub fn configuration() -> BabelStreamConfig {
    let params = ExperimentId::Fig4
        .spec()
        .workload
        .expect("fig4 measures the babelstream workload")
        .resolve()
        .expect("fig4 preset validates")
        .remove(0);
    stream_workload::config(&params).expect("fig4 preset decodes")
}

/// Regenerates Figure 4 (both subfigures) at the paper's 2^25-element size.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig4",
        "Mojo vs CUDA/HIP BabelStream effective bandwidth (Eq. 2), n = 2^25 FP64",
    );
    let config = configuration();
    let mut csv = CsvTable::new(["device", "backend", "op", "mean_bandwidth_gbs", "std_gbs"]);

    for (subfigure, (portable, vendor)) in
        [("(a) H100", h100_pair()), ("(b) MI300A", mi300a_pair())]
    {
        report.push_line(format!("Figure 4{subfigure}"));
        let mut series = Vec::new();
        for platform in [&portable, &vendor] {
            let mut s = Series::new(platform.backend.label());
            for op in StreamOp::ALL {
                let run = babelstream::run(platform, op, &config).expect("babelstream run");
                let samples = run.sample_durations(RUNS_PER_CONFIG, STREAM_JITTER, 41);
                let stats = RunStats::from_samples(&samples);
                let mean_bw = stream_fom(&run, op, &config) * run.seconds() / stats.mean;
                let std_bw = mean_bw * stats.coefficient_of_variation();
                s.push(op.label(), mean_bw);
                csv.push_row([
                    platform.spec.name.clone(),
                    platform.backend.label().to_string(),
                    op.label().to_string(),
                    format!("{mean_bw}"),
                    format!("{std_bw}"),
                ]);
            }
            series.push(s);
        }
        report.push_line(Series::render_group(&series, "GB/s", 40));
    }

    report.push_table("bandwidth", csv);
    report
}

/// The portable-to-vendor bandwidth ratio for one operation on one device
/// pair (used by Table 5 and the tests).
pub fn efficiency(portable: &Platform, vendor: &Platform, op: StreamOp) -> f64 {
    let config = configuration();
    let p = babelstream::run(portable, op, &config).expect("portable run");
    let v = babelstream::run(vendor, op, &config).expect("vendor run");
    stream_fom(&p, op, &config) / stream_fom(&v, op, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;

    #[test]
    fn fig4_configuration_comes_from_the_registry_preset() {
        assert_eq!(configuration(), BabelStreamConfig::paper(Precision::Fp64));
    }

    #[test]
    fn fig4_shows_mojo_ahead_except_for_dot_on_h100() {
        let (mojo, cuda) = h100_pair();
        for op in StreamOp::ALL {
            let eff = efficiency(&mojo, &cuda, op);
            if op == StreamOp::Dot {
                assert!((eff - 0.78).abs() < 0.05, "Dot efficiency {eff}");
            } else {
                assert!((1.0..1.06).contains(&eff), "{op} efficiency {eff}");
            }
        }
    }

    #[test]
    fn fig4_shows_parity_on_mi300a() {
        let (mojo, hip) = mi300a_pair();
        for op in StreamOp::ALL {
            let eff = efficiency(&mojo, &hip, op);
            assert!((eff - 1.0).abs() < 0.02, "{op} efficiency {eff}");
        }
    }

    #[test]
    fn fig4_report_covers_both_devices_and_all_ops() {
        let report = run();
        assert!(report.text.contains("Figure 4(a) H100"));
        assert!(report.text.contains("Figure 4(b) MI300A"));
        for op in ["Copy", "Mul", "Add", "Triad", "Dot"] {
            assert!(report.text.contains(op));
        }
        assert_eq!(report.tables[0].1.rows.len(), 2 * 2 * 5);
    }
}
