//! Regenerates the paper's full evaluation: every table and figure, printed
//! to the console and exported as CSV under `target/experiments/`.
//!
//! This example predates the `mojo-hpc` binary, which is now the primary
//! entry point (`mojo-hpc run --all`, plus `list`/`diff`/`bench-diff` and a
//! sampled Hartree–Fock validation mode — see README.md); it remains as a
//! minimal library-level driver. Run with
//! `cargo run --release --example portability_report`.
//! Pass experiment ids (e.g. `table4 fig6`) to regenerate a subset.
//!
//! Independent experiments are dispatched concurrently over the persistent
//! rayon pool (set `RAYON_NUM_THREADS=1` for a serial run); the console and
//! CSV output is identical either way.

use mojo_hpc::report::{run_experiments, ExperimentId};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<ExperimentId> = if args.is_empty() {
        ExperimentId::ALL.to_vec()
    } else {
        args.iter()
            .map(|arg| {
                arg.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    eprintln!(
                        "known ids: {}",
                        ExperimentId::ALL
                            .iter()
                            .map(|i| i.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let started = Instant::now();
    let reports = run_experiments(&ids);
    let elapsed = started.elapsed();

    for report in reports {
        println!("{}", report.render());
        match report.write_csv_files() {
            Ok(paths) => {
                for path in paths {
                    println!("  [csv] {}", path.display());
                }
            }
            Err(err) => eprintln!("  failed to write CSV for {}: {err}", report.id),
        }
        println!();
    }
    eprintln!(
        "regenerated {} experiment(s) in {:.3} s",
        ids.len(),
        elapsed.as_secs_f64()
    );
}
