//! Steady-state zero-allocation contract of the workload hot paths
//! (DESIGN.md §11).
//!
//! Every registered workload is run repeatedly with one fixed parameter
//! assignment. The first runs are warm-up: they fill the size-classed buffer
//! pool, the string interner and the generation memo caches. After that,
//! each `Workload::run` must be served entirely from pooled and memoized
//! storage — the counting global allocator below must observe **zero**
//! `alloc`/`realloc` calls across the steady-state launches.
//!
//! The test pins `RAYON_NUM_THREADS=1` before the first parallel call so the
//! worker pool's serial lane executes in the caller (spawning workers — a
//! one-time, warm-up-phase cost in production — would otherwise count
//! against whichever launch happened to trigger it).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocator entry point that can hand out new memory.
/// Deallocation is free to happen in steady state (returning a block to the
/// pool's shelves never touches the global allocator, but dropping a
/// same-sized replacement is harmless either way), so `dealloc` is not
/// counted.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Warm-up launches per workload before counting starts. Two would do (the
/// first fills caches, the second settles pool shelf population); a third
/// adds slack against launch-order effects inside a single run.
const WARMUP_RUNS: usize = 3;

/// Counted steady-state launches per workload.
const STEADY_RUNS: usize = 3;

#[test]
fn steady_state_launches_do_not_allocate() {
    // Must precede the first parallel call of the process: the worker pool
    // reads the variable once, when first used.
    std::env::set_var("RAYON_NUM_THREADS", "1");

    use science_kernels::simd::LanePolicy;
    use science_kernels::workload::{self, ParamValue};

    let engines = workload::all();
    assert!(
        engines.len() >= 7,
        "expected the seven registered workloads (four proxies, the sampled \
         variant, and the two §15 composites), found {}",
        engines.len()
    );

    for engine in engines {
        let mut params = engine.default_params();
        params
            .set(
                engine.size_param(),
                ParamValue::Int(engine.bench_sizes()[0]),
            )
            .expect("size param applies");

        for _ in 0..WARMUP_RUNS {
            engine.run(&params).expect("warm-up run succeeds");
        }

        let before = allocations();
        for launch in 0..STEADY_RUNS {
            let output = engine.run(&params).expect("steady-state run succeeds");
            assert!(
                !output.measurements.is_empty(),
                "{}: steady-state run produced no measurements",
                engine.name()
            );
            drop(output);
            let after = allocations();
            assert_eq!(
                after - before,
                0,
                "{}: steady-state launch {} performed {} global allocation(s); \
                 every hot-path buffer must come from the pool or a memo cache",
                engine.name(),
                launch + 2 + WARMUP_RUNS,
                after - before
            );
        }

        // The SIMD fast lane holds the same contract (DESIGN.md §14): its
        // scratch is pooled or on the stack, and the lane's one-time caches
        // fill during warm-up like every other memo.
        for _ in 0..WARMUP_RUNS {
            engine
                .run_lane(&params, LanePolicy::Simd)
                .expect("SIMD warm-up run succeeds");
        }
        let before = allocations();
        for launch in 0..STEADY_RUNS {
            let output = engine
                .run_lane(&params, LanePolicy::Simd)
                .expect("SIMD steady-state run succeeds");
            drop(output);
            let after = allocations();
            assert_eq!(
                after - before,
                0,
                "{}: SIMD-lane steady-state launch {} performed {} global \
                 allocation(s); the fast lane must not trade determinism for \
                 allocation churn",
                engine.name(),
                launch + 2 + WARMUP_RUNS,
                after - before
            );
        }
    }

    // The standalone lane kernels (what the crossover bench times and the
    // parity suite compares) obey the contract too, on both lanes, at their
    // smallest ladder size.
    use science_kernels::simd::{lane_kernels, Lane};
    for kernel in lane_kernels() {
        let size = kernel.sizes[0];
        for lane in [Lane::Deterministic, Lane::Simd] {
            for _ in 0..WARMUP_RUNS {
                (kernel.run)(lane, size);
            }
            let before = allocations();
            for _ in 0..STEADY_RUNS {
                (kernel.run)(lane, size);
            }
            let after = allocations();
            assert_eq!(
                after - before,
                0,
                "lane kernel {} ({lane}, size {size}) performed {} steady-state \
                 global allocation(s)",
                kernel.name,
                after - before
            );
        }
    }
}
