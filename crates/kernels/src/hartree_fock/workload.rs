//! The `hartree-fock` scenarios: the exact and sampled Hartree–Fock drivers
//! behind the [`Workload`] interface.

use super::{run_sampled, HartreeFockConfig, DEFAULT_SAMPLES, DEFAULT_SHARDS};
use crate::workload::{
    check_int_range, paper_platform_pairs, Measurement, ParamSpec, Params, Workload, WorkloadError,
    WorkloadOutput,
};
use gpu_sim::{istr, istr_fmt, PooledVec};

/// Resolves the `ngauss` parameter: `0` (the default) selects the paper's
/// pairing of 6 Gaussians at 1024+ atoms and 3 below.
pub fn resolve_ngauss(atoms: u64, ngauss: u64) -> u32 {
    if ngauss != 0 {
        ngauss as u32
    } else if atoms >= 1024 {
        6
    } else {
        3
    }
}

/// Decodes a validated parameter assignment into a driver configuration.
pub fn config(params: &Params) -> Result<HartreeFockConfig, WorkloadError> {
    let atoms = params.int("atoms");
    Ok(HartreeFockConfig::paper(
        atoms as u32,
        resolve_ngauss(atoms, params.int("ngauss")),
    ))
}

fn shared_params(default_atoms: u64) -> Vec<ParamSpec> {
    vec![
        ParamSpec::int("atoms", default_atoms, "helium atom count"),
        ParamSpec::int(
            "ngauss",
            0,
            "Gaussian primitives per atom (0 = paper pairing: 6 at 1024+, 3 below)",
        ),
    ]
}

fn validate_shared(params: &Params) -> Result<(), WorkloadError> {
    // The atom ceiling keeps nquartets ≈ atoms⁴/8 inside u64; the ngauss
    // bound is checked before the decoder's u32 cast so oversized values
    // are rejected, not truncated (ngauss=0 means the paper pairing).
    check_int_range(params, "atoms", 1, 1 << 16)?;
    check_int_range(params, "ngauss", 0, 64)?;
    Ok(())
}

/// The exact Hartree–Fock workload (paper Table 4): full quartet sweep
/// through the timing model, functional validation below
/// [`super::MAX_FUNCTIONAL_NATOMS`] atoms.
pub struct HartreeFockWorkload;

impl Workload for HartreeFockWorkload {
    fn name(&self) -> &'static str {
        "hartree-fock"
    }

    fn description(&self) -> &'static str {
        "Hartree-Fock electron-repulsion kernel, exact quartet sweep (atomics bound)"
    }

    fn fom_label(&self) -> &'static str {
        "millis"
    }

    fn size_param(&self) -> &'static str {
        "atoms"
    }

    fn params(&self) -> Vec<ParamSpec> {
        shared_params(64)
    }

    fn bench_sizes(&self) -> &'static [u64] {
        &[16, 24]
    }

    fn validate(&self, params: &Params) -> Result<(), WorkloadError> {
        validate_shared(params)
    }

    fn run_lane(
        &self,
        params: &Params,
        policy: crate::simd::LanePolicy,
    ) -> Result<WorkloadOutput, WorkloadError> {
        self.validate(params)?;
        let config = config(params)?;
        let mut measurements = PooledVec::new();
        for platform in paper_platform_pairs() {
            let run = super::run_lane(platform, &config, policy)?;
            let fom = run.millis();
            measurements.push(Measurement::from_run(&run, fom));
        }
        Ok(WorkloadOutput {
            params: params.clone(),
            measurements,
        })
    }
}

/// The sampled Hartree–Fock workload: sharded stratified functional
/// validation at sizes the exact sweep cannot reach on the host. Its figure
/// of merit is the extrapolated Schwarz-survivor count; `seconds` is 0
/// because the scenario validates numerics rather than timing a launch.
pub struct HartreeFockSampledWorkload;

impl Workload for HartreeFockSampledWorkload {
    fn name(&self) -> &'static str {
        "hartree-fock-sampled"
    }

    fn description(&self) -> &'static str {
        "Hartree-Fock sampled functional validation (sharded stratified quartet probes)"
    }

    fn fom_label(&self) -> &'static str {
        "estimated_survivors"
    }

    fn size_param(&self) -> &'static str {
        "atoms"
    }

    fn params(&self) -> Vec<ParamSpec> {
        let mut specs = shared_params(1024);
        specs.push(ParamSpec::int(
            "samples",
            DEFAULT_SAMPLES,
            "sampled probes across the quartet space",
        ));
        specs.push(ParamSpec::int(
            "shards",
            DEFAULT_SHARDS,
            "shard count of the quartet space",
        ));
        specs
    }

    fn bench_sizes(&self) -> &'static [u64] {
        &[96]
    }

    fn validate(&self, params: &Params) -> Result<(), WorkloadError> {
        validate_shared(params)?;
        check_int_range(params, "samples", 1, 1 << 32)?;
        check_int_range(params, "shards", 1, 1 << 32)?;
        Ok(())
    }

    fn run_lane(
        &self,
        params: &Params,
        _policy: crate::simd::LanePolicy,
    ) -> Result<WorkloadOutput, WorkloadError> {
        // The sampled scenario validates numerics through the shared ERI
        // arithmetic; it has no host reduction hot loop, so the lane policy
        // does not change its behaviour.
        self.validate(params)?;
        let config = config(params)?;
        // The portable H100 platform, shared with the timing workloads.
        let platform = &paper_platform_pairs()[0];
        let report = run_sampled(
            platform,
            &config,
            params.int("samples"),
            params.int("shards"),
        )?;
        let measurement = Measurement {
            device: istr(&platform.spec.name),
            backend: istr(platform.backend.label()),
            kernel: istr("hartree_fock_sampled"),
            seconds: 0.0,
            fom: report.estimated_survivors as f64,
            verification: istr_fmt(format_args!(
                "passed(eri={:.3e},fock={:.3e},exact_survivors={},estimate_err={:.2}%)",
                report.eri_max_abs_error,
                report.fock_max_abs_error,
                report.exact_survivors,
                report.survivor_estimate_error() * 100.0
            )),
        };
        let mut measurements = PooledVec::new();
        measurements.push(measurement);
        Ok(WorkloadOutput {
            params: params.clone(),
            measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngauss_auto_matches_the_paper_pairing() {
        assert_eq!(resolve_ngauss(64, 0), 3);
        assert_eq!(resolve_ngauss(1024, 0), 6);
        assert_eq!(resolve_ngauss(1024, 4), 4);
        let mut params = HartreeFockWorkload.default_params();
        params.apply_encoding("atoms=1024").unwrap();
        assert_eq!(config(&params).unwrap().ngauss, 6);
    }

    #[test]
    fn exact_workload_times_all_four_platforms() {
        let mut params = HartreeFockWorkload.default_params();
        params.apply_encoding("atoms=12").unwrap();
        let output = HartreeFockWorkload.run(&params).unwrap();
        assert_eq!(output.measurements.len(), 4);
        for m in &output.measurements {
            assert_eq!(m.kernel, "hartree_fock");
            assert!(m.fom > 0.0);
            assert!(m.verification.starts_with("passed("), "{}", m.verification);
        }
    }

    #[test]
    fn sampled_workload_extrapolates_survivors_beyond_the_exact_limit() {
        let mut params = HartreeFockSampledWorkload.default_params();
        params
            .apply_encoding("atoms=96,samples=256,shards=8")
            .unwrap();
        let output = HartreeFockSampledWorkload.run(&params).unwrap();
        assert_eq!(output.measurements.len(), 1);
        let m = &output.measurements[0];
        assert!(m.fom > 0.0, "survivor estimate should be positive");
        assert_eq!(m.seconds, 0.0);
        assert!(m.verification.contains("exact_survivors="));
    }

    #[test]
    fn sampled_validation_rejects_zero_counts() {
        for bad in ["samples=0", "shards=0"] {
            let mut params = HartreeFockSampledWorkload.default_params();
            params.apply_encoding(bad).unwrap();
            assert!(HartreeFockSampledWorkload.validate(&params).is_err());
        }
    }

    #[test]
    fn out_of_range_counts_are_rejected_before_any_truncating_cast() {
        // ngauss = 2^32 would truncate to 0 (and 2^32 + 3 to 3) in the u32
        // cast, silently running a different basis than the label claims;
        // atoms beyond the ceiling would overflow the quartet count.
        for bad in ["ngauss=4294967296", "ngauss=4294967299", "atoms=100000"] {
            let mut params = HartreeFockWorkload.default_params();
            params.apply_encoding(bad).unwrap();
            assert!(HartreeFockWorkload.validate(&params).is_err(), "{bad}");
            assert!(HartreeFockWorkload.run(&params).is_err(), "{bad}");
        }
    }
}
