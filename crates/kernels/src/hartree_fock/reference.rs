//! CPU golden reference for the Hartree–Fock Fock-matrix build, plus the
//! shared ERI (electron-repulsion integral) arithmetic.

use super::geometry::HeliumSystem;
use super::triangular::{pair_count, pair_decode};
use rayon::prelude::*;

/// Evaluates the (simplified) electron-repulsion integral of the quartet
/// `(ij, kl)`: four nested loops over the Gaussian primitives, exactly the
/// structure of Listing 5. Every implementation (reference, portable kernel,
/// vendor kernel) calls this same function so the arithmetic is identical.
pub fn quartet_eri(system: &HeliumSystem, ij: u64, kl: u64) -> f64 {
    let (i, j) = pair_decode(ij);
    let (k, l) = pair_decode(kl);
    let r2_ij = system.distance2(i as usize, j as usize);
    let r2_kl = system.distance2(k as usize, l as usize);
    let rpq2 = system.pair_distance2(ij, kl);

    let ngauss = system.ngauss;
    let mut eri = 0.0f64;
    for ib in 0..ngauss {
        for jb in 0..ngauss {
            let aij = system.xpnt[ib] + system.xpnt[jb];
            let dij = system.coef[ib]
                * system.coef[jb]
                * (-system.xpnt[ib] * system.xpnt[jb] / aij * r2_ij).exp();
            for kb in 0..ngauss {
                for lb in 0..ngauss {
                    let akl = system.xpnt[kb] + system.xpnt[lb];
                    let dkl = system.coef[kb]
                        * system.coef[lb]
                        * (-system.xpnt[kb] * system.xpnt[lb] / akl * r2_kl).exp();
                    let aijkl = aij * akl / (aij + akl);
                    // Boys-function surrogate: smooth, 1 at t = 0, ~t^(-1/2) tail.
                    let t = aijkl * rpq2;
                    let f0t = 1.0 / (1.0 + t).sqrt();
                    eri += dij * dkl * f0t * aijkl.powf(0.5);
                }
            }
        }
    }
    eri
}

/// Applies the six Fock-matrix updates of Listing 5 for one quartet through a
/// caller-supplied accumulator (an atomic add on the GPU, a plain add here).
pub fn scatter_fock(
    natoms: usize,
    dens: &[f64],
    eri: f64,
    ij: u64,
    kl: u64,
    mut add: impl FnMut(usize, f64),
) {
    let (i, j) = pair_decode(ij);
    let (k, l) = pair_decode(kl);
    let (i, j, k, l) = (i as usize, j as usize, k as usize, l as usize);
    let at = |a: usize, b: usize| a * natoms + b;
    // Coulomb contributions.
    add(at(i, j), dens[at(k, l)] * eri * 4.0);
    add(at(k, l), dens[at(i, j)] * eri * 4.0);
    // Exchange contributions.
    add(at(i, k), dens[at(j, l)] * -eri);
    add(at(i, l), dens[at(j, k)] * -eri);
    add(at(j, k), dens[at(i, l)] * -eri);
    add(at(j, l), dens[at(i, k)] * -eri);
}

/// Quartets folded per task when the reference build runs on the pool. The
/// width is fixed (independent of the thread count), so each Fock entry
/// accumulates its contributions in the same order at every
/// `RAYON_NUM_THREADS` and the `f64` result is bitwise-stable.
const REFERENCE_CHUNK: u64 = 8192;

/// Builds the Fock matrix over every unscreened quartet.
///
/// The quartet range is split into `REFERENCE_CHUNK`-wide chunks, each
/// chunk scatters into its own partial Fock matrix on the pool, and the
/// partials are summed element-wise through the deterministic reduction
/// lane — parallel, without atomics, and bitwise-identical to a serial run.
pub fn reference_fock(system: &HeliumSystem, screening_tol: f64) -> Vec<f64> {
    let natoms = system.natoms;
    let npairs = pair_count(natoms as u64);
    let nquartets = pair_count(npairs);
    let nchunks = nquartets.div_ceil(REFERENCE_CHUNK);
    (0..nchunks)
        .into_par_iter()
        .map(|chunk| {
            let start = chunk * REFERENCE_CHUNK;
            let end = (start + REFERENCE_CHUNK).min(nquartets);
            let mut partial = vec![0.0f64; natoms * natoms];
            for q in start..end {
                let (ij, kl) = pair_decode(q);
                if system.schwarz[ij as usize] * system.schwarz[kl as usize] <= screening_tol {
                    continue;
                }
                let eri = quartet_eri(system, ij, kl);
                scatter_fock(natoms, &system.dens, eri, ij, kl, |index, value| {
                    partial[index] += value;
                });
            }
            partial
        })
        .reduce(
            || vec![0.0f64; natoms * natoms],
            |mut acc, partial| {
                // Unrolled element-wise combine: bitwise-identical to the
                // scalar loop (each index accumulates in the same order), so
                // the golden bytes are unaffected.
                crate::simd::add_assign_unrolled(&mut acc, &partial);
                acc
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hartree_fock::config::HartreeFockConfig;

    fn system(natoms: u32) -> HeliumSystem {
        HeliumSystem::generate(&HartreeFockConfig::validation(natoms))
    }

    #[test]
    fn eri_is_positive_and_decays_with_pair_separation() {
        let sys = system(27);
        let close = quartet_eri(&sys, 0, 0);
        // A quartet whose two pairs sit far apart has a much smaller integral.
        let far_pair = super::super::triangular::pair_encode(0, 26);
        let far = quartet_eri(&sys, 0, far_pair);
        assert!(close > 0.0);
        assert!(far < close);
    }

    #[test]
    fn scatter_touches_exactly_six_entries() {
        let sys = system(6);
        let mut touched = Vec::new();
        scatter_fock(6, &sys.dens, 1.0, 1, 3, |index, _| touched.push(index));
        assert_eq!(touched.len(), 6);
    }

    #[test]
    fn fock_build_is_deterministic() {
        let sys = system(8);
        let a = reference_fock(&sys, 1e-9);
        let b = reference_fock(&sys, 1e-9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.iter().any(|&v| v != 0.0));
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tighter_screening_changes_the_result_only_slightly() {
        // Screening removes only quartets whose contribution is negligible,
        // so the Fock matrix barely moves when the threshold is tightened.
        let sys = system(16);
        let loose = reference_fock(&sys, 1e-7);
        let none = reference_fock(&sys, 0.0);
        let max_diff = loose
            .iter()
            .zip(none.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let max_val = none.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max_diff < 1e-4 * max_val.max(1.0));
    }

    #[test]
    fn diagonal_dominates_the_fock_matrix() {
        // Same-atom pairs have the largest integrals, so diagonal Fock entries
        // dominate — a physical sanity check on the surrogate integral.
        let sys = system(8);
        let fock = reference_fock(&sys, 1e-9);
        let natoms = 8;
        let mean_diag: f64 =
            (0..natoms).map(|i| fock[i * natoms + i].abs()).sum::<f64>() / natoms as f64;
        let mean_off: f64 = (0..natoms)
            .flat_map(|i| (0..natoms).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| fock[i * natoms + j].abs())
            .sum::<f64>()
            / (natoms * (natoms - 1)) as f64;
        assert!(mean_diag > mean_off);
    }
}
