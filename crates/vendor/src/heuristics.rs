//! Launch-geometry heuristics: how each programming model sizes its grids.
//!
//! The portable model and the vendor baselines pick launch shapes
//! differently, and the paper traces part of the BabelStream Dot gap to
//! exactly this: the CUDA/HIP baselines size the reduction grid from the
//! device's multiprocessor count (4 blocks per SM/CU), while the portable
//! port uses a fixed grid-stride launch. These helpers centralise every
//! launch-shape decision the kernels make.

use crate::Backend;
use gpu_sim::{Dim3, LaunchConfig};
use gpu_spec::GpuSpec;

/// Threads per block used by every BabelStream kernel (the benchmark's
/// `TBSIZE`).
pub const STREAM_BLOCK: u32 = 1024;

/// Maximum number of blocks the portable grid-stride Dot launch uses.
pub const PORTABLE_DOT_GRID: u32 = 1024;

/// Blocks per SM/CU the vendor baselines launch for the Dot reduction.
pub const VENDOR_DOT_BLOCKS_PER_UNIT: u32 = 4;

/// Threads per block for the Hartree–Fock quartet kernel.
pub const HARTREE_FOCK_BLOCK: u32 = 256;

/// One-thread-per-element launch for the streaming BabelStream operations.
pub fn stream_launch(n: u64) -> LaunchConfig {
    LaunchConfig::cover_1d(n, STREAM_BLOCK)
}

/// Launch for the Dot reduction. The portable model uses a grid-stride loop
/// capped at [`PORTABLE_DOT_GRID`] blocks; the vendor baselines size the grid
/// from the device topology ([`VENDOR_DOT_BLOCKS_PER_UNIT`] blocks per unit).
pub fn dot_launch(backend: Backend, spec: &GpuSpec, n: u64) -> LaunchConfig {
    let blocks = if backend.is_portable() {
        let covering = n.div_ceil(u64::from(STREAM_BLOCK));
        covering.min(u64::from(PORTABLE_DOT_GRID)) as u32
    } else {
        spec.topology.num_compute_units * VENDOR_DOT_BLOCKS_PER_UNIT
    };
    LaunchConfig::new(blocks.max(1), STREAM_BLOCK)
}

/// 3-D launch covering an `l`³ stencil grid with `(block_x, 1, 1)` blocks —
/// the layout both the paper's Mojo port and the vendor baselines use.
pub fn stencil_launch(l: u32, block_x: u32) -> LaunchConfig {
    let gx = l.div_ceil(block_x.max(1));
    LaunchConfig::new(Dim3::new(gx, l, l), Dim3::new_1d(block_x))
}

/// Launch for the fasten kernel: one work-item per `ppwi` poses, work-groups
/// of `wg` threads.
pub fn bude_launch(nposes: u64, ppwi: u32, wg: u32) -> LaunchConfig {
    let work_items = nposes.div_ceil(u64::from(ppwi.max(1)));
    LaunchConfig::cover_1d(work_items.max(1), wg)
}

/// Launch for the Hartree–Fock kernel: one thread per integral quartet.
pub fn hartree_fock_launch(nquartets: u64) -> LaunchConfig {
    LaunchConfig::cover_1d(nquartets.max(1), HARTREE_FOCK_BLOCK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::presets;

    #[test]
    fn stream_launch_covers_exactly() {
        let cfg = stream_launch(1 << 25);
        assert_eq!(cfg.threads_per_block(), u64::from(STREAM_BLOCK));
        assert_eq!(cfg.total_threads(), 1 << 25);
    }

    #[test]
    fn portable_and_vendor_dot_grids_differ() {
        // The paper's Dot analysis: fixed grid-stride grid (portable) vs a
        // topology-derived grid (vendor). At the paper's problem size they
        // must genuinely differ on both devices.
        let h100 = presets::h100_nvl();
        let portable = dot_launch(Backend::Portable, &h100, 1 << 25);
        let cuda = dot_launch(Backend::CUDA, &h100, 1 << 25);
        assert_eq!(portable.num_blocks(), u64::from(PORTABLE_DOT_GRID));
        assert_eq!(
            cuda.num_blocks(),
            u64::from(h100.topology.num_compute_units * VENDOR_DOT_BLOCKS_PER_UNIT)
        );
        assert_ne!(portable.num_blocks(), cuda.num_blocks());

        let mi300a = presets::mi300a();
        let hip = dot_launch(Backend::HIP, &mi300a, 1 << 25);
        assert_eq!(hip.num_blocks(), 228 * 4);
    }

    #[test]
    fn portable_dot_grid_shrinks_for_small_problems() {
        let h100 = presets::h100_nvl();
        let small = dot_launch(Backend::Portable, &h100, 1 << 13);
        assert_eq!(small.num_blocks(), 8);
        assert!(small.total_threads() >= 1 << 13);
    }

    #[test]
    fn stencil_launch_covers_the_cube() {
        let cfg = stencil_launch(512, 512);
        assert_eq!(cfg.total_threads(), 512u64.pow(3));
        assert_eq!(cfg.threads_per_block(), 512);
        let odd = stencil_launch(24, 64);
        assert!(odd.total_threads() >= 24u64.pow(3));
    }

    #[test]
    fn bude_launch_follows_ppwi_and_wg() {
        let cfg = bude_launch(65_536, 16, 64);
        assert_eq!(cfg.threads_per_block(), 64);
        assert_eq!(cfg.total_threads(), 65_536 / 16);
        let tiny = bude_launch(128, 4, 8);
        assert_eq!(tiny.num_blocks(), 4);
    }

    #[test]
    fn hartree_fock_launch_uses_256_thread_blocks() {
        let cfg = hartree_fock_launch(1_000_000);
        assert_eq!(cfg.threads_per_block(), 256);
        assert!(cfg.total_threads() >= 1_000_000);
    }
}
