//! One module per paper table/figure.

pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod support;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
