//! Analytic launch cost of the Hartree–Fock kernel, including an exact count
//! of the quartets that survive Schwarz screening.

use super::config::HartreeFockConfig;
use super::geometry::HeliumSystem;
use gpu_sim::stats::{AccessPattern, FlopCounts};
use gpu_sim::{KernelCost, PooledVec};
use gpu_spec::Precision;
use vendor_models::heuristics;

/// Counts the quartets `(ij ≤ kl)` with `schwarz[ij] · schwarz[kl] > tol`
/// without enumerating all `O(npairs²)` combinations: the factors are sorted
/// and a two-pointer sweep counts, for every `ij`, how many `kl` pass the
/// product threshold. Runs in `O(npairs log npairs)`, which keeps the 1024-atom
/// case (524,800 pairs, ~1.4 × 10¹¹ quartets) instantaneous.
pub fn surviving_quartets(schwarz: &[f64], tol: f64) -> u64 {
    let n = schwarz.len();
    if n == 0 {
        return 0;
    }
    let mut sorted: PooledVec<f64> = PooledVec::new();
    sorted.extend_from_slice(schwarz);
    // Unstable sort: no scratch allocation, and the sweep below only depends
    // on the sorted multiset, so stability buys nothing.
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("schwarz factors must not be NaN"));

    // ordered_pairs = #{(u, v) in any order : s_u * s_v > tol}
    let mut ordered_pairs: u64 = 0;
    let mut diagonal: u64 = 0;
    let mut hi = n; // index into `sorted`: elements [hi..] satisfy the product test
    for (lo, &s) in sorted.iter().enumerate() {
        if s <= 0.0 {
            continue;
        }
        // Move `hi` left while sorted[hi - 1] * s > tol.
        while hi > 0 && sorted[hi - 1] * s > tol {
            hi -= 1;
        }
        ordered_pairs += (n - hi.max(lo + 1)) as u64 * 2;
        if s * s > tol {
            diagonal += 1;
            ordered_pairs += 0; // the (lo, lo) term is handled via `diagonal`
        }
        // Reset hi for the next iteration is unnecessary: as s grows, the
        // threshold index only moves left, so `hi` is monotone.
    }
    // unordered (ij <= kl) count = (strictly-ordered pairs) / 2 + diagonal.
    ordered_pairs / 2 + diagonal
}

/// FLOPs of one innermost Gaussian-quartet iteration of Listing 5.
pub fn gauss_iteration_flops() -> FlopCounts {
    FlopCounts {
        adds: 4,
        muls: 10,
        fmas: 1,
        divs: 3,
        sqrts: 2,
        transcendentals: 2, // the two exponentials
    }
}

/// Builds the launch cost of one Fock-build kernel launch under `config`,
/// using `system` for the exact screening survivor count.
pub fn hartree_fock_cost(config: &HartreeFockConfig, system: &HeliumSystem) -> KernelCost {
    let nquartets = config.nquartets();
    let survivors = surviving_quartets(&system.schwarz, config.screening_tol);
    let gauss_iters = survivors * u64::from(config.ngauss).pow(4);

    let launch = heuristics::hartree_fock_launch(nquartets);

    // Screened-out quartets still cost the screening test itself.
    let screening_flops = FlopCounts {
        muls: nquartets,
        ..Default::default()
    };
    let flops = gauss_iteration_flops()
        .scale(gauss_iters)
        .combine(&screening_flops);

    // Traffic: schwarz/density reads and Fock updates. The matrices are small
    // (natoms² doubles) and cache-resident; traffic is dominated by the atomic
    // read-modify-write of 6 Fock entries and 6 density reads per survivor.
    let bytes_read = survivors * (6 + 6) * 8 + nquartets * 16;
    let bytes_written = survivors * 6 * 8;

    KernelCost::builder(
        "hartree_fock",
        Precision::Fp64,
        launch,
        AccessPattern::AtomicScatter,
    )
    .dram_traffic(bytes_read, bytes_written)
    .flops(flops)
    .atomics(survivors * 6, 1.0)
    .loads_stores_per_thread(14.0, 6.0)
    .build()
}

#[cfg(test)]
mod tests {
    use super::super::triangular::pair_count;
    use super::*;

    /// Brute-force survivor count used to validate the two-pointer sweep.
    fn brute_force(schwarz: &[f64], tol: f64) -> u64 {
        let mut count = 0;
        for ij in 0..schwarz.len() {
            for kl in ij..schwarz.len() {
                if schwarz[ij] * schwarz[kl] > tol {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn survivor_count_matches_brute_force() {
        for natoms in [4u32, 8, 12, 20] {
            let config = HartreeFockConfig::validation(natoms);
            let system = HeliumSystem::generate(&config);
            for tol in [0.0, 1e-12, 1e-9, 1e-6, 1e-3, 1e-1] {
                assert_eq!(
                    surviving_quartets(&system.schwarz, tol),
                    brute_force(&system.schwarz, tol),
                    "natoms {natoms}, tol {tol}"
                );
            }
        }
    }

    #[test]
    fn zero_threshold_keeps_every_quartet() {
        let config = HartreeFockConfig::validation(16);
        let system = HeliumSystem::generate(&config);
        assert_eq!(
            surviving_quartets(&system.schwarz, 0.0),
            pair_count(pair_count(16))
        );
    }

    #[test]
    fn huge_threshold_screens_everything() {
        let config = HartreeFockConfig::validation(16);
        let system = HeliumSystem::generate(&config);
        assert_eq!(surviving_quartets(&system.schwarz, 1e12), 0);
        assert_eq!(surviving_quartets(&[], 1.0), 0);
    }

    #[test]
    fn screening_bites_harder_as_the_system_grows() {
        // Larger lattices have more well-separated pairs, so the surviving
        // fraction shrinks — the effect that keeps the 1024-atom case feasible.
        let frac = |natoms: u32| {
            let config = HartreeFockConfig::paper(natoms, 3);
            let system = HeliumSystem::generate(&config);
            surviving_quartets(&system.schwarz, config.screening_tol) as f64
                / config.nquartets() as f64
        };
        let f64_atoms = frac(64);
        let f256_atoms = frac(256);
        assert!(f256_atoms < f64_atoms);
        assert!(f256_atoms > 0.0);
    }

    #[test]
    fn cost_counts_six_atomics_per_surviving_quartet() {
        let config = HartreeFockConfig::validation(12);
        let system = HeliumSystem::generate(&config);
        let cost = hartree_fock_cost(&config, &system);
        let survivors = surviving_quartets(&system.schwarz, config.screening_tol);
        assert_eq!(cost.atomics_fp64, survivors * 6);
        assert!(cost.flops.transcendentals >= survivors * 81 * 2);
        assert_eq!(cost.launch.threads_per_block(), 256);
    }
}
