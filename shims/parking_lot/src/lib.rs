//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync` that
//! expose parking_lot's non-poisoning `lock()` signature.

use std::fmt;
use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Recovers from poisoning
    /// (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
