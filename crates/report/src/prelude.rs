//! Convenience prelude for experiment drivers (examples and benches).

pub use crate::registry::{all_experiments, run_experiment, run_experiments, ExperimentId};
pub use crate::render::{AsciiTable, Series};
pub use crate::report::ExperimentReport;
