//! BabelStream sweep: all five operations on every platform at the paper's
//! 2^25-element size, plus a smaller fully-validated pass (the workload behind
//! Figure 4 and Table 3).
//!
//! Run with `cargo run --release --example babelstream_sweep`.

use mojo_hpc::kernels::babelstream::{self, BabelStreamConfig};
use mojo_hpc::metrics::{babelstream_bandwidth_gbs, BabelStreamOp};
use mojo_hpc::spec::Precision;
use mojo_hpc::vendor::kernel_class::StreamOp;
use mojo_hpc::vendor::Platform;

fn to_metric(op: StreamOp) -> BabelStreamOp {
    match op {
        StreamOp::Copy => BabelStreamOp::Copy,
        StreamOp::Mul => BabelStreamOp::Mul,
        StreamOp::Add => BabelStreamOp::Add,
        StreamOp::Triad => BabelStreamOp::Triad,
        StreamOp::Dot => BabelStreamOp::Dot,
    }
}

fn main() {
    let config = BabelStreamConfig::paper(Precision::Fp64);
    println!(
        "BabelStream, n = 2^25 = {} FP64 elements (Eq. 2 bandwidth):\n",
        config.n
    );
    for platform in [
        Platform::portable_h100(),
        Platform::cuda_h100(false),
        Platform::portable_mi300a(),
        Platform::hip_mi300a(false),
    ] {
        println!("{}", platform.label());
        for op in StreamOp::ALL {
            let run = babelstream::run(&platform, op, &config).expect("babelstream run");
            let bw = babelstream_bandwidth_gbs(
                to_metric(op),
                config.n as u64,
                config.precision,
                run.seconds(),
            );
            println!(
                "  {:<6} {:>9.3} ms   {:>8.0} GB/s",
                op.label(),
                run.millis(),
                bw
            );
        }
    }

    // A fully validated smaller pass: the numerics of every kernel, including
    // the shared-memory Dot reduction, are checked against closed forms.
    println!("\nValidated pass (n = 2^20, FP32):");
    let small = BabelStreamConfig::validation(1 << 20, Precision::Fp32);
    for op in StreamOp::ALL {
        let run = babelstream::run(&Platform::portable_mi300a(), op, &small).expect("run");
        println!("  {:<6} {:?}", op.label(), run.verification);
    }
}
