//! Streaming-dataset engine workload — the batch-streaming composite pattern
//! of DESIGN.md §15.
//!
//! A batch of synthetic data frames streams through a resident accumulator:
//! each frame is materialised into a single reused device buffer and folded
//! in element-wise as an exponential moving average. The batch is
//! deliberately sized past anything the memo cache could hold resident —
//! frames exist only while they are being folded — which exercises the
//! steady-state pool reuse path rather than the memoization path. The
//! element-wise fold has no reduction, so every lane and every thread count
//! produces bitwise-identical accumulators; the property tests pin that the
//! result is also invariant under any partitioning of the frame range.

mod config;
mod cost;
mod portable;
mod reference;
mod vendor;
pub mod workload;

pub use config::{
    frame_value, FrameStreamConfig, ACC_INIT, ALPHA, BETA, FRAME_PERIOD, MAX_FUNCTIONAL_ELEMENTS,
};
pub use cost::framestream_cost;
pub use portable::{run_portable, run_portable_lane};
pub use reference::{accumulate_frames, expected_final};
pub use vendor::run_vendor;

use crate::common::WorkloadRun;
use crate::simd::{self, LanePolicy};
use gpu_sim::SimError;
use vendor_models::Platform;

/// Runs the frame-stream workload on a platform, dispatching to the portable
/// or vendor implementation according to the platform's backend, under the
/// process-wide lane policy.
pub fn run(platform: &Platform, config: &FrameStreamConfig) -> Result<WorkloadRun, SimError> {
    run_lane(platform, config, simd::process_policy())
}

/// Runs the frame-stream workload under an explicit lane policy. The vendor
/// baselines have no host fast lane and ignore the policy.
pub fn run_lane(
    platform: &Platform,
    config: &FrameStreamConfig,
    policy: LanePolicy,
) -> Result<WorkloadRun, SimError> {
    if platform.backend.is_portable() {
        run_portable_lane(platform, config, policy)
    } else {
        run_vendor(platform, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_paper_platforms_run_and_verify() {
        let config = FrameStreamConfig::validation(4096, 24);
        for platform in [
            Platform::portable_h100(),
            Platform::cuda_h100(false),
            Platform::portable_mi300a(),
            Platform::hip_mi300a(false),
        ] {
            let run = run(&platform, &config).unwrap();
            assert!(
                run.verification.is_verified(),
                "{} should verify",
                platform.label()
            );
            assert!(run.seconds() > 0.0);
        }
    }

    #[test]
    fn batch_time_scales_with_the_frame_count() {
        let short = run(
            &Platform::portable_h100(),
            &FrameStreamConfig::paper(1 << 22, 16),
        )
        .unwrap();
        let long = run(
            &Platform::portable_h100(),
            &FrameStreamConfig::paper(1 << 22, 160),
        )
        .unwrap();
        let ratio = long.seconds() / short.seconds();
        assert!(
            (ratio - 10.0).abs() < 0.5,
            "10× the frames should cost ≈10× the time, got {ratio}"
        );
    }
}
