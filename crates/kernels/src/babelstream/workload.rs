//! The `babelstream` scenario: the five stream drivers behind the
//! [`Workload`] interface.

use super::{BabelStreamConfig, PAPER_VECTOR_SIZE};
use crate::stencil7::workload::parse_precision;
use crate::workload::{
    check_int_range, paper_platform_pairs, Measurement, ParamSpec, Params, Workload, WorkloadError,
    WorkloadOutput,
};
use gpu_sim::PooledVec;
use hpc_metrics::{babelstream_bandwidth_gbs, BabelStreamOp};
use vendor_models::kernel_class::StreamOp;

/// Largest vector size the driver executes functionally: the operations are
/// linear-time, so small sweeps validate for free, while the paper's 2^25
/// vectors rely on the (exact) cost model alone.
pub const MAX_FUNCTIONAL_N: usize = 1 << 20;

/// Maps the kernel-side operation enum onto the metric-side one (Eq. 2 needs
/// the operation to count the arrays it moves).
pub fn metric_op(op: StreamOp) -> BabelStreamOp {
    match op {
        StreamOp::Copy => BabelStreamOp::Copy,
        StreamOp::Mul => BabelStreamOp::Mul,
        StreamOp::Add => BabelStreamOp::Add,
        StreamOp::Triad => BabelStreamOp::Triad,
        StreamOp::Dot => BabelStreamOp::Dot,
    }
}

/// Parses the `op` keyword: one operation name, or `all` for the paper's
/// five-operation presentation order. Returns a borrowed static slice — op
/// selection is a lookup, not a per-run allocation.
pub fn parse_ops(keyword: &str) -> Result<&'static [StreamOp], WorkloadError> {
    /// Singleton slices for each operation, in [`StreamOp::ALL`] order.
    const SINGLES: [[StreamOp; 1]; 5] = [
        [StreamOp::ALL[0]],
        [StreamOp::ALL[1]],
        [StreamOp::ALL[2]],
        [StreamOp::ALL[3]],
        [StreamOp::ALL[4]],
    ];
    match keyword {
        "all" => Ok(&StreamOp::ALL),
        single => StreamOp::ALL
            .iter()
            .position(|op| op.label().eq_ignore_ascii_case(single))
            .map(|i| &SINGLES[i][..])
            .ok_or_else(|| {
                WorkloadError::new(format!(
                    "unknown op '{single}' (expected all, copy, mul, add, triad or dot)"
                ))
            }),
    }
}

/// Decodes a validated parameter assignment into a driver configuration.
/// Functional validation is enabled automatically up to
/// [`MAX_FUNCTIONAL_N`] elements.
pub fn config(params: &Params) -> Result<BabelStreamConfig, WorkloadError> {
    let n = params.int("n") as usize;
    Ok(BabelStreamConfig {
        n,
        precision: parse_precision(params.text("precision"))?,
        validate: n <= MAX_FUNCTIONAL_N,
    })
}

/// The BabelStream workload (paper Figure 4 / Table 3 / Figure 5).
pub struct BabelStreamWorkload;

impl Workload for BabelStreamWorkload {
    fn name(&self) -> &'static str {
        "babelstream"
    }

    fn description(&self) -> &'static str {
        "BabelStream Copy/Mul/Add/Triad/Dot vector kernels (Eq. 2)"
    }

    fn fom_label(&self) -> &'static str {
        "bandwidth_gbs"
    }

    fn size_param(&self) -> &'static str {
        "n"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::int("n", PAPER_VECTOR_SIZE as u64, "vector length in elements"),
            ParamSpec::text("precision", "fp64", "arithmetic precision (fp32|fp64)"),
            ParamSpec::text("op", "all", "operation (all|copy|mul|add|triad|dot)"),
        ]
    }

    fn bench_sizes(&self) -> &'static [u64] {
        &[1 << 20]
    }

    fn validate(&self, params: &Params) -> Result<(), WorkloadError> {
        // 2 elements so Dot has something to reduce; the ceiling keeps the
        // byte counts (n × element size × arrays) far inside u64.
        check_int_range(params, "n", 2, 1 << 40)?;
        parse_ops(params.text("op"))?;
        let _ = config(params)?;
        Ok(())
    }

    fn run_lane(
        &self,
        params: &Params,
        policy: crate::simd::LanePolicy,
    ) -> Result<WorkloadOutput, WorkloadError> {
        self.validate(params)?;
        let config = config(params)?;
        let ops = parse_ops(params.text("op"))?;
        let mut measurements = PooledVec::new();
        for platform in paper_platform_pairs() {
            for &op in ops {
                let run = super::run_lane(platform, op, &config, policy)?;
                let fom = babelstream_bandwidth_gbs(
                    metric_op(op),
                    config.n as u64,
                    config.precision,
                    run.seconds(),
                );
                measurements.push(Measurement::from_run(&run, fom));
            }
        }
        Ok(WorkloadOutput {
            params: params.clone(),
            measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_keyword_selects_one_or_all_operations() {
        assert_eq!(parse_ops("all").unwrap().len(), 5);
        assert_eq!(parse_ops("triad").unwrap(), vec![StreamOp::Triad]);
        assert!(parse_ops("frobnicate").is_err());
    }

    #[test]
    fn small_sizes_validate_functionally_and_large_ones_skip() {
        let mut params = BabelStreamWorkload.default_params();
        params.apply_encoding("n=4096,op=dot").unwrap();
        let output = BabelStreamWorkload.run(&params).unwrap();
        assert_eq!(output.measurements.len(), 4);
        for m in &output.measurements {
            assert!(m.verification.starts_with("passed("), "{}", m.verification);
            assert_eq!(m.kernel, "Dot");
        }
        assert!(config(&BabelStreamWorkload.default_params()).unwrap().n > MAX_FUNCTIONAL_N);
        assert!(
            !config(&BabelStreamWorkload.default_params())
                .unwrap()
                .validate
        );
    }

    #[test]
    fn validation_rejects_degenerate_vectors() {
        let mut params = BabelStreamWorkload.default_params();
        params.apply_encoding("n=1").unwrap();
        assert!(BabelStreamWorkload.validate(&params).is_err());
        let mut params = BabelStreamWorkload.default_params();
        params.apply_encoding("op=frobnicate").unwrap();
        assert!(BabelStreamWorkload.validate(&params).is_err());
        // Sizes beyond the ceiling would overflow the byte products.
        let mut params = BabelStreamWorkload.default_params();
        params.apply_encoding("n=18446744073709551615").unwrap();
        assert!(BabelStreamWorkload.validate(&params).is_err());
        assert!(BabelStreamWorkload.run(&params).is_err());
    }
}
