//! Bench target for Table 2 — stencil NCU profiling metrics.

use criterion::Criterion;
use experiment_report::ExperimentId;
use gpu_sim::ProfileReport;
use gpu_spec::{presets, Precision};
use science_kernels::stencil7::{self, StencilConfig};
use vendor_models::Platform;

fn bench(c: &mut Criterion) {
    let pool_before = bench::pool_snapshot();
    let mut group = c.benchmark_group("table2");
    group.bench_function("derive_profile_report", |b| {
        let spec = presets::h100_nvl();
        let platform = Platform::portable_h100();
        let config = StencilConfig::paper(512, Precision::Fp64);
        let run = stencil7::run(&platform, &config).unwrap();
        b.iter(|| ProfileReport::derive(&spec, &run.cost, &run.profile, &run.timing))
    });
    bench::record_pool_counters(&mut group, &pool_before);
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Table2);
    let mut criterion = Criterion::default().sample_size(20).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
