//! Bench target for Table 1 — GPU hardware used in the study.

use criterion::Criterion;
use experiment_report::ExperimentId;
use gpu_spec::{presets, Precision};

fn bench(c: &mut Criterion) {
    let pool_before = bench::pool_snapshot();
    let mut group = c.benchmark_group("table1");
    group.bench_function("roofline_queries", |b| {
        let specs = presets::all_presets();
        b.iter(|| {
            specs
                .iter()
                .map(|s| s.ridge_point(Precision::Fp64) + s.roofline_flops(0.62, Precision::Fp64))
                .sum::<f64>()
        })
    });
    bench::record_pool_counters(&mut group, &pool_before);
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Table1);
    let mut criterion = Criterion::default().sample_size(20).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
