//! Analytic launch-cost descriptions.
//!
//! The paper's figures of merit are all *derived* quantities: bytes moved per
//! second (stencil, BabelStream), FLOPs per second (miniBUDE), or raw kernel
//! time (Hartree–Fock). Each kernel implementation in this repository
//! therefore declares the cost of a launch — bytes of device-memory traffic,
//! floating-point operations by class, atomics and their contention — and the
//! timing model converts that cost into simulated time. Unit tests in the
//! kernels crate validate the declared costs against instrumented counts on
//! small problems.
//!
//! Host-side memory behaviour is part of the cost story too: [`PoolStats`]
//! (re-exported from [`crate::pool`]) snapshots the buffer-pool counters —
//! checkouts, hits/misses, recycled vs fresh bytes, high-water mark — so
//! reports and benches can attribute allocator traffic per launch.

use crate::dim::LaunchConfig;
use crate::intern::IStr;
use gpu_spec::Precision;
use serde::{Deserialize, Serialize};

pub use crate::pool::PoolStats;

/// Classified floating-point operation counts for one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FlopCounts {
    /// Plain additions/subtractions.
    pub adds: u64,
    /// Plain multiplications.
    pub muls: u64,
    /// Fused multiply-adds (each counts as two FLOPs).
    pub fmas: u64,
    /// Divisions.
    pub divs: u64,
    /// Square roots.
    pub sqrts: u64,
    /// Transcendental operations (sin, cos, exp, log, pow) — the operations
    /// whose cost depends on whether fast-math is available.
    pub transcendentals: u64,
}

impl FlopCounts {
    /// Total FLOPs using the usual convention (FMA = 2, everything else = 1).
    pub fn total(&self) -> u64 {
        self.adds + self.muls + 2 * self.fmas + self.divs + self.sqrts + self.transcendentals
    }

    /// Issue-cost in "simple FLOP equivalents", charging divisions and square
    /// roots `div_cost` each and transcendentals `sfu_cost` each. This is what
    /// the timing model feeds the compute roofline, because a `sin` costs far
    /// more than an `add` even though both count as one FLOP in Eq. (3).
    pub fn weighted(&self, div_cost: f64, sfu_cost: f64) -> f64 {
        (self.adds + self.muls) as f64
            + 2.0 * self.fmas as f64
            + div_cost * (self.divs + self.sqrts) as f64
            + sfu_cost * self.transcendentals as f64
    }

    /// Element-wise sum of two counts.
    pub fn combine(&self, other: &FlopCounts) -> FlopCounts {
        FlopCounts {
            adds: self.adds + other.adds,
            muls: self.muls + other.muls,
            fmas: self.fmas + other.fmas,
            divs: self.divs + other.divs,
            sqrts: self.sqrts + other.sqrts,
            transcendentals: self.transcendentals + other.transcendentals,
        }
    }

    /// Scales every class by `factor` (used to go from per-item to per-launch).
    pub fn scale(&self, factor: u64) -> FlopCounts {
        FlopCounts {
            adds: self.adds * factor,
            muls: self.muls * factor,
            fmas: self.fmas * factor,
            divs: self.divs * factor,
            sqrts: self.sqrts * factor,
            transcendentals: self.transcendentals * factor,
        }
    }
}

/// The dominant device-memory access pattern of a kernel, used by codegen
/// models to pick achievable-bandwidth fractions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Unit-stride streaming (BabelStream Copy/Mul/Add/Triad).
    Stream,
    /// Three-dimensional nearest-neighbour stencil.
    Stencil3D,
    /// Streaming read plus a block-level shared-memory reduction (Dot).
    Reduction,
    /// Small working set reused from cache with long arithmetic chains
    /// (miniBUDE fasten).
    ComputeTiled,
    /// Scattered atomic updates into a small dense matrix (Hartree–Fock).
    AtomicScatter,
}

impl AccessPattern {
    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            AccessPattern::Stream => "stream",
            AccessPattern::Stencil3D => "stencil-3d",
            AccessPattern::Reduction => "reduction",
            AccessPattern::ComputeTiled => "compute-tiled",
            AccessPattern::AtomicScatter => "atomic-scatter",
        }
    }
}

/// The full analytic cost of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Kernel name as it appears in reports ("laplacian", "copy", "fasten", …).
    /// Interned: cost construction on the run hot path stays allocation-free.
    pub kernel_name: IStr,
    /// Arithmetic precision of the kernel.
    pub precision: Precision,
    /// Launch configuration the cost corresponds to.
    pub launch: LaunchConfig,
    /// Bytes read from device memory (DRAM-level traffic).
    pub bytes_read: u64,
    /// Bytes written to device memory (DRAM-level traffic).
    pub bytes_written: u64,
    /// Bytes moved at the L1 level, if it differs from DRAM traffic
    /// (stencils re-read neighbours from cache).
    pub l1_bytes: Option<u64>,
    /// Bytes moved at the L2 level, if it differs from DRAM traffic.
    pub l2_bytes: Option<u64>,
    /// Floating-point work.
    pub flops: FlopCounts,
    /// Number of FP64 global atomic updates issued by the launch.
    pub atomics_fp64: u64,
    /// Average number of threads contending for the same atomic address
    /// (1.0 = conflict-free).
    pub atomic_conflict_degree: f64,
    /// Bytes of block shared memory traffic.
    pub shared_bytes: u64,
    /// Number of block-wide barriers executed per block.
    pub barriers: u64,
    /// Global-memory load instructions per thread (the LDG row of Tables 2–3).
    pub loads_per_thread: f64,
    /// Global-memory store instructions per thread (the STG row of Tables 2–3).
    pub stores_per_thread: f64,
    /// Dominant access pattern.
    pub pattern: AccessPattern,
}

impl KernelCost {
    /// Starts building a cost description for a kernel.
    pub fn builder(
        kernel_name: impl Into<IStr>,
        precision: Precision,
        launch: LaunchConfig,
        pattern: AccessPattern,
    ) -> KernelCostBuilder {
        KernelCostBuilder {
            cost: KernelCost {
                kernel_name: kernel_name.into(),
                precision,
                launch,
                bytes_read: 0,
                bytes_written: 0,
                l1_bytes: None,
                l2_bytes: None,
                flops: FlopCounts::default(),
                atomics_fp64: 0,
                atomic_conflict_degree: 1.0,
                shared_bytes: 0,
                barriers: 0,
                loads_per_thread: 0.0,
                stores_per_thread: 0.0,
                pattern,
            },
        }
    }

    /// Total DRAM traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity (FLOP per byte) at the DRAM level — the x-axis of
    /// the paper's roofline plot (Fig. 2).
    pub fn arithmetic_intensity_dram(&self) -> f64 {
        if self.total_bytes() == 0 {
            return f64::INFINITY;
        }
        self.flops.total() as f64 / self.total_bytes() as f64
    }

    /// Arithmetic intensity at the L1 level (Tables 2–3, "L1 ai" row).
    pub fn arithmetic_intensity_l1(&self) -> f64 {
        let bytes = self.l1_bytes.unwrap_or_else(|| self.total_bytes());
        if bytes == 0 {
            return f64::INFINITY;
        }
        self.flops.total() as f64 / bytes as f64
    }

    /// Arithmetic intensity at the L2 level (Tables 2–3, "L2 ai" row).
    pub fn arithmetic_intensity_l2(&self) -> f64 {
        let bytes = self.l2_bytes.unwrap_or_else(|| self.total_bytes());
        if bytes == 0 {
            return f64::INFINITY;
        }
        self.flops.total() as f64 / bytes as f64
    }
}

/// Builder for [`KernelCost`].
pub struct KernelCostBuilder {
    cost: KernelCost,
}

impl KernelCostBuilder {
    /// Sets DRAM bytes read and written.
    pub fn dram_traffic(mut self, bytes_read: u64, bytes_written: u64) -> Self {
        self.cost.bytes_read = bytes_read;
        self.cost.bytes_written = bytes_written;
        self
    }

    /// Sets L1-level traffic (defaults to DRAM traffic when unset).
    pub fn l1_bytes(mut self, bytes: u64) -> Self {
        self.cost.l1_bytes = Some(bytes);
        self
    }

    /// Sets L2-level traffic (defaults to DRAM traffic when unset).
    pub fn l2_bytes(mut self, bytes: u64) -> Self {
        self.cost.l2_bytes = Some(bytes);
        self
    }

    /// Sets floating-point work.
    pub fn flops(mut self, flops: FlopCounts) -> Self {
        self.cost.flops = flops;
        self
    }

    /// Sets FP64 atomic count and the average contention degree.
    pub fn atomics(mut self, count: u64, conflict_degree: f64) -> Self {
        self.cost.atomics_fp64 = count;
        self.cost.atomic_conflict_degree = conflict_degree;
        self
    }

    /// Sets shared-memory traffic and barrier count.
    pub fn shared(mut self, bytes: u64, barriers: u64) -> Self {
        self.cost.shared_bytes = bytes;
        self.cost.barriers = barriers;
        self
    }

    /// Sets the per-thread global load/store instruction counts.
    pub fn loads_stores_per_thread(mut self, loads: f64, stores: f64) -> Self {
        self.cost.loads_per_thread = loads;
        self.cost.stores_per_thread = stores;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> KernelCost {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::LaunchConfig;

    fn sample_cost() -> KernelCost {
        KernelCost::builder(
            "copy",
            Precision::Fp64,
            LaunchConfig::cover_1d(1024, 256),
            AccessPattern::Stream,
        )
        .dram_traffic(8 * 1024, 8 * 1024)
        .flops(FlopCounts {
            adds: 0,
            muls: 0,
            fmas: 0,
            divs: 0,
            sqrts: 0,
            transcendentals: 0,
        })
        .loads_stores_per_thread(1.0, 1.0)
        .build()
    }

    #[test]
    fn flop_totals_count_fma_as_two() {
        let f = FlopCounts {
            adds: 10,
            muls: 5,
            fmas: 3,
            divs: 2,
            sqrts: 1,
            transcendentals: 4,
        };
        assert_eq!(f.total(), 10 + 5 + 6 + 2 + 1 + 4);
    }

    #[test]
    fn weighted_cost_charges_sfu_more() {
        let f = FlopCounts {
            adds: 0,
            muls: 0,
            fmas: 0,
            divs: 0,
            sqrts: 0,
            transcendentals: 10,
        };
        assert!((f.weighted(4.0, 32.0) - 320.0).abs() < 1e-12);
        assert!((f.weighted(4.0, 8.0) - 80.0).abs() < 1e-12);
    }

    #[test]
    fn combine_and_scale() {
        let a = FlopCounts {
            adds: 1,
            muls: 2,
            fmas: 3,
            divs: 4,
            sqrts: 5,
            transcendentals: 6,
        };
        let b = a.combine(&a);
        assert_eq!(b.adds, 2);
        assert_eq!(b.transcendentals, 12);
        let c = a.scale(10);
        assert_eq!(c.muls, 20);
        assert_eq!(c.fmas, 30);
    }

    #[test]
    fn builder_and_intensities() {
        let cost = sample_cost();
        assert_eq!(cost.total_bytes(), 16 * 1024);
        assert_eq!(cost.arithmetic_intensity_dram(), 0.0);
        // No flops: intensity zero but defined.
        assert_eq!(cost.arithmetic_intensity_l1(), 0.0);
    }

    #[test]
    fn zero_traffic_gives_infinite_intensity() {
        let cost = KernelCost::builder(
            "compute-only",
            Precision::Fp32,
            LaunchConfig::cover_1d(1, 1),
            AccessPattern::ComputeTiled,
        )
        .flops(FlopCounts {
            adds: 10,
            ..Default::default()
        })
        .build();
        assert!(cost.arithmetic_intensity_dram().is_infinite());
    }

    #[test]
    fn l1_l2_overrides_change_intensity() {
        let cost = KernelCost::builder(
            "laplacian",
            Precision::Fp64,
            LaunchConfig::cover_1d(1 << 20, 512),
            AccessPattern::Stencil3D,
        )
        .dram_traffic(16 << 20, 8 << 20)
        .l1_bytes(64 << 20)
        .l2_bytes(32 << 20)
        .flops(FlopCounts {
            adds: 6 << 20,
            muls: 4 << 20,
            ..Default::default()
        })
        .build();
        // More bytes at L1 than at DRAM means lower intensity at L1 — the
        // ordering seen in the paper's Table 2 (L1 ai < L2 ai < L3 ai).
        assert!(cost.arithmetic_intensity_l1() < cost.arithmetic_intensity_l2());
        assert!(cost.arithmetic_intensity_l2() < cost.arithmetic_intensity_dram());
    }

    #[test]
    fn access_pattern_labels() {
        assert_eq!(AccessPattern::Stream.label(), "stream");
        assert_eq!(AccessPattern::Stencil3D.label(), "stencil-3d");
        assert_eq!(AccessPattern::Reduction.label(), "reduction");
        assert_eq!(AccessPattern::ComputeTiled.label(), "compute-tiled");
        assert_eq!(AccessPattern::AtomicScatter.label(), "atomic-scatter");
    }
}
