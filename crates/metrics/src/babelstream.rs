//! BabelStream effective bandwidth — the paper's Eq. (2).
//!
//! Each operation's bandwidth is the number of arrays it touches times the
//! array size, divided by kernel time:
//!
//! ```text
//! bandwidth_array = sizeof(T) · vector_size / kernel_time
//! Copy, Mul          → 2 · bandwidth_array
//! Add, Triad, Dot(2) → 3 · (Dot: 2 ·) bandwidth_array
//! ```

use gpu_spec::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five BabelStream operations (duplicated from `vendor-models` at the
/// metric level so this crate stays dependency-light).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BabelStreamOp {
    /// `c[i] = a[i]` — 2 arrays.
    Copy,
    /// `b[i] = scalar * c[i]` — 2 arrays.
    Mul,
    /// `c[i] = a[i] + b[i]` — 3 arrays.
    Add,
    /// `a[i] = b[i] + scalar * c[i]` — 3 arrays.
    Triad,
    /// `sum = Σ a[i]·b[i]` — 2 arrays.
    Dot,
}

impl BabelStreamOp {
    /// All operations in presentation order.
    pub const ALL: [BabelStreamOp; 5] = [
        BabelStreamOp::Copy,
        BabelStreamOp::Mul,
        BabelStreamOp::Add,
        BabelStreamOp::Triad,
        BabelStreamOp::Dot,
    ];

    /// The Eq. (2) array multiplier for this operation.
    pub fn array_multiplier(&self) -> u32 {
        match self {
            BabelStreamOp::Copy | BabelStreamOp::Mul | BabelStreamOp::Dot => 2,
            BabelStreamOp::Add | BabelStreamOp::Triad => 3,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            BabelStreamOp::Copy => "Copy",
            BabelStreamOp::Mul => "Mul",
            BabelStreamOp::Add => "Add",
            BabelStreamOp::Triad => "Triad",
            BabelStreamOp::Dot => "Dot",
        }
    }
}

impl fmt::Display for BabelStreamOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Effective bandwidth in GB/s for one BabelStream operation over a vector of
/// `vector_size` elements that took `kernel_time_s` seconds — Eq. (2).
pub fn babelstream_bandwidth_gbs(
    op: BabelStreamOp,
    vector_size: u64,
    precision: Precision,
    kernel_time_s: f64,
) -> f64 {
    assert!(kernel_time_s > 0.0, "kernel time must be positive");
    let array_bytes = vector_size as f64 * precision.size_of() as f64;
    f64::from(op.array_multiplier()) * array_bytes / kernel_time_s / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 1 << 25; // the paper's 33,554,432-element vectors

    #[test]
    fn multipliers_follow_eq2() {
        assert_eq!(BabelStreamOp::Copy.array_multiplier(), 2);
        assert_eq!(BabelStreamOp::Mul.array_multiplier(), 2);
        assert_eq!(BabelStreamOp::Add.array_multiplier(), 3);
        assert_eq!(BabelStreamOp::Triad.array_multiplier(), 3);
        assert_eq!(BabelStreamOp::Dot.array_multiplier(), 2);
    }

    #[test]
    fn copy_bandwidth_matches_table3() {
        // Table 3: Mojo Copy takes 0.202 ms at n = 2^25 FP64 → ~2.66 TB/s.
        let bw = babelstream_bandwidth_gbs(BabelStreamOp::Copy, N, Precision::Fp64, 0.202e-3);
        assert!((bw - 2657.0).abs() < 10.0, "bw = {bw}");
    }

    #[test]
    fn add_moves_three_arrays() {
        let copy = babelstream_bandwidth_gbs(BabelStreamOp::Copy, N, Precision::Fp64, 1e-3);
        let add = babelstream_bandwidth_gbs(BabelStreamOp::Add, N, Precision::Fp64, 1e-3);
        assert!((add / copy - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fp32_halves_the_bytes() {
        let f64bw = babelstream_bandwidth_gbs(BabelStreamOp::Triad, N, Precision::Fp64, 1e-3);
        let f32bw = babelstream_bandwidth_gbs(BabelStreamOp::Triad, N, Precision::Fp32, 1e-3);
        assert!((f64bw / f32bw - 2.0).abs() < 1e-12);
    }

    #[test]
    fn labels_and_order() {
        let labels: Vec<_> = BabelStreamOp::ALL.iter().map(|o| o.label()).collect();
        assert_eq!(labels, vec!["Copy", "Mul", "Add", "Triad", "Dot"]);
        assert_eq!(BabelStreamOp::Dot.to_string(), "Dot");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_time_panics() {
        babelstream_bandwidth_gbs(BabelStreamOp::Copy, N, Precision::Fp64, 0.0);
    }
}
