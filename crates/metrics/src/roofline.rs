//! Roofline model helpers for reproducing the paper's Figure 2.
//!
//! Figure 2 places the four workloads on the H100's roofline: attainable
//! FLOP/s as a function of arithmetic intensity, bounded by the memory-
//! bandwidth slope on the left and the peak-FLOP ceiling on the right. The
//! simulator's profiler supplies measured `(intensity, FLOP/s)` points; this
//! module supplies the ceilings and the plot series.

use gpu_spec::{GpuSpec, Precision};
use serde::{Deserialize, Serialize};

/// One measured kernel placed on the roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Kernel label ("seven-point stencil", "BabelStream Triad", …).
    pub label: String,
    /// Arithmetic intensity in FLOP per byte of device-memory traffic.
    pub arithmetic_intensity: f64,
    /// Achieved performance in FLOP/s.
    pub achieved_flops: f64,
}

impl RooflinePoint {
    /// Creates a point.
    pub fn new(label: impl Into<String>, arithmetic_intensity: f64, achieved_flops: f64) -> Self {
        RooflinePoint {
            label: label.into(),
            arithmetic_intensity,
            achieved_flops,
        }
    }
}

/// The roofline of one device at one precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Device name.
    pub device: String,
    /// Precision of the compute ceiling.
    pub precision: Precision,
    /// Peak memory bandwidth in bytes/s (the slope of the left branch).
    pub peak_bandwidth: f64,
    /// Peak FLOP/s (the flat right branch).
    pub peak_flops: f64,
}

impl Roofline {
    /// Builds the roofline of `spec` at `precision`.
    pub fn of(spec: &GpuSpec, precision: Precision) -> Self {
        Roofline {
            device: spec.name.clone(),
            precision,
            peak_bandwidth: spec.peak_bandwidth_bytes_per_s(),
            peak_flops: spec.peak_flops(precision),
        }
    }

    /// Attainable FLOP/s at a given arithmetic intensity.
    pub fn attainable(&self, intensity: f64) -> f64 {
        (intensity * self.peak_bandwidth).min(self.peak_flops)
    }

    /// The ridge-point intensity where the two branches meet.
    pub fn ridge_point(&self) -> f64 {
        self.peak_flops / self.peak_bandwidth
    }

    /// Whether a point sits in the memory-bound region.
    pub fn is_memory_bound(&self, point: &RooflinePoint) -> bool {
        point.arithmetic_intensity < self.ridge_point()
    }

    /// Fraction of the attainable ceiling a measured point reaches (0..=1+).
    pub fn efficiency_of(&self, point: &RooflinePoint) -> f64 {
        point.achieved_flops / self.attainable(point.arithmetic_intensity)
    }

    /// Samples the ceiling at logarithmically spaced intensities, for plotting.
    pub fn ceiling_series(
        &self,
        min_intensity: f64,
        max_intensity: f64,
        samples: usize,
    ) -> Vec<(f64, f64)> {
        assert!(samples >= 2, "need at least two samples");
        assert!(min_intensity > 0.0 && max_intensity > min_intensity);
        let log_min = min_intensity.ln();
        let log_max = max_intensity.ln();
        (0..samples)
            .map(|i| {
                let t = i as f64 / (samples - 1) as f64;
                let intensity = (log_min + t * (log_max - log_min)).exp();
                (intensity, self.attainable(intensity))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::presets;

    #[test]
    fn ridge_point_separates_the_papers_kernels() {
        // Fig. 2: stencil and BabelStream sit left of the ridge (memory
        // bound), miniBUDE and Hartree-Fock to the right (compute bound).
        let roof = Roofline::of(&presets::h100_nvl(), Precision::Fp32);
        let stencil = RooflinePoint::new("stencil", 0.2, 1.3e12);
        let bude = RooflinePoint::new("miniBUDE", 40.0, 2.0e13);
        assert!(roof.is_memory_bound(&stencil));
        assert!(!roof.is_memory_bound(&bude));
        assert!(roof.ridge_point() > 1.0 && roof.ridge_point() < 100.0);
    }

    #[test]
    fn attainable_is_min_of_the_two_branches() {
        let roof = Roofline::of(&presets::mi300a(), Precision::Fp64);
        let low = roof.attainable(0.01);
        assert!((low - 0.01 * roof.peak_bandwidth).abs() < 1.0);
        let high = roof.attainable(1e6);
        assert!((high - roof.peak_flops).abs() < 1.0);
    }

    #[test]
    fn efficiency_of_a_point_on_the_ceiling_is_one() {
        let roof = Roofline::of(&presets::h100_nvl(), Precision::Fp64);
        let p = RooflinePoint::new("ideal", 0.5, roof.attainable(0.5));
        assert!((roof.efficiency_of(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ceiling_series_is_monotone_and_bounded() {
        let roof = Roofline::of(&presets::h100_nvl(), Precision::Fp32);
        let series = roof.ceiling_series(0.01, 1000.0, 64);
        assert_eq!(series.len(), 64);
        for pair in series.windows(2) {
            assert!(pair[1].0 > pair[0].0);
            assert!(pair[1].1 >= pair[0].1);
            assert!(pair[1].1 <= roof.peak_flops * 1.000001);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn series_needs_two_samples() {
        Roofline::of(&presets::h100_nvl(), Precision::Fp32).ceiling_series(0.1, 1.0, 1);
    }
}
