//! The workload abstraction: every kernel driver behind one parameterizable
//! interface.
//!
//! A [`Workload`] is a named, self-describing scenario engine: it publishes
//! its tunable parameters ([`ParamSpec`]) with defaults, validates a concrete
//! assignment ([`Params`]), and runs the underlying kernel drivers across the
//! paper's portable/vendor platform pairs, returning uniform
//! [`Measurement`] rows. The report crate's registry, the `mojo-hpc sweep`
//! command and the bench targets all drive kernels through this layer, so a
//! paper figure is just a preset parameter assignment and a new scenario is a
//! parameter choice rather than a new driver.
//!
//! | Name | Kernel | Figure of merit | Sweep axis |
//! |---|---|---|---|
//! | `stencil` | [`crate::stencil7`] | `bandwidth_gbs` (Eq. 1) | `l` |
//! | `babelstream` | [`crate::babelstream`] | `bandwidth_gbs` (Eq. 2) | `n` |
//! | `minibude` | [`crate::minibude`] | `gflops` (Eq. 3) | `ppwi` |
//! | `hartree-fock` | [`crate::hartree_fock`] | `millis` | `atoms` |
//! | `hartree-fock-sampled` | [`crate::hartree_fock`] (sampled) | `estimated_survivors` | `atoms` |
//! | `jacobi` | [`crate::jacobi`] | `bandwidth_gbs` (§15) | `l` |
//! | `framestream` | [`crate::framestream`] | `bandwidth_gbs` (§15) | `n` |

use crate::common::{Verification, WorkloadRun};
use gpu_sim::{istr, istr_fmt, IStr, PooledVec, SimError};
use std::fmt;
use std::sync::OnceLock;
use vendor_models::Platform;

/// A typed parameter value: workloads are tuned by unsigned integers
/// (problem sizes, counts) and keywords (precisions, operation names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamValue {
    /// An unsigned integer parameter.
    Int(u64),
    /// A keyword parameter, stored lowercase. Interned: keywords come from a
    /// small fixed vocabulary, so cloning an assignment never allocates.
    Text(IStr),
}

impl ParamValue {
    /// A keyword value (lowercased on construction). Already-lowercase input
    /// — the steady-state case — interns without an intermediate copy.
    pub fn text(s: &str) -> ParamValue {
        if s.bytes().any(|b| b.is_ascii_uppercase()) {
            ParamValue::Text(istr(&s.to_ascii_lowercase()))
        } else {
            ParamValue::Text(istr(s))
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(n) => write!(f, "{n}"),
            ParamValue::Text(s) => f.write_str(s),
        }
    }
}

/// Specification of one tunable parameter of a workload.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    /// Parameter name (the `key` of a `key=value` assignment).
    pub name: &'static str,
    /// Default value; its variant also fixes the parameter's type.
    pub default: ParamValue,
    /// One-line description shown by `mojo-hpc list`.
    pub help: &'static str,
}

impl ParamSpec {
    /// An integer parameter.
    pub fn int(name: &'static str, default: u64, help: &'static str) -> ParamSpec {
        ParamSpec {
            name,
            default: ParamValue::Int(default),
            help,
        }
    }

    /// A keyword parameter.
    pub fn text(name: &'static str, default: &str, help: &'static str) -> ParamSpec {
        ParamSpec {
            name,
            default: ParamValue::text(default),
            help,
        }
    }
}

/// Error raised by parameter handling or a workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadError {
    message: String,
}

impl WorkloadError {
    /// Creates an error with a message.
    pub fn new(message: impl Into<String>) -> Self {
        WorkloadError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for WorkloadError {}

impl From<SimError> for WorkloadError {
    fn from(e: SimError) -> Self {
        WorkloadError::new(e.to_string())
    }
}

/// A complete assignment of every parameter of one workload, in spec order.
///
/// Construct it with [`Params::defaults`] from the workload's specs, then
/// override individual values with [`Params::set`] or
/// [`Params::apply_assignment`]. The assignment always contains every
/// parameter (defaults filled in), so [`Params::encode`] is a *stable, total*
/// string encoding: two assignments are equal iff their encodings are equal,
/// and the encoding round-trips through [`Params::apply_encoding`].
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    values: PooledVec<(&'static str, ParamValue)>,
}

impl Params {
    /// The default assignment of a spec set.
    pub fn defaults(specs: &[ParamSpec]) -> Params {
        Params {
            values: specs
                .iter()
                .map(|spec| (spec.name, spec.default.clone()))
                .collect(),
        }
    }

    /// Overrides one parameter. The name must exist and the value's type
    /// must match the spec default's type.
    pub fn set(&mut self, name: &str, value: ParamValue) -> Result<(), WorkloadError> {
        let Some(slot) = self.values.iter_mut().find(|(n, _)| *n == name) else {
            let known: Vec<&str> = self.values.iter().map(|(n, _)| *n).collect();
            return Err(WorkloadError::new(format!(
                "unknown parameter '{name}' (known: {})",
                known.join(", ")
            )));
        };
        if std::mem::discriminant(&slot.1) != std::mem::discriminant(&value) {
            return Err(WorkloadError::new(format!(
                "parameter '{name}' expects {}",
                match slot.1 {
                    ParamValue::Int(_) => "an unsigned integer",
                    ParamValue::Text(_) => "a keyword",
                }
            )));
        }
        slot.1 = value;
        Ok(())
    }

    /// Applies one `key=value` assignment, parsing the value against the
    /// parameter's type.
    pub fn apply_assignment(&mut self, assignment: &str) -> Result<(), WorkloadError> {
        let Some((name, raw)) = assignment.split_once('=') else {
            return Err(WorkloadError::new(format!(
                "malformed parameter '{assignment}' (expected key=value)"
            )));
        };
        let value = match self.get(name) {
            Some(ParamValue::Int(_)) => ParamValue::Int(raw.parse::<u64>().map_err(|_| {
                WorkloadError::new(format!("parameter '{name}': invalid integer '{raw}'"))
            })?),
            Some(ParamValue::Text(_)) | None => ParamValue::text(raw),
        };
        self.set(name, value)
    }

    /// Applies a comma-separated sequence of `key=value` assignments (the
    /// inverse of [`Params::encode`], which also accepts partial encodings).
    pub fn apply_encoding(&mut self, encoding: &str) -> Result<(), WorkloadError> {
        for assignment in encoding.split(',').filter(|s| !s.is_empty()) {
            self.apply_assignment(assignment.trim())?;
        }
        Ok(())
    }

    /// The value of a parameter, if present.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.values.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// The integer value of a parameter.
    ///
    /// # Panics
    /// Panics if the parameter is missing or not an integer — construction
    /// through [`Params::defaults`] + [`Params::set`] makes that a
    /// programming error, not an input error.
    pub fn int(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(ParamValue::Int(n)) => *n,
            other => panic!("parameter '{name}' is not an integer: {other:?}"),
        }
    }

    /// The keyword value of a parameter.
    ///
    /// # Panics
    /// Panics if the parameter is missing or not a keyword.
    pub fn text(&self, name: &str) -> &str {
        match self.get(name) {
            Some(ParamValue::Text(s)) => s,
            other => panic!("parameter '{name}' is not a keyword: {other:?}"),
        }
    }

    /// The stable string encoding: every parameter as `key=value`, in spec
    /// order, joined by commas (e.g. `l=512,precision=fp64,block=0`).
    pub fn encode(&self) -> String {
        self.values
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// One measured data point of a workload run: one kernel on one platform.
/// Every string field is interned, so building and cloning rows on the sweep
/// hot path is allocation-free once the label vocabulary is warm.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Device name (e.g. "NVIDIA H100 NVL - 94 GB").
    pub device: IStr,
    /// Backend label ("Mojo", "CUDA", "HIP", …).
    pub backend: IStr,
    /// Kernel name within the workload ("laplacian", "Triad", …).
    pub kernel: IStr,
    /// Simulated kernel duration in seconds (0 when the scenario has no
    /// timing model, e.g. the sampled Hartree–Fock validation).
    pub seconds: f64,
    /// The workload's figure of merit (see [`Workload::fom_label`]).
    pub fom: f64,
    /// Rendered verification outcome (`passed(…)` / `skipped(…)`).
    pub verification: IStr,
}

impl Measurement {
    /// Builds a measurement from a driver run record and its figure of merit.
    pub fn from_run(run: &WorkloadRun, fom: f64) -> Measurement {
        Measurement {
            device: run.device.clone(),
            backend: run.backend.clone(),
            kernel: run.kernel.clone(),
            seconds: run.seconds(),
            fom,
            verification: render_verification(&run.verification),
        }
    }
}

/// Renders a verification outcome as a short deterministic token. Interned:
/// repeated runs of a deterministic workload produce the same token, so the
/// steady state is a lookup, not an allocation.
pub fn render_verification(verification: &Verification) -> IStr {
    match verification {
        Verification::Passed { max_abs_error } => {
            istr_fmt(format_args!("passed(max_abs_err={max_abs_error:.3e})"))
        }
        Verification::Skipped { reason } => istr_fmt(format_args!("skipped({reason})")),
    }
}

/// The result of running one workload at one parameter assignment.
#[derive(Debug, Clone)]
pub struct WorkloadOutput {
    /// The fully resolved parameter assignment that produced the rows.
    pub params: Params,
    /// One row per (platform, kernel) pair, in deterministic order, in
    /// pooled storage so repeated runs recycle the row buffer.
    pub measurements: PooledVec<Measurement>,
}

/// A parameterizable scenario engine wrapping one kernel family's drivers.
///
/// Implementations are stateless unit structs registered in [`all()`](all); the
/// trait is object-safe so the registry, CLI and sweep engine can treat every
/// workload uniformly.
pub trait Workload: Sync {
    /// Stable workload name (`stencil`, `babelstream`, …).
    fn name(&self) -> &'static str;

    /// One-line description shown by `mojo-hpc list`.
    fn description(&self) -> &'static str;

    /// Label of the figure-of-merit column of this workload's measurements.
    fn fom_label(&self) -> &'static str;

    /// The integer parameter a `--sizes` sweep varies.
    fn size_param(&self) -> &'static str;

    /// The tunable parameters and their defaults.
    fn params(&self) -> Vec<ParamSpec>;

    /// Sizes (values of [`Workload::size_param`]) the bench targets exercise
    /// for functional host-side measurement; small enough to execute
    /// functionally in every case.
    fn bench_sizes(&self) -> &'static [u64];

    /// Validates a complete assignment beyond per-value typing (cross-field
    /// constraints, functional limits).
    fn validate(&self, params: &Params) -> Result<(), WorkloadError>;

    /// Runs the workload at `params` under an explicit lane policy (see
    /// [`crate::simd`]): `Deterministic` reproduces the golden bytes,
    /// `Simd` forces the fast lane, `Auto` consults the crossover table per
    /// kernel per size.
    fn run_lane(
        &self,
        params: &Params,
        policy: crate::simd::LanePolicy,
    ) -> Result<WorkloadOutput, WorkloadError>;

    /// Runs the workload at `params` under the process-wide lane policy
    /// (deterministic unless the CLI selected `--lane simd|auto`).
    fn run(&self, params: &Params) -> Result<WorkloadOutput, WorkloadError> {
        self.run_lane(params, crate::simd::process_policy())
    }

    /// The default parameter assignment.
    fn default_params(&self) -> Params {
        Params::defaults(&self.params())
    }
}

/// Checks that an integer parameter lies in `[min, max]`.
///
/// Every workload bounds its integer parameters with this *before* any
/// narrowing cast or cost-model arithmetic, so out-of-range CLI values are
/// rejected instead of being silently truncated (`u64 as u32`) or
/// overflowing the `u64` byte/FLOP products.
pub fn check_int_range(
    params: &Params,
    name: &str,
    min: u64,
    max: u64,
) -> Result<(), WorkloadError> {
    let value = params.int(name);
    if value < min || value > max {
        return Err(WorkloadError::new(format!(
            "parameter '{name}' must be in [{min}, {max}], got {value}"
        )));
    }
    Ok(())
}

/// The portable-vs-vendor platform set every timing workload measures, in
/// presentation order: Mojo and the vendor baseline on the H100, then on the
/// MI300A — the pairs the paper's figures compare. Built once: every run of
/// every workload iterates this set, and a `Platform` owns its spec.
pub fn paper_platform_pairs() -> &'static [Platform; 4] {
    static PAIRS: OnceLock<[Platform; 4]> = OnceLock::new();
    PAIRS.get_or_init(|| {
        [
            Platform::portable_h100(),
            Platform::cuda_h100(false),
            Platform::portable_mi300a(),
            Platform::hip_mi300a(false),
        ]
    })
}

/// Every registered workload, in presentation order (the composite patterns
/// of §15 follow the paper's four proxies).
pub fn all() -> [&'static dyn Workload; 7] {
    [
        &crate::stencil7::workload::StencilWorkload,
        &crate::babelstream::workload::BabelStreamWorkload,
        &crate::minibude::workload::MiniBudeWorkload,
        &crate::hartree_fock::workload::HartreeFockWorkload,
        &crate::hartree_fock::workload::HartreeFockSampledWorkload,
        &crate::jacobi::workload::JacobiWorkload,
        &crate::framestream::workload::FrameStreamWorkload,
    ]
}

/// Looks a workload up by name.
pub fn find(name: &str) -> Option<&'static dyn Workload> {
    all().into_iter().find(|w| w.name() == name)
}

/// The comma-separated list of every registered workload name, for usage
/// and preset error messages.
pub fn known_names() -> String {
    all()
        .iter()
        .map(|w| w.name())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<ParamSpec> {
        vec![
            ParamSpec::int("l", 192, "grid side"),
            ParamSpec::text("precision", "fp64", "fp32|fp64"),
        ]
    }

    #[test]
    fn params_encode_round_trips() {
        let mut params = Params::defaults(&specs());
        assert_eq!(params.encode(), "l=192,precision=fp64");
        params.apply_encoding("l=512,precision=FP32").unwrap();
        assert_eq!(params.encode(), "l=512,precision=fp32");
        let mut again = Params::defaults(&specs());
        again.apply_encoding(&params.encode()).unwrap();
        assert_eq!(again, params);
    }

    #[test]
    fn params_reject_unknown_names_and_type_mismatches() {
        let mut params = Params::defaults(&specs());
        assert!(params.apply_assignment("bogus=3").is_err());
        assert!(params.apply_assignment("l=abc").is_err());
        assert!(params.apply_assignment("l").is_err());
        assert!(params.set("precision", ParamValue::Int(3)).is_err());
        assert_eq!(params.encode(), "l=192,precision=fp64");
    }

    #[test]
    fn registry_finds_every_workload_by_its_own_name() {
        for workload in all() {
            let found = find(workload.name()).expect("registered workload");
            assert_eq!(found.name(), workload.name());
            // Every workload's size parameter is a real integer parameter.
            let params = workload.default_params();
            let _ = params.int(workload.size_param());
            workload.validate(&params).expect("defaults validate");
            assert!(!workload.bench_sizes().is_empty());
        }
        assert!(find("frobnicate").is_none());
    }

    #[test]
    fn verification_rendering_is_deterministic() {
        let passed = Verification::Passed {
            max_abs_error: 1.25e-12,
        };
        assert_eq!(
            render_verification(&passed),
            "passed(max_abs_err=1.250e-12)"
        );
        let skipped = Verification::Skipped {
            reason: istr("too large"),
        };
        assert_eq!(render_verification(&skipped), "skipped(too large)");
    }
}
