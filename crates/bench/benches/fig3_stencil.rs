//! Bench target for Figure 3 — seven-point stencil bandwidth, Mojo vs
//! CUDA (H100) and Mojo vs HIP (MI300A).

use criterion::{Criterion, Throughput};
use experiment_report::ExperimentId;
use science_kernels::stencil7;
use science_kernels::workload::{self, ParamValue};
use vendor_models::Platform;

fn bench(c: &mut Criterion) {
    let pool_before = bench::pool_snapshot();
    let mut group = c.benchmark_group("fig3_stencil");
    // Functional execution of the portable stencil on the workload's bench
    // preset sizes: the simulated-kernel work `cargo bench` measures on the
    // host, driven through the same Params the sweep engine uses.
    let engine = workload::find("stencil").expect("registered workload");
    for &l in engine.bench_sizes() {
        let mut params = engine.default_params();
        params
            .set(engine.size_param(), ParamValue::Int(l))
            .expect("size param");
        engine.validate(&params).expect("bench preset validates");
        let config = stencil7::workload::config(&params).expect("bench preset decodes");
        group.throughput(Throughput::Elements(config.cells()));
        group.bench_function(format!("portable_laplacian_L{l}"), |b| {
            let platform = Platform::portable_h100();
            b.iter(|| stencil7::run(&platform, &config).unwrap())
        });
    }
    bench::record_pool_counters(&mut group, &pool_before);
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Fig3);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
