//! Row-major tensor layouts, mirroring Mojo's `Layout.row_major(...)`.
//!
//! Performance-critical information — problem sizes and array layout — must
//! be fixed before a Mojo kernel is compiled; the paper's listings declare
//! `alias layout = Layout.row_major(L, L, L)`. The Rust analogue is a small
//! value type that owns the extents and does the index arithmetic. Only
//! row-major layouts are provided because they are the only ones the paper's
//! kernels use.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A row-major layout of rank 1, 2 or 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layout {
    dims: [usize; 3],
    rank: u8,
}

impl Layout {
    /// A 1-D layout of `n` elements.
    pub const fn row_major_1d(n: usize) -> Self {
        Layout {
            dims: [n, 1, 1],
            rank: 1,
        }
    }

    /// A 2-D row-major layout of `rows x cols`.
    pub const fn row_major_2d(rows: usize, cols: usize) -> Self {
        Layout {
            dims: [rows, cols, 1],
            rank: 2,
        }
    }

    /// A 3-D row-major layout of `d0 x d1 x d2` (slowest to fastest).
    pub const fn row_major_3d(d0: usize, d1: usize, d2: usize) -> Self {
        Layout {
            dims: [d0, d1, d2],
            rank: 3,
        }
    }

    /// The rank (number of dimensions) of the layout.
    pub const fn rank(&self) -> usize {
        self.rank as usize
    }

    /// The extents, padded with 1s beyond the rank.
    pub const fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Whether the layout covers zero elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear offset of a 1-D index.
    #[inline]
    pub fn offset_1d(&self, i: usize) -> usize {
        debug_assert!(self.rank == 1, "offset_1d on rank-{} layout", self.rank);
        i
    }

    /// Linear offset of a 2-D index (row `i`, column `j`).
    #[inline]
    pub fn offset_2d(&self, i: usize, j: usize) -> usize {
        debug_assert!(self.rank == 2, "offset_2d on rank-{} layout", self.rank);
        i * self.dims[1] + j
    }

    /// Linear offset of a 3-D index.
    #[inline]
    pub fn offset_3d(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(self.rank == 3, "offset_3d on rank-{} layout", self.rank);
        (i * self.dims[1] + j) * self.dims[2] + k
    }

    /// Whether a 3-D index is inside the extents.
    #[inline]
    pub fn contains_3d(&self, i: usize, j: usize, k: usize) -> bool {
        i < self.dims[0] && j < self.dims[1] && k < self.dims[2]
    }

    /// Inverse of [`Layout::offset_3d`]: recovers `(i, j, k)` from a linear
    /// offset.
    pub fn delinearize_3d(&self, offset: usize) -> (usize, usize, usize) {
        let k = offset % self.dims[2];
        let j = (offset / self.dims[2]) % self.dims[1];
        let i = offset / (self.dims[1] * self.dims[2]);
        (i, j, k)
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rank {
            1 => write!(f, "row_major({})", self.dims[0]),
            2 => write!(f, "row_major({}, {})", self.dims[0], self.dims[1]),
            _ => write!(
                f,
                "row_major({}, {}, {})",
                self.dims[0], self.dims[1], self.dims[2]
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_ranks() {
        assert_eq!(Layout::row_major_1d(10).len(), 10);
        assert_eq!(Layout::row_major_2d(3, 4).len(), 12);
        assert_eq!(Layout::row_major_3d(2, 3, 4).len(), 24);
        assert_eq!(Layout::row_major_1d(10).rank(), 1);
        assert_eq!(Layout::row_major_2d(3, 4).rank(), 2);
        assert_eq!(Layout::row_major_3d(2, 3, 4).rank(), 3);
        assert!(!Layout::row_major_1d(10).is_empty());
        assert!(Layout::row_major_1d(0).is_empty());
    }

    #[test]
    fn row_major_2d_offsets_are_c_order() {
        let l = Layout::row_major_2d(3, 4);
        assert_eq!(l.offset_2d(0, 0), 0);
        assert_eq!(l.offset_2d(0, 3), 3);
        assert_eq!(l.offset_2d(1, 0), 4);
        assert_eq!(l.offset_2d(2, 3), 11);
    }

    #[test]
    fn row_major_3d_offsets_are_c_order() {
        let l = Layout::row_major_3d(2, 3, 4);
        assert_eq!(l.offset_3d(0, 0, 0), 0);
        assert_eq!(l.offset_3d(0, 0, 3), 3);
        assert_eq!(l.offset_3d(0, 1, 0), 4);
        assert_eq!(l.offset_3d(1, 0, 0), 12);
        assert_eq!(l.offset_3d(1, 2, 3), 23);
    }

    #[test]
    fn delinearize_roundtrips() {
        let l = Layout::row_major_3d(5, 7, 3);
        for off in 0..l.len() {
            let (i, j, k) = l.delinearize_3d(off);
            assert_eq!(l.offset_3d(i, j, k), off);
            assert!(l.contains_3d(i, j, k));
        }
        assert!(!l.contains_3d(5, 0, 0));
        assert!(!l.contains_3d(0, 7, 0));
        assert!(!l.contains_3d(0, 0, 3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Layout::row_major_1d(8).to_string(), "row_major(8)");
        assert_eq!(Layout::row_major_2d(2, 3).to_string(), "row_major(2, 3)");
        assert_eq!(
            Layout::row_major_3d(2, 3, 4).to_string(),
            "row_major(2, 3, 4)"
        );
    }
}
