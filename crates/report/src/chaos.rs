//! Fault-injection seam for the shard worker path (DESIGN.md §12).
//!
//! The dispatcher (`crate::dispatch`) is only trustworthy if its recovery
//! paths are exercised, so the worker entry points of `run --shard` and
//! `sweep --shard` consult the `MOJO_HPC_CHAOS` environment variable before
//! doing any work. The variable holds a comma-separated list of rules:
//!
//! ```text
//! MOJO_HPC_CHAOS=crash:1,hang:2,garble:0,slow:3
//! ```
//!
//! Each rule is `mode:shard[:attempts]`:
//!
//! * `crash:I` — worker for shard `I` prints a marker to stderr and exits 3;
//! * `hang:I` — worker for shard `I` sleeps forever (the dispatcher's
//!   per-worker timeout must reap it);
//! * `garble:I` — worker for shard `I` prints a non-JSON line on stdout and
//!   exits 0 (a protocol violation the coordinator must catch);
//! * `slow:I` — worker for shard `I` sleeps a configurable delay
//!   (`MOJO_HPC_CHAOS_SLOW_MS`, default 2000) before working normally — the
//!   straggler shape speculation targets.
//!
//! The optional `:attempts` suffix bounds how many attempts the rule fires
//! on: by default a rule fires only on the **first** attempt, so a retried
//! worker recovers and the run completes byte-identically. `crash:1:3` fires
//! on attempts 1–3 and `crash:1:*` on every attempt (the retries-exhausted
//! lane). The dispatcher tells each worker its attempt number through the
//! `MOJO_HPC_ATTEMPT` environment variable; a worker launched any other way
//! counts as attempt 1.
//!
//! The seam lives strictly in the worker path: the coordinator never calls
//! [`apply`], so exporting `MOJO_HPC_CHAOS` around a `mojo-hpc shard …`
//! invocation perturbs only the spawned workers.

use std::time::Duration;

/// Environment variable holding the chaos rule list.
pub const CHAOS_ENV: &str = "MOJO_HPC_CHAOS";

/// Environment variable the dispatcher sets to the worker's attempt number
/// (1-based). Absent or unparseable means attempt 1.
pub const ATTEMPT_ENV: &str = "MOJO_HPC_ATTEMPT";

/// Environment variable overriding the `slow` rule's delay in milliseconds.
pub const SLOW_MS_ENV: &str = "MOJO_HPC_CHAOS_SLOW_MS";

/// Default `slow` delay when [`SLOW_MS_ENV`] is unset.
pub const DEFAULT_SLOW_MS: u64 = 2000;

/// The exit code a `crash` rule terminates the worker with.
pub const CRASH_EXIT_CODE: i32 = 3;

/// An injected failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Exit nonzero before doing any work.
    Crash,
    /// Sleep forever; only a timeout reaps the worker.
    Hang,
    /// Print non-JSON on stdout and exit 0.
    Garble,
    /// Sleep before working normally (straggler).
    Slow,
}

impl ChaosMode {
    fn parse(word: &str) -> Result<ChaosMode, String> {
        match word {
            "crash" => Ok(ChaosMode::Crash),
            "hang" => Ok(ChaosMode::Hang),
            "garble" => Ok(ChaosMode::Garble),
            "slow" => Ok(ChaosMode::Slow),
            other => Err(format!(
                "{CHAOS_ENV}: unknown mode '{other}' (known: crash, hang, garble, slow)"
            )),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ChaosMode::Crash => "crash",
            ChaosMode::Hang => "hang",
            ChaosMode::Garble => "garble",
            ChaosMode::Slow => "slow",
        }
    }
}

/// One parsed `mode:shard[:attempts]` rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosRule {
    /// The injected failure mode.
    pub mode: ChaosMode,
    /// The shard index the rule targets.
    pub shard: u64,
    /// The rule fires while the worker's attempt number is `<= attempts`
    /// (`u32::MAX` encodes `*`, every attempt).
    pub attempts: u32,
}

/// Parses a `MOJO_HPC_CHAOS` rule list.
pub fn parse_spec(spec: &str) -> Result<Vec<ChaosRule>, String> {
    spec.split(',')
        .filter(|rule| !rule.trim().is_empty())
        .map(|rule| {
            let mut parts = rule.trim().split(':');
            let mode = ChaosMode::parse(parts.next().unwrap_or(""))?;
            let shard = parts
                .next()
                .ok_or_else(|| format!("{CHAOS_ENV}: rule '{rule}' is missing a shard index"))?;
            let shard: u64 = shard
                .parse()
                .map_err(|_| format!("{CHAOS_ENV}: invalid shard index '{shard}' in '{rule}'"))?;
            let attempts = match parts.next() {
                None => 1,
                Some("*") => u32::MAX,
                Some(n) => n.parse::<u32>().map_err(|_| {
                    format!("{CHAOS_ENV}: invalid attempt bound '{n}' in '{rule}' (number or *)")
                })?,
            };
            if parts.next().is_some() {
                return Err(format!(
                    "{CHAOS_ENV}: rule '{rule}' has too many fields (mode:shard[:attempts])"
                ));
            }
            Ok(ChaosRule {
                mode,
                shard,
                attempts,
            })
        })
        .collect()
}

/// The worker's attempt number, from [`ATTEMPT_ENV`] (1 when absent).
pub fn current_attempt() -> u32 {
    std::env::var(ATTEMPT_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// The `slow` rule's delay, from [`SLOW_MS_ENV`].
fn slow_ms() -> u64 {
    std::env::var(SLOW_MS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SLOW_MS)
}

/// Consults [`CHAOS_ENV`] and injects the configured failure for `shard`,
/// if any. Called at the top of the shard-worker execution paths; may not
/// return (crash, hang, garble). A malformed rule list exits 2 — a chaos
/// harness with a typo must fail loudly, not silently run clean.
pub fn apply(shard: u64) {
    let Ok(spec) = std::env::var(CHAOS_ENV) else {
        return;
    };
    let rules = match parse_spec(&spec) {
        Ok(rules) => rules,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    };
    let attempt = current_attempt();
    for rule in rules {
        if rule.shard != shard || attempt > rule.attempts {
            continue;
        }
        eprintln!(
            "chaos: injecting {} into shard {shard} (attempt {attempt})",
            rule.mode.name()
        );
        match rule.mode {
            ChaosMode::Crash => std::process::exit(CRASH_EXIT_CODE),
            ChaosMode::Hang => loop {
                std::thread::sleep(Duration::from_secs(3600));
            },
            ChaosMode::Garble => {
                println!("** chaos: garbled shard document **");
                std::process::exit(0);
            }
            ChaosMode::Slow => {
                std::thread::sleep(Duration::from_millis(slow_ms()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rule_lists() {
        assert_eq!(
            parse_spec("crash:1,hang:2,garble:0,slow:3").unwrap(),
            vec![
                ChaosRule {
                    mode: ChaosMode::Crash,
                    shard: 1,
                    attempts: 1
                },
                ChaosRule {
                    mode: ChaosMode::Hang,
                    shard: 2,
                    attempts: 1
                },
                ChaosRule {
                    mode: ChaosMode::Garble,
                    shard: 0,
                    attempts: 1
                },
                ChaosRule {
                    mode: ChaosMode::Slow,
                    shard: 3,
                    attempts: 1
                },
            ]
        );
        assert_eq!(
            parse_spec("crash:2:4").unwrap(),
            vec![ChaosRule {
                mode: ChaosMode::Crash,
                shard: 2,
                attempts: 4
            }]
        );
        assert_eq!(parse_spec("crash:0:*").unwrap()[0].attempts, u32::MAX);
        assert!(parse_spec("").unwrap().is_empty());
        assert!(parse_spec(" , ").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_rules() {
        assert!(parse_spec("explode:1").is_err(), "unknown mode");
        assert!(parse_spec("crash").is_err(), "missing shard");
        assert!(parse_spec("crash:x").is_err(), "non-numeric shard");
        assert!(parse_spec("crash:1:y").is_err(), "non-numeric attempts");
        assert!(parse_spec("crash:1:2:3").is_err(), "too many fields");
        assert!(parse_spec("crash:-1").is_err(), "negative shard");
    }
}
