//! Bench target for Figure 4 — BabelStream bandwidth on both devices.

use criterion::{Criterion, Throughput};
use experiment_report::ExperimentId;
use science_kernels::babelstream;
use science_kernels::workload::{self, ParamValue};
use vendor_models::kernel_class::StreamOp;
use vendor_models::Platform;

fn bench(c: &mut Criterion) {
    let pool_before = bench::pool_snapshot();
    let mut group = c.benchmark_group("fig4_babelstream");
    // Functional execution of each portable kernel at the workload's bench
    // preset size (validation is auto-enabled at this size), driven through
    // the same Params the sweep engine uses.
    let engine = workload::find("babelstream").expect("registered workload");
    let mut params = engine.default_params();
    params
        .set(
            engine.size_param(),
            ParamValue::Int(engine.bench_sizes()[0]),
        )
        .expect("size param");
    engine.validate(&params).expect("bench preset validates");
    let config = babelstream::workload::config(&params).expect("bench preset decodes");
    assert!(config.validate, "bench preset must execute functionally");
    let platform = Platform::portable_mi300a();
    for op in StreamOp::ALL {
        // Bytes moved per launch differ per op (2 arrays for Copy/Mul/Dot,
        // 3 for Add/Triad); reuse the cost model's exact accounting.
        let bytes = babelstream::stream_cost(&platform, op, &config).total_bytes();
        group.throughput(Throughput::Bytes(bytes));
        group.bench_function(format!("portable_{}", op.label()), |b| {
            b.iter(|| babelstream::run(&platform, op, &config).unwrap())
        });
    }
    bench::record_pool_counters(&mut group, &pool_before);
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Fig4);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
