//! A minimal real-number abstraction so kernels that the paper runs in both
//! FP32 and FP64 (stencil, BabelStream) can share one generic implementation.

use gpu_sim::memory::DeviceScalar;
use gpu_spec::Precision;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Floating-point element types usable in the generic kernels.
pub trait Real:
    DeviceScalar
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + PartialOrd
{
    /// The precision descriptor for this type.
    const PRECISION: Precision;
    /// Converts from `f64` (used for initialisation data and coefficients).
    fn from_f64(x: f64) -> Self;
    /// Converts to `f64` (used for validation against references).
    fn to_f64(self) -> f64;
    /// Relative tolerance appropriate for validating results of this type.
    fn tolerance() -> f64;
}

impl Real for f32 {
    const PRECISION: Precision = Precision::Fp32;
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    fn tolerance() -> f64 {
        5e-4
    }
}

impl Real for f64 {
    const PRECISION: Precision = Precision::Fp64;
    fn from_f64(x: f64) -> Self {
        x
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn tolerance() -> f64 {
        1e-10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Real>(values: &[f64]) -> f64 {
        let mut acc = T::from_f64(0.0);
        for &v in values {
            acc += T::from_f64(v);
        }
        acc.to_f64()
    }

    #[test]
    fn both_precisions_round_trip() {
        assert_eq!(f32::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f64::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f32::PRECISION, Precision::Fp32);
        assert_eq!(f64::PRECISION, Precision::Fp64);
        assert!(f32::tolerance() > f64::tolerance());
    }

    #[test]
    fn generic_arithmetic_works_for_both() {
        let values = [0.25, 0.5, 0.125];
        assert!((generic_sum::<f32>(&values) - 0.875).abs() < 1e-6);
        assert!((generic_sum::<f64>(&values) - 0.875).abs() < 1e-12);
    }
}
