//! Triangular index arithmetic for the pair and quartet enumerations.
//!
//! The proxy app enumerates unique atom pairs `(i ≤ j)` and unique pairs of
//! pairs `(ij ≤ kl)` with linear indices so the GPU can assign one quartet per
//! thread. These helpers encode/decode those triangular indices and are the
//! index math every implementation (portable, vendor, reference, cost model)
//! shares.

/// Number of unique pairs `(i ≤ j)` over `n` items.
pub fn pair_count(n: u64) -> u64 {
    n * (n + 1) / 2
}

/// Encodes a pair `(i, j)` with `i ≤ j` as a linear index.
pub fn pair_encode(i: u64, j: u64) -> u64 {
    debug_assert!(i <= j, "pair_encode requires i <= j");
    j * (j + 1) / 2 + i
}

/// Decodes a linear pair index back into `(i, j)` with `i ≤ j`.
pub fn pair_decode(index: u64) -> (u64, u64) {
    // j is the triangular root of the index.
    let j = (((8.0 * index as f64 + 1.0).sqrt() - 1.0) / 2.0).floor() as u64;
    // Floating-point rounding can land one off; correct deterministically.
    let j = correct_root(index, j);
    let i = index - j * (j + 1) / 2;
    (i, j)
}

/// Decodes a linear quartet index into the two pair indices `(ij, kl)` with
/// `ij ≤ kl`.
pub fn quartet_decode(index: u64) -> (u64, u64) {
    let (ij, kl) = pair_decode(index);
    (ij, kl)
}

fn correct_root(index: u64, mut j: u64) -> u64 {
    while j * (j + 1) / 2 > index {
        j -= 1;
    }
    while (j + 1) * (j + 2) / 2 <= index {
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let n = 64u64;
        let mut linear = 0u64;
        for j in 0..n {
            for i in 0..=j {
                assert_eq!(pair_encode(i, j), linear);
                assert_eq!(pair_decode(linear), (i, j));
                linear += 1;
            }
        }
        assert_eq!(linear, pair_count(n));
    }

    #[test]
    fn quartet_decode_is_pair_decode_over_pairs() {
        let npairs = pair_count(16);
        let nquartets = pair_count(npairs);
        // Spot-check a spread of indices, including the extremes.
        for q in [0, 1, 17, npairs, nquartets / 2, nquartets - 1] {
            let (ij, kl) = quartet_decode(q);
            assert!(ij <= kl);
            assert!(kl < npairs);
            assert_eq!(pair_encode(ij, kl), q);
        }
    }

    #[test]
    fn decode_handles_large_indices_exactly() {
        // 1024 atoms: npairs = 524,800; quartets ≈ 1.38e11. The float-based
        // triangular root must stay exact after correction.
        let npairs = pair_count(1024);
        let last = pair_count(npairs) - 1;
        let (ij, kl) = pair_decode(last);
        assert_eq!(ij, npairs - 1);
        assert_eq!(kl, npairs - 1);
        let (i, j) = pair_decode(npairs - 1);
        assert_eq!((i, j), (1023, 1023));
    }

    #[test]
    fn counts_are_consistent() {
        assert_eq!(pair_count(0), 0);
        assert_eq!(pair_count(1), 1);
        assert_eq!(pair_count(4), 10);
        assert_eq!(pair_count(256), 32_896);
    }
}
