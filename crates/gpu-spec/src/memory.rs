//! Memory-hierarchy description: cache levels and device memory.
//!
//! The paper's profiling tables (Tables 2 and 3) report arithmetic intensity
//! and achieved FLOP/s at three levels — L1, L2, and "L3" (device memory /
//! HBM in NCU's terminology) — so the hierarchy here carries per-level
//! capacity and bandwidth figures that the simulator's profiler uses to
//! derive those rows.

use serde::{Deserialize, Serialize};

/// Identifies one level of the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LevelKind {
    /// Per-SM first-level cache / shared-memory partition.
    L1,
    /// Device-wide second-level cache.
    L2,
    /// Device memory (HBM). NCU labels this level "L3"/"device" in its
    /// arithmetic-intensity breakdown, which the paper's Tables 2–3 follow.
    Hbm,
}

impl LevelKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            LevelKind::L1 => "L1",
            LevelKind::L2 => "L2",
            LevelKind::Hbm => "HBM",
        }
    }
}

/// One level of the on-device memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Which level this is ("L1", "L2", "HBM").
    pub name: LevelKind,
    /// Total capacity of this level in bytes (aggregate across the device).
    pub capacity_bytes: u64,
    /// Peak aggregate bandwidth of this level in GB/s (decimal GB).
    pub bandwidth_gbs: f64,
    /// Typical access latency in nanoseconds (used for small-transfer costs).
    pub latency_ns: f64,
    /// Cache-line / transaction size in bytes.
    pub line_bytes: u32,
}

impl CacheLevel {
    /// Time in seconds to move `bytes` through this level at peak bandwidth.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.bandwidth_gbs * 1e9)
    }
}

/// The full memory hierarchy of a device: L1 (per-SM, aggregated), L2
/// (device-wide), and HBM (device memory).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryHierarchy {
    /// Per-SM L1/shared-memory level, aggregated over all SMs.
    pub l1: CacheLevel,
    /// Device-wide L2 cache.
    pub l2: CacheLevel,
    /// Device memory (HBM). Its bandwidth is the headline STREAM-style figure.
    pub hbm: CacheLevel,
    /// Bytes of shared memory (LDS on AMD) available per thread block.
    pub shared_per_block_bytes: u32,
}

impl MemoryHierarchy {
    /// The three levels ordered from closest to the cores to farthest.
    pub fn levels(&self) -> [CacheLevel; 3] {
        [self.l1, self.l2, self.hbm]
    }

    /// Peak device-memory bandwidth in GB/s (the roofline memory ceiling).
    pub fn peak_bandwidth_gbs(&self) -> f64 {
        self.hbm.bandwidth_gbs
    }

    /// Validates internal consistency: capacities and bandwidths must decrease
    /// (bandwidth) / increase (capacity) monotonically moving away from the cores.
    pub fn validate(&self) -> Result<(), String> {
        if self.l1.bandwidth_gbs < self.l2.bandwidth_gbs {
            return Err(format!(
                "L1 bandwidth ({}) must be >= L2 bandwidth ({})",
                self.l1.bandwidth_gbs, self.l2.bandwidth_gbs
            ));
        }
        if self.l2.bandwidth_gbs < self.hbm.bandwidth_gbs {
            return Err(format!(
                "L2 bandwidth ({}) must be >= HBM bandwidth ({})",
                self.l2.bandwidth_gbs, self.hbm.bandwidth_gbs
            ));
        }
        if self.l1.capacity_bytes > self.l2.capacity_bytes {
            return Err("L1 capacity must be <= L2 capacity".to_string());
        }
        if self.l2.capacity_bytes > self.hbm.capacity_bytes {
            return Err("L2 capacity must be <= HBM capacity".to_string());
        }
        if self.shared_per_block_bytes == 0 {
            return Err("shared memory per block must be non-zero".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemoryHierarchy {
        MemoryHierarchy {
            l1: CacheLevel {
                name: LevelKind::L1,
                capacity_bytes: 256 << 10,
                bandwidth_gbs: 30_000.0,
                latency_ns: 30.0,
                line_bytes: 128,
            },
            l2: CacheLevel {
                name: LevelKind::L2,
                capacity_bytes: 50 << 20,
                bandwidth_gbs: 12_000.0,
                latency_ns: 200.0,
                line_bytes: 128,
            },
            hbm: CacheLevel {
                name: LevelKind::Hbm,
                capacity_bytes: 94 * (1 << 30),
                bandwidth_gbs: 3_900.0,
                latency_ns: 500.0,
                line_bytes: 128,
            },
            shared_per_block_bytes: 48 << 10,
        }
    }

    #[test]
    fn validates_consistent_hierarchy() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn rejects_inverted_bandwidth() {
        let mut h = sample();
        h.l1.bandwidth_gbs = 1.0;
        assert!(h.validate().is_err());
    }

    #[test]
    fn rejects_inverted_capacity() {
        let mut h = sample();
        h.l2.capacity_bytes = h.hbm.capacity_bytes * 2;
        assert!(h.validate().is_err());
    }

    #[test]
    fn rejects_zero_shared() {
        let mut h = sample();
        h.shared_per_block_bytes = 0;
        assert!(h.validate().is_err());
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let hbm = sample().hbm;
        let t1 = hbm.transfer_time_s(1_000_000);
        let t2 = hbm.transfer_time_s(2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn levels_ordering() {
        let h = sample();
        let names: Vec<_> = h.levels().iter().map(|l| l.name.name()).collect();
        assert_eq!(names, vec!["L1", "L2", "HBM"]);
        assert!((h.peak_bandwidth_gbs() - 3_900.0).abs() < 1e-12);
    }
}
