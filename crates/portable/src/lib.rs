//! The portable GPU kernel programming model — the Rust analogue of the
//! paper's primary contribution.
//!
//! The paper evaluates Mojo's vendor-agnostic GPU standard library: one kernel
//! source, written against `DeviceContext`, `LayoutTensor`, thread-index
//! builtins, shared memory, barriers and atomics, compiles for both NVIDIA and
//! AMD GPUs. This crate reproduces that programming model as an embedded Rust
//! DSL over the [`gpu_sim`] simulator: kernels written against these types run
//! unchanged on every simulated architecture (H100, MI300A, test devices), and
//! the vendor baselines in `science-kernels` deliberately *bypass* this layer
//! the way CUDA/HIP code bypasses Mojo's portable layer.
//!
//! A minimal program mirroring the paper's Listing 1:
//!
//! ```
//! use portable_kernel::prelude::*;
//!
//! // Compile-time style configuration (Mojo `alias`es become constants).
//! const NX: usize = 1024;
//! const BLOCK_SIZE: u32 = 256;
//!
//! let ctx = DeviceContext::new(gpu_spec::presets::test_device());
//! let d_u = ctx.enqueue_create_buffer::<f32>(NX).unwrap();
//! let u_tensor = LayoutTensor::new(d_u, Layout::row_major_1d(NX)).unwrap();
//!
//! // GPU kernel: fill with ones (Listing 1's `fill_one`).
//! let tensor = u_tensor.clone();
//! ctx.enqueue_function(
//!     LaunchConfig::cover_1d(NX as u64, BLOCK_SIZE),
//!     move |t: ThreadCtx| {
//!         let tid = t.global_x() as usize;
//!         if tid < NX {
//!             tensor.set(tid, 1.0);
//!         }
//!     },
//! )
//! .unwrap();
//! ctx.synchronize();
//!
//! assert!(u_tensor.to_host().iter().all(|&v| v == 1.0));
//! ```

#![warn(missing_docs)]

pub mod atomic;
pub mod context;
pub mod dtype;
pub mod layout;
pub mod prelude;
pub mod simd;
pub mod tensor;

pub use atomic::Atomic;
pub use context::DeviceContext;
pub use dtype::DType;
pub use layout::Layout;
pub use simd::Simd;
pub use tensor::LayoutTensor;

// Re-export the launch-side vocabulary so kernels only need this crate.
pub use gpu_sim::memory::{DeviceBuffer, DeviceScalar};
pub use gpu_sim::{CoopKernel, CoopLaunch, Dim3, LaunchConfig, PhaseOutcome, SimError, ThreadCtx};
