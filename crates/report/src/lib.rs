//! Experiment registry: regenerates every table and figure of the paper's
//! evaluation section.
//!
//! Each experiment in [`experiments`] produces an [`ExperimentReport`]: a
//! console rendering that mirrors the paper's presentation (rows of a table,
//! series of a figure) plus CSV tables written under `target/experiments/`
//! for post-processing — the role the paper's Python plotting scripts play in
//! its artifact.
//!
//! | Id | Paper element | Module |
//! |----|---------------|--------|
//! | `table1` | Table 1/6 — GPU hardware | [`experiments::table1`] |
//! | `fig2`   | Figure 2 — roofline of the four kernels | [`experiments::fig2`] |
//! | `fig3`   | Figure 3 — stencil bandwidth scatter | [`experiments::fig3`] |
//! | `table2` | Table 2 — stencil NCU profile | [`experiments::table2`] |
//! | `fig4`   | Figure 4 — BabelStream bandwidth | [`experiments::fig4`] |
//! | `table3` | Table 3 — BabelStream NCU profile | [`experiments::table3`] |
//! | `fig5`   | Figure 5 — Triad instruction mix | [`experiments::fig5`] |
//! | `fig6`   | Figure 6 — miniBUDE on the H100 | [`experiments::fig6`] |
//! | `fig7`   | Figure 7 — miniBUDE on the MI300A | [`experiments::fig7`] |
//! | `table4` | Table 4 — Hartree–Fock wall-clock | [`experiments::table4`] |
//! | `table5` | Table 5 — performance-portability Φ | [`experiments::table5`] |

#![warn(missing_docs)]

pub mod chaos;
pub mod cli;
pub mod dispatch;
pub mod experiments;
pub mod prelude;
pub mod registry;
pub mod render;
pub mod report;
pub mod serve;
pub mod shard;
pub mod sweep;

pub use dispatch::{DispatchPolicy, DispatchSummary, HostManifest, Launcher, LocalLauncher};
pub use registry::{
    all_experiments, run_experiment, run_experiments, ExperimentId, ExperimentSpec, WorkloadPreset,
    EXPERIMENTS,
};
pub use report::ExperimentReport;
pub use serve::ServeConfig;
pub use shard::{ShardDocument, ShardManifest, ShardPoolCounters, ShardSpec};
pub use sweep::{run_sweep, SweepSpec};
