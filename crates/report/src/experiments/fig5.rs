//! Figure 5 — instruction-mix comparison of the Triad kernel (the paper's
//! SASS listing, reproduced as an instruction-mix diff; see DESIGN.md).

use super::support::MetricRow;
use crate::render::AsciiTable;
use crate::report::ExperimentReport;
use gpu_sim::isa::{InstructionMix, MixComparison};
use gpu_spec::Precision;
use hpc_metrics::output::CsvTable;
use science_kernels::babelstream::{self, BabelStreamConfig};
use vendor_models::kernel_class::StreamOp;
use vendor_models::Platform;

/// Builds the Mojo-vs-CUDA instruction-mix comparison for Triad.
pub fn comparison() -> MixComparison {
    let config = BabelStreamConfig::paper(Precision::Fp64);
    let mojo = babelstream::run(&Platform::portable_h100(), StreamOp::Triad, &config)
        .expect("portable triad");
    let cuda = babelstream::run(&Platform::cuda_h100(false), StreamOp::Triad, &config)
        .expect("cuda triad");
    MixComparison::new(
        InstructionMix::derive(&mojo.cost, &mojo.profile),
        InstructionMix::derive(&cuda.cost, &cuda.profile),
    )
}

/// Regenerates Figure 5.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig5",
        "Mojo vs CUDA generated-code comparison for BabelStream Triad (instruction mix)",
    );
    let cmp = comparison();

    let mut table = AsciiTable::new(["per-thread instruction class", "Mojo", "CUDA"]);
    let rows: [MetricRow<InstructionMix>; 7] = [
        ("Global loads (LDG)", |m| format!("{:.1}", m.ldg)),
        ("Global stores (STG)", |m| format!("{:.1}", m.stg)),
        ("Constant loads (LDC)", |m| format!("{}", m.ldc)),
        ("FMA", |m| format!("{:.2}", m.fma)),
        ("Integer add (IADD3)", |m| format!("{:.1}", m.iadd)),
        ("SFU (MUFU)", |m| format!("{:.2}", m.mufu)),
        ("Live registers", |m| format!("{}", m.live_registers)),
    ];
    for (name, extract) in rows {
        table.push_row([
            name.to_string(),
            extract(&cmp.portable),
            extract(&cmp.vendor),
        ]);
    }
    report.push_line(table.render());

    report.push_line("Observations (paper Figure 5):");
    report.push_line(format!(
        "  (i)   Mojo issues fewer constant loads: {}",
        cmp.portable_has_fewer_constant_loads()
    ));
    report.push_line(format!(
        "  (ii)  Mojo issues more integer adds in the main loop: {}",
        cmp.portable_has_more_iadd()
    ));
    report.push_line(format!(
        "  (iii) Global loads/stores are identical: {}",
        cmp.global_accesses_match()
    ));

    let mut csv = CsvTable::new([
        "backend",
        "ldg",
        "stg",
        "ldc",
        "fma",
        "iadd",
        "mufu",
        "registers",
    ]);
    for mix in [&cmp.portable, &cmp.vendor] {
        csv.push_row([
            mix.backend.to_string(),
            format!("{}", mix.ldg),
            format!("{}", mix.stg),
            format!("{}", mix.ldc),
            format!("{}", mix.fma),
            format!("{}", mix.iadd),
            format!("{}", mix.mufu),
            format!("{}", mix.live_registers),
        ]);
    }
    report.push_table("instruction_mix", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_reproduces_all_three_observations() {
        let cmp = comparison();
        assert!(cmp.portable_has_fewer_constant_loads());
        assert!(cmp.portable_has_more_iadd());
        assert!(cmp.global_accesses_match());
    }

    #[test]
    fn fig5_report_states_the_observations() {
        let report = run();
        assert!(report.text.contains("fewer constant loads: true"));
        assert!(report
            .text
            .contains("more integer adds in the main loop: true"));
        assert!(report.text.contains("identical: true"));
        assert_eq!(report.tables[0].1.rows.len(), 2);
    }
}
