//! Stencil run configuration.

use gpu_spec::Precision;
use serde::{Deserialize, Serialize};

/// Grid sizes above which the host driver skips functional execution (the
/// timing model needs no execution, and a 512³ FP64 grid costs > 2 GB and
/// hundreds of milliseconds per simulated launch on the host).
pub const MAX_FUNCTIONAL_L: usize = 192;

/// FP32 functional-execution limit. The kernel's coefficients grow as
/// `(L-1)²`, so the Laplacian is a small difference of terms of magnitude
/// `~6·(L-1)²`; in single precision the cancellation error passes the f32
/// verification tolerance only up to roughly this grid size.
pub const MAX_FUNCTIONAL_L_FP32: usize = 40;

/// The largest grid the driver executes functionally at a given precision.
pub fn functional_limit(precision: Precision) -> usize {
    match precision {
        Precision::Fp32 => MAX_FUNCTIONAL_L_FP32,
        Precision::Fp64 => MAX_FUNCTIONAL_L,
    }
}

/// Configuration of one seven-point-stencil experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StencilConfig {
    /// Cubic grid side length `L` (the paper uses 512 and 1024).
    pub l: usize,
    /// Arithmetic precision (the paper runs both FP32 and FP64).
    pub precision: Precision,
    /// Threads per block along x (the paper uses 512 or 1024; y and z are 1).
    pub block_x: u32,
    /// Grid spacing used for the inverse-square coefficients (the baseline
    /// uses a unit cube, so `h = 1 / (L - 1)`).
    pub spacing: f64,
    /// Whether to execute the kernel functionally and validate against the
    /// CPU reference (automatically skipped above the precision's
    /// [`functional_limit`]: [`MAX_FUNCTIONAL_L`] for FP64,
    /// [`MAX_FUNCTIONAL_L_FP32`] for FP32).
    pub validate: bool,
}

impl StencilConfig {
    /// The paper's configuration for a given `L` and precision:
    /// thread blocks of `min(L, 1024)` threads in x.
    pub fn paper(l: usize, precision: Precision) -> Self {
        StencilConfig {
            l,
            precision,
            block_x: (l as u32).min(1024),
            spacing: 1.0 / (l as f64 - 1.0),
            validate: l <= functional_limit(precision),
        }
    }

    /// A small configuration that always executes functionally; used by tests.
    pub fn validation(l: usize, precision: Precision) -> Self {
        StencilConfig {
            l,
            precision,
            block_x: (l as u32).min(64),
            spacing: 1.0 / (l as f64 - 1.0),
            validate: true,
        }
    }

    /// Whether the driver should run the kernel functionally.
    pub fn should_execute(&self) -> bool {
        self.validate && self.l <= functional_limit(self.precision)
    }

    /// Inverse-square coefficients `(invhx2, invhy2, invhz2, invhxyz2)` used
    /// by the kernel; the grid is isotropic so the first three are equal and
    /// the centre coefficient is `-2 (invhx2 + invhy2 + invhz2)`.
    pub fn coefficients(&self) -> (f64, f64, f64, f64) {
        let invh2 = 1.0 / (self.spacing * self.spacing);
        (invh2, invh2, invh2, -6.0 * invh2)
    }

    /// Total number of cells.
    pub fn cells(&self) -> u64 {
        (self.l as u64).pow(3)
    }

    /// Number of interior (updated) cells.
    pub fn interior_cells(&self) -> u64 {
        (self.l as u64 - 2).pow(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_artifact_parameters() {
        let c = StencilConfig::paper(512, Precision::Fp64);
        assert_eq!(c.l, 512);
        assert_eq!(c.block_x, 512);
        assert!(!c.should_execute());
        let c = StencilConfig::paper(1024, Precision::Fp32);
        assert_eq!(c.block_x, 1024);
        assert_eq!(c.cells(), 1 << 30);
    }

    #[test]
    fn validation_configs_execute() {
        let c = StencilConfig::validation(32, Precision::Fp64);
        assert!(c.should_execute());
        assert_eq!(c.interior_cells(), 30u64.pow(3));
    }

    #[test]
    fn coefficients_sum_to_zero_for_constant_fields() {
        // The Laplacian of a constant field is zero: centre + 6 neighbours.
        let c = StencilConfig::validation(16, Precision::Fp64);
        let (ix, iy, iz, ic) = c.coefficients();
        assert!((2.0 * ix + 2.0 * iy + 2.0 * iz + ic).abs() < 1e-9);
    }
}
