//! Table 1 / Table 6 — GPU hardware used in the study.

use crate::render::AsciiTable;
use crate::report::ExperimentReport;
use gpu_spec::presets;
use hpc_metrics::output::CsvTable;

/// Regenerates Table 1.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new("table1", "GPU hardware used in this study");
    let mut table = AsciiTable::new([
        "GPU - Memory",
        "Bandwidth GB/s",
        "FP32 TFLOP/s",
        "FP64 TFLOP/s",
    ]);
    let mut csv = CsvTable::new(["gpu", "bandwidth_gbs", "fp32_tflops", "fp64_tflops"]);
    for spec in presets::all_presets() {
        table.push_row([
            spec.name.clone(),
            format!("{:.0}", spec.bandwidth_gbs),
            format!("{:.1}", spec.fp32_tflops),
            format!("{:.1}", spec.fp64_tflops),
        ]);
        csv.push_row([
            spec.name.clone(),
            format!("{}", spec.bandwidth_gbs),
            format!("{}", spec.fp32_tflops),
            format!("{}", spec.fp64_tflops),
        ]);
    }
    report.push_line(table.render());
    report.push_table("hardware", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_both_devices_with_paper_figures() {
        let report = run();
        assert!(report.text.contains("H100"));
        assert!(report.text.contains("MI300A"));
        assert!(report.text.contains("3900"));
        assert!(report.text.contains("5300"));
        assert!(report.text.contains("122.6"));
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].1.rows.len(), 2);
    }
}
