//! Bench target for Table 3 — BabelStream NCU profiling metrics.

use criterion::Criterion;
use experiment_report::ExperimentId;
use gpu_spec::Precision;
use science_kernels::babelstream::{self, BabelStreamConfig};
use vendor_models::kernel_class::StreamOp;
use vendor_models::Platform;

fn bench(c: &mut Criterion) {
    let pool_before = bench::pool_snapshot();
    let mut group = c.benchmark_group("table3");
    // The Dot reduction is the kernel Table 3 singles out; measure its
    // cooperative (shared-memory + barrier) execution path.
    group.bench_function("portable_dot_reduction", |b| {
        let platform = Platform::portable_h100();
        let config = BabelStreamConfig::validation(1 << 20, Precision::Fp64);
        b.iter(|| babelstream::run(&platform, StreamOp::Dot, &config).unwrap())
    });
    group.bench_function("vendor_dot_reduction", |b| {
        let platform = Platform::cuda_h100(false);
        let config = BabelStreamConfig::validation(1 << 20, Precision::Fp64);
        b.iter(|| babelstream::run(&platform, StreamOp::Dot, &config).unwrap())
    });
    bench::record_pool_counters(&mut group, &pool_before);
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Table3);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
