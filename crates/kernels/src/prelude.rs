//! Convenience prelude for users of the science kernels.

pub use crate::babelstream::{self, BabelStreamConfig};
pub use crate::common::{Verification, WorkloadRun};
pub use crate::hartree_fock::{self, HartreeFockConfig};
pub use crate::minibude::{self, MiniBudeConfig};
pub use crate::stencil7::{self, StencilConfig};
