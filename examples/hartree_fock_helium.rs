//! Hartree–Fock on helium systems: the Table 4 size sweep plus a validated
//! small-system Fock-matrix build.
//!
//! Run with `cargo run --release --example hartree_fock_helium`.

use mojo_hpc::kernels::hartree_fock::{self, surviving_quartets, HartreeFockConfig, HeliumSystem};
use mojo_hpc::vendor::Platform;

fn main() {
    println!("Hartree-Fock kernel wall-clock (ms), helium lattices (Table 4 sweep):\n");
    println!(
        "{:<20} {:>14} {:>14} {:>14} {:>14}",
        "case", "H100 Mojo", "H100 CUDA", "MI300A Mojo", "MI300A HIP"
    );
    for (natoms, ngauss) in HartreeFockConfig::paper_cases() {
        let config = HartreeFockConfig::paper(natoms, ngauss);
        let time = |platform: &Platform| {
            hartree_fock::run(platform, &config)
                .expect("hartree-fock run")
                .millis()
        };
        println!(
            "{:<20} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            format!("a={natoms} ngauss={ngauss}"),
            time(&Platform::portable_h100()),
            time(&Platform::cuda_h100(false)),
            time(&Platform::portable_mi300a()),
            time(&Platform::hip_mi300a(false)),
        );
    }

    // Screening statistics: how much work the Schwarz test removes.
    println!("\nSchwarz screening statistics:");
    for (natoms, ngauss) in HartreeFockConfig::paper_cases() {
        let config = HartreeFockConfig::paper(natoms, ngauss);
        let system = HeliumSystem::generate(&config);
        let survivors = surviving_quartets(&system.schwarz, config.screening_tol);
        println!(
            "  a={natoms:>5}: {survivors:>16} of {:>16} quartets survive ({:.1}%)",
            config.nquartets(),
            100.0 * survivors as f64 / config.nquartets() as f64
        );
    }

    // A validated run: build the Fock matrix for 24 atoms on the simulator and
    // check it against the sequential CPU reference.
    println!("\nValidated Fock build (24 atoms, portable backend on the H100):");
    let run = hartree_fock::run(
        &Platform::portable_h100(),
        &HartreeFockConfig::validation(24),
    )
    .expect("validated run");
    println!("  verification: {:?}", run.verification);
    println!("  atomic updates issued: {}", run.cost.atomics_fp64);
}
