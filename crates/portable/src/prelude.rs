//! Convenience prelude: everything a portable kernel needs in one import,
//! mirroring the handful of modules a Mojo GPU program pulls in
//! (`gpu.host`, `gpu.id`, `layout`, `memory`).

pub use crate::atomic::Atomic;
pub use crate::context::DeviceContext;
pub use crate::dtype::DType;
pub use crate::layout::Layout;
pub use crate::simd::Simd;
pub use crate::tensor::{HostTensor, LayoutTensor};
pub use gpu_sim::memory::{DeviceBuffer, DeviceScalar};
pub use gpu_sim::{CoopKernel, Dim3, LaunchConfig, PhaseOutcome, PooledVec, SimError, ThreadCtx};
