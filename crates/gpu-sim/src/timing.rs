//! The analytic timing model: cost × hardware × codegen profile → duration.
//!
//! The model is a three-lane roofline (DESIGN.md §5):
//!
//! ```text
//! t_mem    = bytes / (BW_peak · eff_mem)
//! t_comp   = weighted FLOPs / (FLOP_peak(precision) · eff_comp)
//! t_atomic = atomics · contention / (atomic_rate · eff_atomic)
//! t        = max(t_mem, t_comp, t_atomic) + launch overhead
//! ```
//!
//! The efficiency factors come from an [`ExecutionProfile`], which is how the
//! `vendor-models` crate expresses what a given compiler backend (portable /
//! CUDA / HIP) did with a given kernel: how many registers it allocated, what
//! fraction of peak bandwidth the generated code can stream at, whether
//! fast-math lowered the transcendental cost, and how well its atomic path
//! performs. All paper-derived constants live in that crate, not here.

use crate::intern::IStr;
use crate::stats::KernelCost;
use gpu_spec::GpuSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Cost of a division or square root relative to an add, used when weighting
/// FLOPs for the compute lane.
pub const DIV_SQRT_COST: f64 = 4.0;

/// What a compiler backend produced for a specific kernel on a specific
/// device: the inputs the timing model needs beyond the raw cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionProfile {
    /// Backend label as it appears in plots ("Mojo", "CUDA", "CUDA -ffast-math", "HIP").
    /// Interned: profiles are rebuilt per run, and the label must not allocate.
    pub backend: IStr,
    /// Registers allocated per thread (Tables 2–3 "Registers" row).
    pub registers_per_thread: u32,
    /// Fraction of peak DRAM bandwidth the generated code sustains (0..=1].
    pub mem_efficiency: f64,
    /// Fraction of peak FLOP rate sustained for FMA-dominated code (0..=1].
    pub compute_efficiency: f64,
    /// Cost of one transcendental (sin/cos/exp/pow) in simple-FLOP
    /// equivalents. Fast-math lowers this substantially.
    pub sfu_cost_flops: f64,
    /// Multiplier on the device's sustained FP64 atomic rate (1.0 = the
    /// vendor-native path; the portable path may be faster or much slower).
    pub atomic_throughput_factor: f64,
    /// Fixed kernel-launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Constant-memory load instructions per thread (Figure 5 shows Mojo
    /// needs fewer of these than CUDA for Triad).
    pub constant_loads_per_thread: u32,
    /// Relative per-thread instruction-issue overhead (address arithmetic,
    /// predication); >1 means busier SMs for the same arithmetic. Drives the
    /// "Compute SM %" row of the profiling tables.
    pub issue_overhead: f64,
}

impl ExecutionProfile {
    /// A neutral profile achieving ideal efficiency; useful for tests and for
    /// expressing theoretical upper bounds.
    pub fn ideal(backend: impl Into<IStr>) -> Self {
        ExecutionProfile {
            backend: backend.into(),
            registers_per_thread: 32,
            mem_efficiency: 1.0,
            compute_efficiency: 1.0,
            sfu_cost_flops: 1.0,
            atomic_throughput_factor: 1.0,
            launch_overhead_us: 0.0,
            constant_loads_per_thread: 0,
            issue_overhead: 1.0,
        }
    }

    /// Validates that efficiencies are in `(0, 1]` and costs are sane.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.mem_efficiency) || self.mem_efficiency == 0.0 {
            return Err(format!(
                "mem_efficiency {} not in (0,1]",
                self.mem_efficiency
            ));
        }
        if !(0.0..=1.0).contains(&self.compute_efficiency) || self.compute_efficiency == 0.0 {
            return Err(format!(
                "compute_efficiency {} not in (0,1]",
                self.compute_efficiency
            ));
        }
        if self.sfu_cost_flops < 1.0 {
            return Err("sfu_cost_flops must be >= 1".to_string());
        }
        if self.atomic_throughput_factor <= 0.0 {
            return Err("atomic_throughput_factor must be positive".to_string());
        }
        if self.launch_overhead_us < 0.0 {
            return Err("launch_overhead_us must be non-negative".to_string());
        }
        if self.issue_overhead < 1.0 {
            return Err("issue_overhead must be >= 1".to_string());
        }
        Ok(())
    }
}

/// Which lane of the model limited the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// DRAM bandwidth limited (stencil, BabelStream).
    Memory,
    /// FLOP throughput limited (miniBUDE).
    Compute,
    /// Atomic serialisation limited (Hartree–Fock).
    Atomics,
}

/// The outcome of the timing model for one launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchTiming {
    /// Total simulated kernel duration in seconds (including launch overhead).
    pub seconds: f64,
    /// Memory-lane time in seconds.
    pub t_mem: f64,
    /// Compute-lane time in seconds.
    pub t_comp: f64,
    /// Atomic-lane time in seconds.
    pub t_atomic: f64,
    /// The limiting lane.
    pub bottleneck: Bottleneck,
}

impl LaunchTiming {
    /// Duration in milliseconds (the unit of the paper's profiling tables).
    pub fn millis(&self) -> f64 {
        self.seconds * 1e3
    }

    /// Duration in microseconds.
    pub fn micros(&self) -> f64 {
        self.seconds * 1e6
    }
}

/// The timing model for one simulated device.
#[derive(Debug, Clone)]
pub struct TimingModel {
    spec: GpuSpec,
}

impl TimingModel {
    /// Creates a timing model for a device.
    pub fn new(spec: GpuSpec) -> Self {
        TimingModel { spec }
    }

    /// The device this model charges time for.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Estimates the duration of a launch with the given cost under the given
    /// execution profile.
    pub fn estimate(&self, cost: &KernelCost, profile: &ExecutionProfile) -> LaunchTiming {
        let peak_bw = self.spec.peak_bandwidth_bytes_per_s() * profile.mem_efficiency;
        let t_mem = if cost.total_bytes() == 0 {
            0.0
        } else {
            cost.total_bytes() as f64 / peak_bw
        };

        let peak_flops = self.spec.peak_flops(cost.precision) * profile.compute_efficiency;
        let weighted = cost.flops.weighted(DIV_SQRT_COST, profile.sfu_cost_flops);
        let t_comp = if weighted == 0.0 {
            0.0
        } else {
            weighted / peak_flops
        };

        let t_atomic = if cost.atomics_fp64 == 0 {
            0.0
        } else {
            // Atomics to the same address serialise; the effective rate is the
            // device's sustained contended rate scaled by the backend's atomic
            // path quality and degraded by the square root of the conflict
            // degree (partial combining in the memory system).
            let base_rate = self.spec.atomic_fp64_gups * 1e9 * profile.atomic_throughput_factor;
            let contention_penalty = cost.atomic_conflict_degree.max(1.0).sqrt();
            cost.atomics_fp64 as f64 * contention_penalty / base_rate
        };

        let body = t_mem.max(t_comp).max(t_atomic);
        let bottleneck = if body == t_mem && t_mem >= t_comp && t_mem >= t_atomic {
            Bottleneck::Memory
        } else if body == t_comp && t_comp >= t_atomic {
            Bottleneck::Compute
        } else {
            Bottleneck::Atomics
        };

        let seconds = body + profile.launch_overhead_us * 1e-6;
        LaunchTiming {
            seconds,
            t_mem,
            t_comp,
            t_atomic,
            bottleneck,
        }
    }
}

/// Seeded run-to-run variability model.
///
/// The paper collects at least 100 runs per configuration and plots the raw
/// scatter (Figs. 3–4); stencil runs show visibly more variability than
/// BabelStream. The jitter model reproduces that character deterministically:
/// it draws multiplicative noise around 1.0 from a seeded uniform
/// distribution, plus an occasional slow outlier, so repeated "runs" of the
/// simulator produce a realistic spread without losing reproducibility.
#[derive(Debug, Clone)]
pub struct JitterModel {
    rng: StdRng,
    sigma: f64,
    outlier_probability: f64,
    outlier_slowdown: f64,
}

impl JitterModel {
    /// Creates a jitter model with the given relative spread (e.g. 0.02 for
    /// ±2 %) and seed.
    pub fn new(sigma: f64, seed: u64) -> Self {
        JitterModel {
            rng: StdRng::seed_from_u64(seed),
            sigma,
            outlier_probability: 0.01,
            outlier_slowdown: 1.12,
        }
    }

    /// Configures the probability and magnitude of slow outliers
    /// (the MI300A stencil plot in the paper shows such outliers).
    pub fn with_outliers(mut self, probability: f64, slowdown: f64) -> Self {
        self.outlier_probability = probability;
        self.outlier_slowdown = slowdown;
        self
    }

    /// Draws the multiplicative factor for one run (>= ~1 - sigma).
    pub fn sample(&mut self) -> f64 {
        let base = 1.0 + self.sigma * (self.rng.gen::<f64>() * 2.0 - 1.0);
        if self.rng.gen::<f64>() < self.outlier_probability {
            base * self.outlier_slowdown
        } else {
            base
        }
    }

    /// Applies jitter to a duration in seconds.
    pub fn jitter_seconds(&mut self, seconds: f64) -> f64 {
        seconds * self.sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::LaunchConfig;
    use crate::stats::{AccessPattern, FlopCounts, KernelCost};
    use gpu_spec::{presets, Precision};

    fn stream_cost(bytes: u64) -> KernelCost {
        KernelCost::builder(
            "copy",
            Precision::Fp64,
            LaunchConfig::cover_1d(bytes / 8, 1024),
            AccessPattern::Stream,
        )
        .dram_traffic(bytes / 2, bytes / 2)
        .build()
    }

    fn compute_cost(flops: u64) -> KernelCost {
        KernelCost::builder(
            "fasten",
            Precision::Fp32,
            LaunchConfig::cover_1d(1 << 16, 64),
            AccessPattern::ComputeTiled,
        )
        .dram_traffic(1 << 20, 1 << 20)
        .flops(FlopCounts {
            fmas: flops / 2,
            ..Default::default()
        })
        .build()
    }

    #[test]
    fn memory_bound_kernel_hits_memory_lane() {
        let model = TimingModel::new(presets::h100_nvl());
        let profile = ExecutionProfile::ideal("test");
        let timing = model.estimate(&stream_cost(1 << 30), &profile);
        assert_eq!(timing.bottleneck, Bottleneck::Memory);
        // 1 GiB at 3.9 TB/s ≈ 0.275 ms.
        assert!((timing.millis() - 0.2753).abs() < 0.01);
    }

    #[test]
    fn compute_bound_kernel_hits_compute_lane() {
        let model = TimingModel::new(presets::h100_nvl());
        let profile = ExecutionProfile::ideal("test");
        let timing = model.estimate(&compute_cost(1 << 40), &profile);
        assert_eq!(timing.bottleneck, Bottleneck::Compute);
    }

    #[test]
    fn atomic_heavy_kernel_hits_atomic_lane() {
        let model = TimingModel::new(presets::h100_nvl());
        let profile = ExecutionProfile::ideal("test");
        let cost = KernelCost::builder(
            "hartree_fock",
            Precision::Fp64,
            LaunchConfig::cover_1d(1 << 20, 256),
            AccessPattern::AtomicScatter,
        )
        .dram_traffic(1 << 20, 1 << 20)
        .atomics(1 << 30, 64.0)
        .build();
        let timing = model.estimate(&cost, &profile);
        assert_eq!(timing.bottleneck, Bottleneck::Atomics);
        assert!(timing.t_atomic > timing.t_mem);
    }

    #[test]
    fn more_bytes_never_run_faster() {
        let model = TimingModel::new(presets::mi300a());
        let profile = ExecutionProfile::ideal("test");
        let t1 = model.estimate(&stream_cost(1 << 24), &profile).seconds;
        let t2 = model.estimate(&stream_cost(1 << 26), &profile).seconds;
        assert!(t2 > t1);
    }

    #[test]
    fn lower_mem_efficiency_is_slower() {
        let model = TimingModel::new(presets::h100_nvl());
        let mut good = ExecutionProfile::ideal("good");
        good.mem_efficiency = 0.9;
        let mut bad = ExecutionProfile::ideal("bad");
        bad.mem_efficiency = 0.6;
        let cost = stream_cost(1 << 28);
        assert!(model.estimate(&cost, &bad).seconds > model.estimate(&cost, &good).seconds);
    }

    #[test]
    fn fast_math_speeds_up_transcendental_kernels() {
        let model = TimingModel::new(presets::h100_nvl());
        let mut precise = ExecutionProfile::ideal("no-ff");
        precise.sfu_cost_flops = 32.0;
        let mut fast = ExecutionProfile::ideal("ff");
        fast.sfu_cost_flops = 8.0;
        let cost = KernelCost::builder(
            "fasten",
            Precision::Fp32,
            LaunchConfig::cover_1d(1 << 16, 64),
            AccessPattern::ComputeTiled,
        )
        .flops(FlopCounts {
            transcendentals: 1 << 32,
            ..Default::default()
        })
        .build();
        let t_precise = model.estimate(&cost, &precise).seconds;
        let t_fast = model.estimate(&cost, &fast).seconds;
        assert!(t_fast < t_precise);
        assert!((t_precise / t_fast - 4.0).abs() < 0.01);
    }

    #[test]
    fn launch_overhead_is_added() {
        let model = TimingModel::new(presets::h100_nvl());
        let mut profile = ExecutionProfile::ideal("test");
        profile.launch_overhead_us = 10.0;
        let cost = stream_cost(1 << 20);
        let with = model.estimate(&cost, &profile).seconds;
        profile.launch_overhead_us = 0.0;
        let without = model.estimate(&cost, &profile).seconds;
        assert!((with - without - 10e-6).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_kernel_takes_only_overhead() {
        let model = TimingModel::new(presets::h100_nvl());
        let mut profile = ExecutionProfile::ideal("test");
        profile.launch_overhead_us = 5.0;
        let cost = KernelCost::builder(
            "empty",
            Precision::Fp32,
            LaunchConfig::cover_1d(1, 1),
            AccessPattern::Stream,
        )
        .build();
        let t = model.estimate(&cost, &profile);
        assert!((t.seconds - 5e-6).abs() < 1e-12);
        assert_eq!(t.t_mem, 0.0);
        assert_eq!(t.t_comp, 0.0);
        assert_eq!(t.t_atomic, 0.0);
    }

    #[test]
    fn profile_validation() {
        let mut p = ExecutionProfile::ideal("x");
        assert!(p.validate().is_ok());
        p.mem_efficiency = 0.0;
        assert!(p.validate().is_err());
        p = ExecutionProfile::ideal("x");
        p.compute_efficiency = 1.5;
        assert!(p.validate().is_err());
        p = ExecutionProfile::ideal("x");
        p.sfu_cost_flops = 0.5;
        assert!(p.validate().is_err());
        p = ExecutionProfile::ideal("x");
        p.atomic_throughput_factor = -1.0;
        assert!(p.validate().is_err());
        p = ExecutionProfile::ideal("x");
        p.issue_overhead = 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn timing_unit_conversions() {
        let t = LaunchTiming {
            seconds: 0.0015,
            t_mem: 0.0015,
            t_comp: 0.0,
            t_atomic: 0.0,
            bottleneck: Bottleneck::Memory,
        };
        assert!((t.millis() - 1.5).abs() < 1e-12);
        assert!((t.micros() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut a = JitterModel::new(0.03, 42);
        let mut b = JitterModel::new(0.03, 42);
        let xs: Vec<f64> = (0..100).map(|_| a.sample()).collect();
        let ys: Vec<f64> = (0..100).map(|_| b.sample()).collect();
        assert_eq!(xs, ys);
        for x in xs {
            assert!(x > 0.9 && x < 1.25, "sample {x} out of expected range");
        }
    }

    #[test]
    fn jitter_with_outliers_produces_occasional_slow_runs() {
        let mut m = JitterModel::new(0.01, 7).with_outliers(0.2, 1.5);
        let samples: Vec<f64> = (0..500).map(|_| m.sample()).collect();
        let outliers = samples.iter().filter(|&&s| s > 1.3).count();
        assert!(outliers > 0, "expected some outliers");
        assert!(outliers < 250, "outliers should stay a minority");
    }
}
