//! CPU golden reference for the seven-point stencil.

use super::config::StencilConfig;
use rayon::prelude::*;

/// Fills the input grid with a smooth, reproducible field:
/// `u(i, j, k) = sin-free polynomial of the normalised coordinates`, matching
/// what the baseline codes use to initialise their grids (any smooth field
/// works because validation is bitwise against the same initialisation).
pub fn initialize_grid(config: &StencilConfig) -> Vec<f64> {
    let l = config.l;
    let mut u = vec![0.0f64; l * l * l];
    let denom = (l - 1) as f64;
    u.par_chunks_mut(l * l).enumerate().for_each(|(i, plane)| {
        let x = i as f64 / denom;
        for j in 0..l {
            let y = j as f64 / denom;
            for k in 0..l {
                let z = k as f64 / denom;
                plane[j * l + k] = x * x + 2.0 * y * y + 3.0 * z * z + 0.5 * x * y * z;
            }
        }
    });
    u
}

/// Sequentially applies the seven-point Laplacian to interior cells, leaving
/// the boundary untouched (zero), exactly as the GPU kernels do.
pub fn reference_laplacian(config: &StencilConfig, u: &[f64]) -> Vec<f64> {
    let l = config.l;
    let (invhx2, invhy2, invhz2, invhxyz2) = config.coefficients();
    let idx = |i: usize, j: usize, k: usize| (i * l + j) * l + k;
    let mut f = vec![0.0f64; l * l * l];
    for i in 1..l - 1 {
        for j in 1..l - 1 {
            for k in 1..l - 1 {
                f[idx(i, j, k)] = u[idx(i, j, k)] * invhxyz2
                    + (u[idx(i - 1, j, k)] + u[idx(i + 1, j, k)]) * invhx2
                    + (u[idx(i, j - 1, k)] + u[idx(i, j + 1, k)]) * invhy2
                    + (u[idx(i, j, k - 1)] + u[idx(i, j, k + 1)]) * invhz2;
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;

    #[test]
    fn constant_field_has_zero_laplacian() {
        let config = StencilConfig::validation(12, Precision::Fp64);
        let u = vec![5.0; 12 * 12 * 12];
        let f = reference_laplacian(&config, &u);
        for v in f {
            assert!(
                v.abs() < 1e-6,
                "Laplacian of a constant must vanish, got {v}"
            );
        }
    }

    #[test]
    fn linear_field_has_zero_laplacian() {
        // u = x + 2y + 3z is harmonic; its Laplacian must vanish on interior cells.
        let config = StencilConfig::validation(16, Precision::Fp64);
        let l = config.l;
        let mut u = vec![0.0; l * l * l];
        for i in 0..l {
            for j in 0..l {
                for k in 0..l {
                    u[(i * l + j) * l + k] = i as f64 + 2.0 * j as f64 + 3.0 * k as f64;
                }
            }
        }
        let f = reference_laplacian(&config, &u);
        for v in f {
            assert!(v.abs() < 1e-6);
        }
    }

    #[test]
    fn quadratic_field_has_constant_laplacian() {
        // u = x² (in index space with h = 1) has ∇²u = 2 / h² at every interior cell.
        let config = StencilConfig {
            l: 10,
            precision: Precision::Fp64,
            block_x: 8,
            spacing: 1.0,
            validate: true,
        };
        let l = config.l;
        let mut u = vec![0.0; l * l * l];
        for i in 0..l {
            for j in 0..l {
                for k in 0..l {
                    u[(i * l + j) * l + k] = (i as f64) * (i as f64);
                }
            }
        }
        let f = reference_laplacian(&config, &u);
        let idx = |i: usize, j: usize, k: usize| (i * l + j) * l + k;
        for i in 1..l - 1 {
            for j in 1..l - 1 {
                for k in 1..l - 1 {
                    assert!((f[idx(i, j, k)] - 2.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn boundary_cells_are_untouched() {
        let config = StencilConfig::validation(8, Precision::Fp64);
        let u = initialize_grid(&config);
        let f = reference_laplacian(&config, &u);
        let l = config.l;
        assert_eq!(f[0], 0.0);
        assert_eq!(f[(l * l * l) - 1], 0.0);
    }

    #[test]
    fn initialization_is_deterministic_and_smooth() {
        let config = StencilConfig::validation(16, Precision::Fp64);
        let a = initialize_grid(&config);
        let b = initialize_grid(&config);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
        assert!(a.iter().any(|&v| v != 0.0));
    }
}
