//! Stress tests of `mojo-hpc serve`, through the real binary (DESIGN.md
//! §13): hundreds of concurrent clients must each receive payloads
//! byte-identical to the corresponding `run`/`sweep` CLI stdout, repeated
//! requests must be served out of the Params-keyed cache (hit counter up,
//! compute counter flat), identical concurrent requests must coalesce onto
//! exactly one computation (pinned via the `MOJO_HPC_SERVE_SLOW_MS` chaos
//! seam), and oversized sweeps must spill through the launcher layer while
//! keeping the same bytes.

use serde::value::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

fn mojo_hpc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mojo-hpc"))
        .args(args)
        .output()
        .expect("run mojo-hpc")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("serve-stress-scratch")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The CLI stdout of `args` — the byte-identity baseline for a serve
/// payload.
fn cli_baseline(args: &[&str]) -> Vec<u8> {
    let output = mojo_hpc(args);
    assert_eq!(
        output.status.code(),
        Some(0),
        "CLI baseline failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output.stdout
}

/// One running `mojo-hpc serve` process bound to an ephemeral port.
struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    /// Spawns `serve --listen 127.0.0.1:0 <extra>` with `env` and parses
    /// the announced address off stderr (draining the rest on a thread so
    /// a chatty server can never block on a full pipe).
    fn start(tag: &str, extra: &[&str], env: &[(&str, &str)]) -> Server {
        let dir = scratch(tag);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_mojo-hpc"));
        cmd.arg("serve")
            .arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--scratch")
            .arg(&dir)
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        for (key, value) in env {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn().expect("spawn mojo-hpc serve");
        let stderr = child.stderr.take().expect("stderr is piped");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        let addr = loop {
            line.clear();
            let n = reader.read_line(&mut line).expect("read server stderr");
            assert_ne!(n, 0, "server exited before announcing its address");
            if let Some(addr) = line.trim().strip_prefix("serve: listening on ") {
                break addr.parse().expect("announced address parses");
            }
        };
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            reader.read_to_end(&mut sink).ok();
        });
        Server { child, addr }
    }

    fn connect(&self) -> ServeClient {
        ServeClient::connect(self.addr)
    }

    /// Sends `shutdown` and waits for the process to exit cleanly.
    fn shutdown(mut self) {
        let mut client = self.connect();
        let (header, _) = client.request(r#"{"cmd":"shutdown"}"#);
        assert_eq!(str_field(&header, "status"), "ok");
        let status = self.child.wait().expect("wait for server");
        assert_eq!(status.code(), Some(0), "server exit code after shutdown");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A failed test must not leak a resident server.
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// One protocol connection: write request lines, read header + payload.
struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    fn connect(addr: SocketAddr) -> ServeClient {
        let stream = TcpStream::connect(addr).expect("connect to serve");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("set read timeout");
        ServeClient {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    /// Sends one request line and returns (header, payload bytes).
    fn request(&mut self, line: &str) -> (Value, Vec<u8>) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write request");
        self.writer.flush().expect("flush request");
        let mut header = String::new();
        let n = self.reader.read_line(&mut header).expect("read header");
        assert_ne!(n, 0, "server hung up instead of answering");
        let header: Value = serde_json::from_str(header.trim()).expect("header is JSON");
        let bytes = match opt_field(&header, "bytes") {
            Some(v) => as_u64(v) as usize,
            None => 0,
        };
        let mut payload = vec![0u8; bytes];
        self.reader
            .read_exact(&mut payload)
            .expect("read payload bytes");
        (header, payload)
    }

    /// Issues `{"cmd":"stats"}` and returns the `stats` object.
    fn stats(&mut self) -> Value {
        let (header, _) = self.request(r#"{"cmd":"stats"}"#);
        assert_eq!(str_field(&header, "status"), "ok");
        field(&header, "stats").clone()
    }
}

fn opt_field<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    match value {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn field<'a>(value: &'a Value, key: &str) -> &'a Value {
    opt_field(value, key).unwrap_or_else(|| panic!("missing field '{key}' in {value:?}"))
}

fn as_u64(value: &Value) -> u64 {
    match value {
        Value::U64(n) => *n,
        other => panic!("expected an integer, got {other:?}"),
    }
}

fn str_field<'a>(value: &'a Value, key: &str) -> &'a str {
    match field(value, key) {
        Value::Str(s) => s,
        other => panic!("expected '{key}' to be a string, got {other:?}"),
    }
}

fn bool_field(value: &Value, key: &str) -> bool {
    match field(value, key) {
        Value::Bool(b) => *b,
        other => panic!("expected '{key}' to be a bool, got {other:?}"),
    }
}

/// `stats.compute.computed` / `stats.cache.hits` style accessor.
fn counter(stats: &Value, section: &str, name: &str) -> u64 {
    as_u64(field(field(stats, section), name))
}

#[test]
fn responses_match_cli_bytes_in_both_formats() {
    let out = scratch("baseline-out");
    let out = out.to_str().unwrap();
    let server = Server::start("baseline", &[], &[]);
    let mut client = server.connect();
    let cases: &[(&str, Vec<&str>)] = &[
        (
            r#"{"cmd":"run","experiments":["table1"],"format":"json"}"#,
            vec!["run", "table1", "--format", "json", "--out", out],
        ),
        (
            r#"{"cmd":"run","experiments":["table1","fig5"],"format":"csv"}"#,
            vec!["run", "table1", "fig5", "--format", "csv", "--out", out],
        ),
        (
            r#"{"cmd":"run","format":"json"}"#,
            vec!["run", "--all", "--format", "json", "--out", out],
        ),
        (
            r#"{"cmd":"sweep","workload":"stencil","sizes":[16,20],"format":"json"}"#,
            vec![
                "sweep", "stencil", "--sizes", "16,20", "--format", "json", "--out", out,
            ],
        ),
        (
            r#"{"cmd":"sweep","workload":"stencil","sizes":[16],"params":{"precision":"fp32"},"format":"csv"}"#,
            vec![
                "sweep",
                "stencil",
                "--sizes",
                "16",
                "precision=fp32",
                "--format",
                "csv",
                "--out",
                out,
            ],
        ),
    ];
    for (request, cli_args) in cases {
        let (header, payload) = client.request(request);
        assert_eq!(
            str_field(&header, "status"),
            "ok",
            "request {request} failed: {header:?}"
        );
        assert_eq!(
            payload,
            cli_baseline(cli_args),
            "payload of {request} is not byte-identical to the CLI stdout"
        );
    }
    server.shutdown();
}

#[test]
fn repeated_requests_are_served_from_the_cache() {
    let server = Server::start("cache-hit", &[], &[]);
    let mut client = server.connect();
    let request = r#"{"cmd":"sweep","workload":"stencil","sizes":[16,20],"format":"json"}"#;
    let (first, body_a) = client.request(request);
    assert!(
        !bool_field(&first, "cached"),
        "first request cannot be cached"
    );
    let after_first = client.stats();
    let computed = counter(&after_first, "compute", "computed");
    let hits = counter(&after_first, "cache", "hits");
    assert!(computed >= 1);
    let (second, body_b) = client.request(request);
    assert!(
        bool_field(&second, "cached"),
        "second request must be cached"
    );
    assert_eq!(body_a, body_b, "cached payload differs from computed one");
    let after_second = client.stats();
    assert_eq!(
        counter(&after_second, "compute", "computed"),
        computed,
        "a cached request must not compute"
    );
    assert!(
        counter(&after_second, "cache", "hits") > hits,
        "the hit counter must increase"
    );
    server.shutdown();
}

#[test]
fn hundreds_of_concurrent_clients_get_identical_bytes() {
    let server = Server::start("concurrent", &[], &[]);
    // Three distinct cheap requests and their CLI baselines; 240 clients
    // round-robin over them, every one over its own connection.
    let requests: Vec<(String, Vec<u8>)> = vec![
        (
            r#"{"cmd":"run","experiments":["table1"],"format":"json"}"#.to_string(),
            cli_baseline(&[
                "run",
                "table1",
                "--format",
                "json",
                "--out",
                scratch("concurrent-a").to_str().unwrap(),
            ]),
        ),
        (
            r#"{"cmd":"sweep","workload":"stencil","sizes":[16],"format":"json"}"#.to_string(),
            cli_baseline(&[
                "sweep",
                "stencil",
                "--sizes",
                "16",
                "--format",
                "json",
                "--out",
                scratch("concurrent-b").to_str().unwrap(),
            ]),
        ),
        (
            r#"{"cmd":"sweep","workload":"stencil","sizes":[16,20],"format":"csv"}"#.to_string(),
            cli_baseline(&[
                "sweep",
                "stencil",
                "--sizes",
                "16,20",
                "--format",
                "csv",
                "--out",
                scratch("concurrent-c").to_str().unwrap(),
            ]),
        ),
    ];
    const CLIENTS: usize = 240;
    let addr = server.addr;
    let mut threads = Vec::with_capacity(CLIENTS);
    for index in 0..CLIENTS {
        let (request, expected) = requests[index % requests.len()].clone();
        threads.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr);
            let (header, payload) = client.request(&request);
            assert_eq!(str_field(&header, "status"), "ok", "client {index}");
            assert_eq!(
                payload, expected,
                "client {index}: payload differs from the CLI bytes"
            );
        }));
    }
    for thread in threads {
        thread.join().expect("client thread");
    }
    // Unit-level accounting: a one-experiment `run` is one cache unit and
    // each sweep point is one unit, so request C (sizes 16,20) is two units
    // and shares its size-16 point with request B. 240 clients round-robin
    // to 80 x (1 + 1 + 2) = 320 unit lookups over 3 distinct units; the
    // spike collapsed onto one computation per distinct unit, and every
    // other lookup was a cache hit or coalesced onto the in-flight leader.
    const DISTINCT_UNITS: u64 = 3;
    const UNIT_LOOKUPS: u64 = (CLIENTS as u64 / 3) * 4;
    let stats = server.connect().stats();
    assert_eq!(
        counter(&stats, "compute", "computed"),
        DISTINCT_UNITS,
        "exactly one computation per distinct cache unit"
    );
    assert_eq!(
        counter(&stats, "cache", "hits") + counter(&stats, "compute", "coalesced"),
        UNIT_LOOKUPS - DISTINCT_UNITS,
        "every other lookup was coalesced or served from cache"
    );
    server.shutdown();
}

#[test]
fn identical_concurrent_requests_compute_exactly_once() {
    // The slow seam holds the single computation open long enough for the
    // whole pack to pile onto the in-flight leader.
    let server = Server::start("single-flight", &[], &[("MOJO_HPC_SERVE_SLOW_MS", "500")]);
    const PACK: usize = 32;
    let request = r#"{"cmd":"sweep","workload":"stencil","sizes":[24],"format":"json"}"#;
    let addr = server.addr;
    let mut threads = Vec::with_capacity(PACK);
    for _ in 0..PACK {
        threads.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr);
            let (header, payload) = client.request(request);
            assert_eq!(str_field(&header, "status"), "ok");
            payload
        }));
    }
    let payloads: Vec<Vec<u8>> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    for payload in &payloads[1..] {
        assert_eq!(
            payload, &payloads[0],
            "coalesced payloads must be identical"
        );
    }
    let stats = server.connect().stats();
    assert_eq!(
        counter(&stats, "compute", "computed"),
        1,
        "a spike of identical requests costs exactly one computation"
    );
    assert_eq!(
        counter(&stats, "cache", "hits") + counter(&stats, "compute", "coalesced"),
        (PACK - 1) as u64
    );
    server.shutdown();
}

#[test]
fn oversized_sweeps_spill_through_the_launcher_layer() {
    let server = Server::start(
        "spill",
        &["--spill-threshold", "2", "--spill-workers", "2"],
        &[],
    );
    let mut client = server.connect();
    let request = r#"{"cmd":"sweep","workload":"stencil","sizes":[16,20,24],"format":"json"}"#;
    let (header, payload) = client.request(request);
    assert_eq!(str_field(&header, "status"), "ok");
    assert_eq!(
        payload,
        cli_baseline(&[
            "sweep",
            "stencil",
            "--sizes",
            "16,20,24",
            "--format",
            "json",
            "--out",
            scratch("spill-out").to_str().unwrap(),
        ]),
        "spilled sweep must keep the single-process bytes"
    );
    let stats = client.stats();
    assert_eq!(counter(&stats, "compute", "spilled"), 1, "{stats:?}");
    // The spilled result is cached whole: a repeat is a hit, not a redispatch.
    let (second, repeat) = client.request(request);
    assert!(bool_field(&second, "cached"));
    assert_eq!(repeat, payload);
    let stats = client.stats();
    assert_eq!(counter(&stats, "compute", "spilled"), 1);
    // Under the threshold the in-process pool serves as usual.
    let (small, _) =
        client.request(r#"{"cmd":"sweep","workload":"stencil","sizes":[16],"format":"json"}"#);
    assert_eq!(str_field(&small, "status"), "ok");
    let stats = client.stats();
    assert_eq!(counter(&stats, "compute", "spilled"), 1);
    server.shutdown();
}

#[test]
fn protocol_errors_answer_without_dropping_the_connection() {
    let server = Server::start("errors", &[], &[]);
    let mut client = server.connect();
    for bad in [
        "this is not json",
        r#"{"cmd":"launch-missiles"}"#,
        r#"{"cmd":"run","experiments":["nope"]}"#,
        r#"{"cmd":"sweep","workload":"stencil"}"#,
        r#"{"cmd":"sweep","workload":"frobnicate","sizes":[8]}"#,
        r#"{"cmd":"sweep","workload":"stencil","sizes":[2]}"#,
    ] {
        let (header, payload) = client.request(bad);
        assert_eq!(str_field(&header, "status"), "error", "request: {bad}");
        assert!(!str_field(&header, "error").is_empty());
        assert!(payload.is_empty());
    }
    // The connection survived every error and still serves real requests.
    let (header, _) = client.request(r#"{"cmd":"run","experiments":["table1"],"format":"json"}"#);
    assert_eq!(str_field(&header, "status"), "ok");
    let stats = client.stats();
    assert_eq!(as_u64(field(&stats, "errors")), 6);
    server.shutdown();
}

#[test]
fn shutdown_verb_stops_the_server() {
    let server = Server::start("shutdown", &[], &[]);
    let addr = server.addr;
    server.shutdown();
    // The port is closed: a fresh connection is refused (allow the OS a
    // moment to tear the listener down).
    for _ in 0..50 {
        if TcpStream::connect(addr).is_err() {
            return;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("the listener is still accepting connections after shutdown");
}
