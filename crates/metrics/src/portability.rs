//! The performance-portability metric Φ — the paper's Eq. (4).
//!
//! The paper uses the "application efficiency" formulation: for every run `i`
//! in a set `T` (one proxy application across the platforms of an architecture
//! class), the efficiency is the ratio of the portable implementation's
//! performance to the vendor baseline's performance on the same platform, and
//! Φ is the arithmetic mean of those efficiencies:
//!
//! ```text
//! Φ = ( Σ_{i ∈ T} e_i ) / |T|,    e_i = perf_portable_i / perf_vendor_i
//! ```
//!
//! Table 5 reports Φ per proxy application together with the individual
//! efficiencies; [`PortabilityTable`] reproduces exactly that structure.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Computes one efficiency entry `e_i`.
///
/// `higher_is_better` distinguishes throughput metrics (bandwidth, GFLOP/s)
/// from time metrics (wall-clock), so callers can pass either kind without
/// pre-inverting.
pub fn efficiency(portable: f64, vendor: f64, higher_is_better: bool) -> f64 {
    assert!(
        portable > 0.0 && vendor > 0.0,
        "performance values must be positive"
    );
    if higher_is_better {
        portable / vendor
    } else {
        vendor / portable
    }
}

/// One row of Table 5: a named configuration and its efficiency on each
/// platform (NVIDIA H100, AMD MI300A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortabilityEntry {
    /// Configuration label (e.g. "FP64", "Copy", "PPWI=8 wg=8", "a=256 ngauss=3").
    pub label: String,
    /// Efficiency on the NVIDIA platform, if measured.
    pub nvidia: Option<f64>,
    /// Efficiency on the AMD platform, if measured.
    pub amd: Option<f64>,
}

/// A per-application block of Table 5: its entries and the resulting Φ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortabilityTable {
    /// Application name ("7-point stencil", "BabelStream", …).
    pub application: String,
    /// Per-configuration efficiencies.
    pub entries: Vec<PortabilityEntry>,
}

impl PortabilityTable {
    /// Creates an empty table for one application.
    pub fn new(application: impl Into<String>) -> Self {
        PortabilityTable {
            application: application.into(),
            entries: Vec::new(),
        }
    }

    /// Adds one configuration row.
    pub fn push(&mut self, label: impl Into<String>, nvidia: Option<f64>, amd: Option<f64>) {
        self.entries.push(PortabilityEntry {
            label: label.into(),
            nvidia,
            amd,
        });
    }

    /// All efficiencies present in the table (the set `T` of Eq. 4).
    pub fn efficiencies(&self) -> Vec<f64> {
        self.entries
            .iter()
            .flat_map(|e| [e.nvidia, e.amd])
            .flatten()
            .collect()
    }

    /// The Φ value: the arithmetic mean of all efficiencies, or `None` if the
    /// table is empty.
    pub fn phi(&self) -> Option<f64> {
        let effs = self.efficiencies();
        if effs.is_empty() {
            return None;
        }
        Some(effs.iter().sum::<f64>() / effs.len() as f64)
    }
}

impl fmt::Display for PortabilityTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.application)?;
        for e in &self.entries {
            let fmt_opt = |v: Option<f64>| match v {
                Some(x) if x < 0.01 => format!("{:.0E}", x),
                Some(x) => format!("{x:.2}"),
                None => "-".to_string(),
            };
            writeln!(
                f,
                "  {:<24} {:>8} {:>8}",
                e.label,
                fmt_opt(e.nvidia),
                fmt_opt(e.amd)
            )?;
        }
        match self.phi() {
            Some(phi) => write!(f, "  Φ = {phi:.2}"),
            None => write!(f, "  Φ = n/a"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_handles_both_directions() {
        // Throughput: portable at 90 GB/s vs vendor at 100 GB/s → 0.9.
        assert!((efficiency(90.0, 100.0, true) - 0.9).abs() < 1e-12);
        // Time: portable at 187 ms vs vendor at 472 ms → 2.52 (faster than vendor).
        assert!((efficiency(187.0, 472.0, false) - 472.0 / 187.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_performance_is_rejected() {
        efficiency(0.0, 1.0, true);
    }

    #[test]
    fn phi_reproduces_table5_stencil_block() {
        // Table 5: stencil efficiencies 0.82/1.00 (FP32) and 0.87/1.00 (FP64)
        // give Φ = 0.92.
        let mut t = PortabilityTable::new("7-point stencil");
        t.push("FP32", Some(0.82), Some(1.00));
        t.push("FP64", Some(0.87), Some(1.00));
        let phi = t.phi().unwrap();
        assert!((phi - 0.9225).abs() < 1e-9);
        assert!((phi - 0.92).abs() < 0.01);
    }

    #[test]
    fn phi_reproduces_table5_babelstream_block() {
        let mut t = PortabilityTable::new("BabelStream");
        for (label, nv) in [
            ("Copy", 1.01),
            ("Mul", 1.02),
            ("Add", 1.01),
            ("Triad", 1.01),
            ("Dot", 0.78),
        ] {
            t.push(label, Some(nv), Some(1.00));
        }
        // The arithmetic mean of the printed entries is 0.98; the paper rounds
        // its published Φ to 0.96 (its raw efficiencies carry more digits than
        // the table shows), so allow that gap.
        let phi = t.phi().unwrap();
        assert!((phi - 0.96).abs() < 0.03);
    }

    #[test]
    fn missing_entries_are_skipped() {
        // Table 5's Hartree-Fock a=1024 row has no AMD value ("–").
        let mut t = PortabilityTable::new("Hartree-Fock");
        t.push("a=1024 ngauss=6", Some(0.017), None);
        t.push("a=256 ngauss=3", Some(2.52), Some(0.007));
        assert_eq!(t.efficiencies().len(), 3);
        assert!(t.phi().unwrap() > 0.0);
    }

    #[test]
    fn empty_table_has_no_phi() {
        assert_eq!(PortabilityTable::new("x").phi(), None);
    }

    #[test]
    fn display_contains_phi_and_rows() {
        let mut t = PortabilityTable::new("7-point stencil");
        t.push("FP64", Some(0.87), Some(1.00));
        let s = t.to_string();
        assert!(s.contains("7-point stencil"));
        assert!(s.contains("FP64"));
        assert!(s.contains("Φ ="));
    }
}
