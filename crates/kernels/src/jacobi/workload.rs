//! The `jacobi` scenario: the iterative solver behind the [`Workload`]
//! interface.

use super::{planned_iters, JacobiConfig, MAX_JACOBI_ITERS};
use crate::workload::{
    check_int_range, paper_platform_pairs, Measurement, ParamSpec, Params, Workload, WorkloadError,
    WorkloadOutput,
};
use gpu_sim::PooledVec;
use hpc_metrics::jacobi_bandwidth_gbs;

/// Decodes a validated parameter assignment into a solver configuration.
/// Functional validation is gated on [`super::MAX_FUNCTIONAL_L_JACOBI`]
/// inside [`JacobiConfig::paper`].
pub fn config(params: &Params) -> Result<JacobiConfig, WorkloadError> {
    Ok(JacobiConfig::paper(
        params.int("l") as usize,
        params.int("iters") as usize,
    ))
}

/// The iterative Jacobi-solver workload (DESIGN.md §15).
pub struct JacobiWorkload;

impl Workload for JacobiWorkload {
    fn name(&self) -> &'static str {
        "jacobi"
    }

    fn description(&self) -> &'static str {
        "iterative Jacobi solver: stencil sweep + convergence norm per iteration (§15)"
    }

    fn fom_label(&self) -> &'static str {
        "bandwidth_gbs"
    }

    fn size_param(&self) -> &'static str {
        "l"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::int("l", 16, "cubic grid side length"),
            ParamSpec::int("iters", 400, "iteration cap (solve may converge earlier)"),
        ]
    }

    fn bench_sizes(&self) -> &'static [u64] {
        &[8, 12, 16]
    }

    fn validate(&self, params: &Params) -> Result<(), WorkloadError> {
        // 3 is the smallest grid with an interior cell; the ceiling keeps the
        // per-sweep byte counts far inside u64 even at the iteration cap.
        check_int_range(params, "l", 3, 4096)?;
        check_int_range(params, "iters", 1, MAX_JACOBI_ITERS as u64)?;
        let _ = config(params)?;
        Ok(())
    }

    fn run_lane(
        &self,
        params: &Params,
        policy: crate::simd::LanePolicy,
    ) -> Result<WorkloadOutput, WorkloadError> {
        self.validate(params)?;
        let config = config(params)?;
        let iters = planned_iters(&config);
        let mut measurements = PooledVec::new();
        for platform in paper_platform_pairs() {
            let run = super::run_lane(platform, &config, policy)?;
            let fom = jacobi_bandwidth_gbs(config.l as u64, iters as u64, run.seconds());
            measurements.push(Measurement::from_run(&run, fom));
        }
        Ok(WorkloadOutput {
            params: params.clone(),
            measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_execute_functionally_on_all_platforms() {
        let output = JacobiWorkload
            .run(&JacobiWorkload.default_params())
            .unwrap();
        assert_eq!(output.measurements.len(), 4);
        for m in &output.measurements {
            assert!(m.verification.starts_with("passed("), "{}", m.verification);
            assert_eq!(m.kernel, "jacobi");
            assert!(m.fom > 0.0);
        }
    }

    #[test]
    fn large_grids_fall_back_to_the_cost_model() {
        let mut params = JacobiWorkload.default_params();
        params.apply_encoding("l=192,iters=50").unwrap();
        let output = JacobiWorkload.run(&params).unwrap();
        for m in &output.measurements {
            assert!(m.verification.starts_with("skipped("), "{}", m.verification);
        }
    }

    #[test]
    fn validation_rejects_out_of_range_parameters() {
        for bad in ["l=2", "l=5000", "iters=0", "iters=1000000"] {
            let mut params = JacobiWorkload.default_params();
            params.apply_encoding(bad).unwrap();
            assert!(
                JacobiWorkload.validate(&params).is_err(),
                "{bad} should be rejected"
            );
        }
    }
}
