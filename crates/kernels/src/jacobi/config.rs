//! Jacobi solver run configuration.

use serde::{Deserialize, Serialize};

/// Grid sides above which the host driver skips functional execution: a
/// Jacobi solve runs hundreds of sweeps, so the functional budget is far
/// tighter than the single-sweep stencil's.
pub const MAX_FUNCTIONAL_L_JACOBI: usize = 32;

/// The documented convergence criterion: the solve stops once the RMS
/// iterate-difference norm has dropped below this fraction of its
/// first-iteration value (DESIGN.md §15).
pub const RESIDUAL_REDUCTION: f64 = 1e-3;

/// Ceiling on the iteration-cap parameter: keeps `iters × bytes-per-sweep`
/// far inside `u64` for every admissible grid.
pub const MAX_JACOBI_ITERS: usize = 100_000;

/// Six-neighbour average coefficient; shared by the host lanes, the device
/// kernels and the CPU reference so every path computes bitwise-identical
/// sweeps.
pub const SIXTH: f64 = 1.0 / 6.0;

/// Configuration of one Jacobi-solver experiment. The solver runs in FP64
/// only — the convergence criterion is a property of the arithmetic, and the
/// paper's composite patterns are not precision-swept.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JacobiConfig {
    /// Cubic grid side length `L`.
    pub l: usize,
    /// Iteration cap: the solve stops here even if the residual target of
    /// [`RESIDUAL_REDUCTION`] has not been reached.
    pub iters: usize,
    /// Threads per block along x (same heuristic as the stencil).
    pub block_x: u32,
    /// Whether to execute the solve functionally and validate against the
    /// CPU reference (automatically disabled above
    /// [`MAX_FUNCTIONAL_L_JACOBI`]).
    pub validate: bool,
}

impl JacobiConfig {
    /// The standard configuration for a grid side: the stencil's block
    /// heuristic and functional validation below the Jacobi limit.
    pub fn paper(l: usize, iters: usize) -> Self {
        JacobiConfig {
            l,
            iters,
            block_x: (l as u32).min(1024),
            validate: l <= MAX_FUNCTIONAL_L_JACOBI,
        }
    }

    /// A small configuration that always executes functionally; used by
    /// tests.
    pub fn validation(l: usize, iters: usize) -> Self {
        JacobiConfig {
            l,
            iters,
            block_x: (l as u32).min(64),
            validate: true,
        }
    }

    /// Whether the driver should run the solve functionally.
    pub fn should_execute(&self) -> bool {
        self.validate && self.l <= MAX_FUNCTIONAL_L_JACOBI
    }

    /// Total number of cells.
    pub fn cells(&self) -> u64 {
        (self.l as u64).pow(3)
    }

    /// Number of interior (relaxed) cells.
    pub fn interior_cells(&self) -> u64 {
        (self.l as u64 - 2).pow(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_gate_functional_execution_on_the_jacobi_limit() {
        let small = JacobiConfig::paper(16, 400);
        assert!(small.should_execute());
        assert_eq!(small.block_x, 16);
        let large = JacobiConfig::paper(128, 400);
        assert!(!large.should_execute());
        assert_eq!(large.cells(), 1 << 21);
        assert_eq!(large.interior_cells(), 126u64.pow(3));
    }

    #[test]
    fn validation_configs_execute() {
        let c = JacobiConfig::validation(12, 100);
        assert!(c.should_execute());
        assert_eq!(c.interior_cells(), 1000);
    }

    #[test]
    fn convergence_target_is_the_documented_constant() {
        assert_eq!(RESIDUAL_REDUCTION, 1e-3);
        assert_eq!(MAX_JACOBI_ITERS, 100_000);
    }
}
