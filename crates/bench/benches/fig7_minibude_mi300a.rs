//! Bench target for Figure 7 — miniBUDE GFLOP/s vs PPWI on the MI300A.

use criterion::Criterion;
use experiment_report::ExperimentId;
use science_kernels::minibude::{self, MiniBudeConfig};
use vendor_models::Platform;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_minibude");
    // The HIP-style baseline's functional execution path.
    for wg in [8u32, 64] {
        group.bench_function(format!("hip_fasten_wg{wg}"), |b| {
            let platform = Platform::hip_mi300a(true);
            let config = MiniBudeConfig::validation(4, wg);
            b.iter(|| minibude::run(&platform, &config).unwrap())
        });
    }
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Fig7);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
