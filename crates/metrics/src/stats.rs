//! Summary statistics over repeated runs.
//!
//! The paper collects at least 100 runs per configuration and either plots
//! the raw scatter (Figs. 3–4) or reports averages (Figs. 6–7, Table 4).
//! [`RunStats`] provides the summaries the reports and benches need.

use serde::{Deserialize, Serialize};

/// Summary statistics of a set of measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median value.
    pub median: f64,
}

impl RunStats {
    /// Computes statistics over `samples`.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise zero samples");
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            0.5 * (sorted[count / 2 - 1] + sorted[count / 2])
        };
        RunStats {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median,
        }
    }

    /// Coefficient of variation (std-dev / mean), the variability measure the
    /// paper discusses qualitatively for the stencil scatter plots.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Values more than `k` standard deviations below/above the mean —
    /// the "outlier measurements" the paper notes on the MI300A stencil runs.
    pub fn outliers<'a>(&self, samples: &'a [f64], k: f64) -> Vec<&'a f64> {
        samples
            .iter()
            .filter(|&&x| (x - self.mean).abs() > k * self.std_dev && self.std_dev > 0.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = RunStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn even_count_median_interpolates() {
        let s = RunStats::from_samples(&[1.0, 2.0, 3.0, 10.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = RunStats::from_samples(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn outlier_detection() {
        let mut samples = vec![1.0; 99];
        samples.push(100.0);
        let s = RunStats::from_samples(&samples);
        let outliers = s.outliers(&samples, 3.0);
        assert_eq!(outliers.len(), 1);
        assert_eq!(*outliers[0], 100.0);
    }

    #[test]
    fn coefficient_of_variation_is_relative() {
        let tight = RunStats::from_samples(&[100.0, 101.0, 99.0]);
        let loose = RunStats::from_samples(&[100.0, 150.0, 50.0]);
        assert!(tight.coefficient_of_variation() < loose.coefficient_of_variation());
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_input_panics() {
        RunStats::from_samples(&[]);
    }
}
