//! Vendor-baseline (CUDA/HIP style) Jacobi solver.
//!
//! Mirrors the structure of the vendor stencil baseline: raw `DeviceBuffer`s,
//! manual `(i·L + j)·L + k` linearisation, and the simulator's launch API used
//! directly. The sweep count comes from the same memoized deterministic
//! reference solve as the portable driver, so the baselines execute the
//! identical launch sequence.

use super::config::{JacobiConfig, SIXTH};
use super::cost::jacobi_cost;
use super::reference::residual_rms;
use crate::cache;
use crate::common::{compare_with_reference, Verification, WorkloadRun};
use crate::simd::Lane;
use gpu_sim::{istr, istr_fmt, launch_flat, PooledVec, SimError};
use vendor_models::{heuristics, KernelClass, Platform};

/// Runs the vendor-baseline Jacobi solve on `platform` (CUDA on NVIDIA, HIP
/// on AMD).
pub fn run_vendor(platform: &Platform, config: &JacobiConfig) -> Result<WorkloadRun, SimError> {
    let iters = super::planned_iters(config);
    let cost = jacobi_cost(config, iters);
    let class = KernelClass::Stencil7 {
        precision: gpu_spec::Precision::Fp64,
    };
    let profile = platform.execution_profile(&class);
    let timing = cache::timing_model(platform).estimate(&cost, &profile);

    let verification = if config.should_execute() {
        execute(platform, config)?
    } else {
        Verification::Skipped {
            reason: istr_fmt(format_args!(
                "L = {} exceeds the functional-execution limit; cost model only",
                config.l
            )),
        }
    };

    Ok(WorkloadRun {
        backend: profile.backend.clone(),
        device: istr(&platform.spec.name),
        kernel: istr("jacobi"),
        cost,
        profile,
        timing,
        verification,
    })
}

fn execute(platform: &Platform, config: &JacobiConfig) -> Result<Verification, SimError> {
    let l = config.l;
    let seed = cache::stencil_grid(&super::reference::seed_config(config));
    let reference = cache::jacobi_reference(config);

    let device = cache::device(platform);
    let mut d_u = device.alloc_from_host(&seed)?;
    let mut d_f = device.alloc_from_host(&seed)?;

    let launch = heuristics::stencil_launch(l as u32, config.block_x);
    launch.validate(&platform.spec)?;

    for _ in 0..reference.iters_run {
        let (u, f) = (d_u.clone(), d_f.clone());
        // CUDA/HIP-style kernel body: raw pointers, manual linearisation.
        launch_flat(&launch, move |t| {
            let k = t.global_x() as usize;
            let j = t.global_y() as usize;
            let i = t.global_z() as usize;
            if i > 0 && i < l - 1 && j > 0 && j < l - 1 && k > 0 && k < l - 1 {
                let at = |ii: usize, jj: usize, kk: usize| (ii * l + jj) * l + kk;
                let value = (((u.read(at(i - 1, j, k)) + u.read(at(i + 1, j, k)))
                    + (u.read(at(i, j - 1, k)) + u.read(at(i, j + 1, k))))
                    + (u.read(at(i, j, k - 1)) + u.read(at(i, j, k + 1))))
                    * SIXTH;
                f.write(at(i, j, k), value);
            }
        });
        std::mem::swap(&mut d_u, &mut d_f);
    }

    let mut actual: PooledVec<f64> = PooledVec::new();
    d_u.copy_to_host_into(&mut actual);
    let mut previous: PooledVec<f64> = PooledVec::new();
    d_f.copy_to_host_into(&mut previous);

    let tolerance = <f64 as crate::real::Real>::tolerance();
    let max_abs_error =
        compare_with_reference(&actual, &reference.grid, tolerance).map_err(|msg| {
            SimError::InvalidParameter(format!("vendor jacobi verification failed: {msg}"))
        })?;

    let residual = residual_rms(
        &actual,
        &previous,
        config.interior_cells() as f64,
        Lane::Deterministic,
    );
    let golden = reference.residuals[reference.iters_run - 1];
    let rel = (residual - golden).abs() / golden.abs().max(1e-300);
    if rel > 1e-12 {
        return Err(SimError::InvalidParameter(format!(
            "vendor jacobi residual mismatch: {residual:.17e} vs {golden:.17e}"
        )));
    }

    Ok(Verification::Passed { max_abs_error })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuda_jacobi_matches_the_reference() {
        let config = JacobiConfig::validation(12, 200);
        let run = run_vendor(&Platform::cuda_h100(false), &config).unwrap();
        assert!(run.verification.is_verified());
        assert_eq!(run.backend, "CUDA");
    }

    #[test]
    fn hip_jacobi_matches_the_reference() {
        let config = JacobiConfig::validation(10, 150);
        let run = run_vendor(&Platform::hip_mi300a(false), &config).unwrap();
        assert!(run.verification.is_verified());
        assert_eq!(run.backend, "HIP");
    }

    #[test]
    fn portable_and_vendor_solves_are_numerically_identical() {
        let config = JacobiConfig::validation(8, 100);
        let a = super::super::run_portable(&Platform::portable_h100(), &config).unwrap();
        let b = run_vendor(&Platform::cuda_h100(false), &config).unwrap();
        assert!(a.verification.is_verified());
        assert!(b.verification.is_verified());
    }
}
