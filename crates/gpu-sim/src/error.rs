//! Error type shared by the simulator.

use std::fmt;

/// Errors raised by the device simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A buffer allocation exceeded the simulated device's memory capacity.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Bytes still available on the device.
        available: u64,
    },
    /// A launch configuration violates a hardware limit.
    InvalidLaunch(String),
    /// A host/device copy had mismatched lengths.
    SizeMismatch {
        /// Elements expected by the destination.
        expected: usize,
        /// Elements provided by the source.
        actual: usize,
    },
    /// An index was outside the bounds of a buffer or tensor.
    OutOfBounds {
        /// The offending linear index.
        index: usize,
        /// The buffer length.
        len: usize,
    },
    /// A kernel or model parameter was invalid.
    InvalidParameter(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} B, {available} B available"
            ),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch configuration: {msg}"),
            SimError::SizeMismatch { expected, actual } => {
                write!(f, "size mismatch: expected {expected}, got {actual}")
            }
            SimError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            SimError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias for simulator operations.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::OutOfMemory {
            requested: 100,
            available: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("50"));

        let e = SimError::InvalidLaunch("block too large".into());
        assert!(e.to_string().contains("block too large"));

        let e = SimError::SizeMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 4"));

        let e = SimError::OutOfBounds { index: 9, len: 3 };
        assert!(e.to_string().contains("9"));

        let e = SimError::InvalidParameter("ngauss must be 3 or 6".into());
        assert!(e.to_string().contains("ngauss"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::InvalidLaunch("x".into()));
    }
}
